#!/usr/bin/env python
"""Campaign smoke: flat memory at scale + kill/resume bit-identity.

The two load-bearing claims of the campaign plane, checked end to end:

1. **O(1) metrics memory.**  A campaign an order of magnitude longer
   than the reference must not grow peak RSS with it: streaming sketches
   and replica compaction keep per-request state off the heap.  Each
   campaign runs in its own subprocess (``ru_maxrss`` is monotone per
   process, so same-process comparisons would be meaningless).
2. **Kill/resume round-trip.**  A shard killed after its first slice
   and resumed from the checkpoint file lands byte-identically (outside
   the drive-dependent fields) on the uninterrupted run.

Usage::

    PYTHONPATH=src python scripts/campaign_smoke.py            # CI scale
    REPRO_FULL=1 PYTHONPATH=src python scripts/campaign_smoke.py  # 2M requests

Exits non-zero on any violated claim.
"""

import json
import os
import subprocess
import sys
import tempfile

#: The long campaign grows 8x (CI) / 100x (full) over the reference;
#: RSS may grow only by this factor before the smoke fails.
RSS_HEADROOM = 1.35

REFERENCE_REQUESTS = 20_000
SMOKE_REQUESTS = 2_000_000 if os.environ.get("REPRO_FULL") else 160_000


def _run_campaign_subprocess(requests: int, workload: str, params) -> dict:
    command = [
        sys.executable, "-m", "repro", "campaign",
        "--protocol", "pbft",
        "--deployment", "wonderproxy-4",
        "--workload", workload,
        "--requests", str(requests),
        "--checkpoint-every", "20",
        "--seed", "11",
    ]
    for key, value in params.items():
        command += ["--param", f"{key}={value}"]
    environment = dict(os.environ, PYTHONPATH="src")
    completed = subprocess.run(
        command, capture_output=True, text=True, env=environment
    )
    if completed.returncode != 0:
        sys.stderr.write(completed.stderr)
        raise SystemExit(f"campaign subprocess failed ({completed.returncode})")
    return json.loads(completed.stdout)


def check_flat_memory() -> None:
    # The arrival rate must be sustainable (pbft/wonderproxy-4 commits
    # ~530 rps here): an open-loop rate above capacity grows the leader
    # backlog without bound, which is real queueing, not a metrics leak.
    params = dict(rate=400.0, clients=4)
    reference = _run_campaign_subprocess(REFERENCE_REQUESTS, "open-loop", params)
    smoke = _run_campaign_subprocess(SMOKE_REQUESTS, "open-loop", params)

    for label, report, target in (
        ("reference", reference, REFERENCE_REQUESTS),
        ("smoke", smoke, SMOKE_REQUESTS),
    ):
        committed = report["merged"]["committed_requests"]
        if committed < target:
            raise SystemExit(
                f"{label} campaign under target: {committed} < {target}"
            )
        for shard in report["shards"]:
            if shard.get("underrun"):
                raise SystemExit(f"{label} campaign shard underran: {shard}")

    reference_rss = reference["host"]["peak_rss_kb"]
    smoke_rss = smoke["host"]["peak_rss_kb"]
    growth = smoke_rss / reference_rss
    scale = SMOKE_REQUESTS / REFERENCE_REQUESTS
    print(
        f"peak RSS: {reference_rss} KiB at {REFERENCE_REQUESTS} requests, "
        f"{smoke_rss} KiB at {SMOKE_REQUESTS} ({scale:.0f}x load, "
        f"{growth:.2f}x memory)"
    )
    if growth > RSS_HEADROOM:
        raise SystemExit(
            f"metrics memory is not flat: {growth:.2f}x RSS for {scale:.0f}x "
            f"requests (allowed {RSS_HEADROOM}x)"
        )
    summary = smoke["merged"]["commit_latency"]
    print(
        f"smoke commit latency: p50={summary['p50']:.4f}s "
        f"p90={summary['p90']:.4f}s p99={summary['p99']:.4f}s"
    )


def check_kill_resume() -> None:
    from repro.experiments.campaign import CampaignSpec, run_campaign_shard
    from repro.experiments.runner import Scenario

    drive_dependent = ("resumed_from", "slices_run", "peak_rss_kb")

    def strip(summary):
        return {
            key: value
            for key, value in summary.items()
            if key not in drive_dependent
        }

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        spec = CampaignSpec(
            scenario=Scenario(
                protocol="pbft",
                deployment="wonderproxy-4",
                workload="flash-crowd",
                workload_params=dict(
                    base_rate=600.0, multiplier=4.0, interval=8.0,
                    decay_steps=2, step_duration=1.0, clients=2,
                ),
                duration=1e9,
                seed=13,
            ),
            requests=20_000,
            checkpoint_every=4.0,
            shards=1,
            checkpoint_dir=checkpoint_dir,
        )

        def point(**overrides):
            entry = {
                "shard": 0,
                "scenario": spec.shard_scenario(0),
                "target": spec.shard_target(0),
                "checkpoint_every": spec.checkpoint_every,
                "compact_keep": spec.compact_keep,
                "max_slices": spec.max_slices,
                "checkpoint_path": spec.shard_checkpoint_path(0),
            }
            entry.update(overrides)
            return entry

        baseline = run_campaign_shard(point(checkpoint_path=None))
        killed = run_campaign_shard(point(max_slices=1))
        if not killed.get("underrun"):
            raise SystemExit("kill phase unexpectedly reached the target")
        resumed = run_campaign_shard(point())
        if resumed.get("resumed_from") != spec.checkpoint_every:
            raise SystemExit(
                f"resume did not start from the checkpoint: {resumed}"
            )
        if strip(resumed) != strip(baseline):
            raise SystemExit(
                "kill/resume diverged from the uninterrupted run:\n"
                f"  uninterrupted: {json.dumps(strip(baseline), sort_keys=True)}\n"
                f"  resumed:       {json.dumps(strip(resumed), sort_keys=True)}"
            )
    print(
        f"kill/resume: bit-identical after resuming from "
        f"t={spec.checkpoint_every}s"
    )


def main() -> int:
    check_flat_memory()
    check_kill_resume()
    print("campaign smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
