#!/usr/bin/env python
"""Attack-search smoke: jobs byte-identity + a smoke-sized frontier.

The two load-bearing claims of the adversary-synthesis subsystem,
checked end to end at CI size:

1. **Jobs byte-identity.**  The same synthesis search run serially and
   on the process pool must return byte-identical JSON reports -- both
   sharding regimes (chains when ``restarts > 1``, per-seed evaluations
   when ``restarts == 1``).
2. **Smoke frontier.**  A two-level budget frontier on the quick pbft
   arena runs to completion, every point is finite (the event-budget
   timeout keeps liveness-killing genomes scoring finite degradation),
   and the report lands as a JSON artifact next to the hand-authored
   reference points.

Usage::

    PYTHONPATH=src python scripts/attack_smoke.py [frontier.json]

Exits non-zero on any violated claim.
"""

import dataclasses
import json
import sys

from repro.experiments.attack import ensure_baselines, make_arena
from repro.experiments.frontier import run_frontier, write_frontier
from repro.faults.genome import AdversaryBudget
from repro.optimize.adversary import DEFAULT_SCHEDULE, attack_search

DURATION = 3.0
SCHEDULE = dataclasses.replace(DEFAULT_SCHEDULE, iterations=4)


def _dumps(report):
    return json.dumps(report, sort_keys=True)


def check_jobs_identity() -> None:
    arena = make_arena("pbft", duration=DURATION, seeds=(0, 1))
    ensure_baselines(arena)
    budget = AdversaryBudget(max_faulty=6)

    # restarts > 1: the pool shards annealing chains.
    chain_kwargs = dict(objective="latency", seed=0, restarts=2, schedule=SCHEDULE)
    serial = attack_search(arena, budget, jobs=1, **chain_kwargs)
    pooled = attack_search(arena, budget, jobs=4, **chain_kwargs)
    if _dumps(serial) != _dumps(pooled):
        raise SystemExit("chain-parallel search diverged from serial")
    print(
        f"jobs identity (chain-parallel): {serial['scenario_runs']} runs, "
        f"best degradation {serial['best']['degradation']:.3f}"
    )

    # restarts == 1: the pool shards per-seed evaluations instead.
    seed_kwargs = dict(objective="latency", seed=0, restarts=1, schedule=SCHEDULE)
    serial = attack_search(arena, budget, jobs=1, **seed_kwargs)
    pooled = attack_search(arena, budget, jobs=2, **seed_kwargs)
    if _dumps(serial) != _dumps(pooled):
        raise SystemExit("seed-parallel search diverged from serial")
    print(
        f"jobs identity (seed-parallel): {serial['scenario_runs']} runs, "
        f"best degradation {serial['best']['degradation']:.3f}"
    )


def check_smoke_frontier(output_path) -> None:
    report = run_frontier(
        "pbft",
        "latency",
        axis="faulty",
        levels=(1, 6),
        duration=DURATION,
        seeds=(0,),
        seed=0,
        restarts=1,
        schedule=SCHEDULE,
    )
    for point in report["points"]:
        degradation = point["degradation"]
        if not (1.0 <= degradation < float("inf")):
            raise SystemExit(f"frontier point is not finite: {point}")
    if report["best_reference"] is None:
        raise SystemExit("frontier carried no hand-authored reference points")
    by_level = {p["level"]: p["degradation"] for p in report["points"]}
    print(
        f"smoke frontier: f=1 -> {by_level[1]:.3f}, f=6 -> {by_level[6]:.3f}, "
        f"best reference {report['best_reference']:.3f}"
    )
    if output_path:
        write_frontier(report, output_path)
        print(f"wrote {output_path}")


def main() -> int:
    output_path = sys.argv[1] if len(sys.argv) > 1 else None
    check_jobs_identity()
    check_smoke_frontier(output_path)
    print("attack smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
