#!/usr/bin/env python
"""Peak-RSS regression guard for the internet-scale suite.

The n=4096 memory diet (lazy delay rows, the relaxed message plane's
structured column, compacted PBFT accumulators) is only as durable as
the bound CI enforces.  This guard runs the ``pbft/n512`` entry in a
fresh subprocess -- exactly the harness ``repro bench --scale`` uses,
so ``ru_maxrss`` is a true per-scenario peak -- on both the exact and
relaxed planes and fails if either peak exceeds the pinned bound.

The bound is deliberately loose against today's measurement (~220 MB
locally): it catches the class of regression that matters -- an O(n^2)
structure or per-message object graph sneaking back in doubles the
footprint -- without tripping on allocator or interpreter noise.

Usage::

    PYTHONPATH=src python scripts/scale_rss_guard.py [output.json]

Exits non-zero if the entry fails, times out, or exceeds the bound.
"""

import json
import sys

from repro.bench.scale import SUITE, run_entry

#: Pinned peak-RSS bound (MB) for pbft/n512 on either plane.  Measured
#: ~220 MB; a regression that reintroduces quadratic state lands well
#: past this.
RSS_BOUND_MB = 450.0

GUARD_ENTRY = "pbft/n512"


def main(argv):
    entry = next(e for e in SUITE if e.id == GUARD_ENTRY)
    verdicts = []
    failed = False
    for plane in ("columnar", "columnar-fast"):
        record = run_entry(entry, plane=plane)
        status = record.get("status")
        peak = record.get("peak_rss_mb")
        ok = status == "ok" and peak is not None and peak <= RSS_BOUND_MB
        failed = failed or not ok
        verdicts.append(
            {
                "entry": GUARD_ENTRY,
                "plane": plane,
                "status": status,
                "peak_rss_mb": peak,
                "bound_mb": RSS_BOUND_MB,
                "ok": ok,
            }
        )
        print(
            f"{GUARD_ENTRY} plane={plane}: status={status} "
            f"peak_rss={peak} MB (bound {RSS_BOUND_MB} MB) "
            f"-> {'ok' if ok else 'FAIL'}"
        )
    if len(argv) > 1:
        with open(argv[1], "w") as handle:
            json.dump({"guard": verdicts}, handle, indent=2, sort_keys=True)
        print(f"wrote {argv[1]}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
