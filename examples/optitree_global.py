"""OptiTree vs Kauri on a worldwide deployment (the Fig. 9 scenario).

Builds the Global73 deployment, forms a random Kauri tree and an
annealed OptiTree tree, and runs both through the tree-based consensus
engine with 3-way pipelining, comparing throughput and commit latency.

Run:  python examples/optitree_global.py
"""

import random

from repro.consensus.kauri import KauriCluster
from repro.net.deployments import deployment_for
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search
from repro.tree.score import tree_score

DURATION = 15.0
PIPELINE = 3


def main() -> None:
    deployment = deployment_for("Global73")
    n = deployment.n
    f = (n - 1) // 3
    latency = deployment.latency.matrix_seconds() / 2.0
    print(f"deployment: {deployment.name}, n={n}, f={f}, "
          f"branch factor {KauriReconfigurer(n).branch_factor}")

    # Kauri: randomized tree from the first conformity bin.
    kauri_tree = KauriReconfigurer(n, rng=random.Random(0)).tree_for_bin(0)
    # OptiTree: one second of simulated annealing on Definition 1's score.
    result = optitree_search(
        latency, n, f,
        candidates=frozenset(range(n)), u=0,
        rng=random.Random(0),
        schedule=AnnealingSchedule.for_search_time(
            1.0, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,
    )
    opti_tree = result.best_state
    print(f"\npredicted score (k=2f+1): "
          f"Kauri {tree_score(latency, kauri_tree, 2 * f + 1) * 1000:.1f} ms vs "
          f"OptiTree {result.best_score * 1000:.1f} ms "
          f"({result.improvement:+.0%} from the random start)")

    for label, tree in (("Kauri  ", kauri_tree), ("OptiTree", opti_tree)):
        cluster = KauriCluster(deployment, tree, pipeline_depth=PIPELINE, seed=1)
        metrics = cluster.run(DURATION)
        print(f"{label}: throughput {metrics.throughput(DURATION):10,.0f} op/s, "
              f"commit latency {metrics.mean_latency() * 1000:7.1f} ms, "
              f"root in {deployment.cities[tree.root].name}")


if __name__ == "__main__":
    main()
