"""Forensics on a suspicion log: who is faulty, who merely crashed?

Replays a fabricated measurement history through the tree variant of the
SuspicionMonitor and prints the derived structures of §6.4: the crashed
set C, the disjoint-edge set E_d, the triangle set T, the candidate set K
and the fault estimate u -- the same walk-through as the paper's Fig. 6.

Run:  python examples/suspicion_forensics.py
"""

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.tree.candidates import TreeSuspicionMonitor

# The Fig. 6 cast: S1..S4 trade suspicions pairwise, At completes a
# triangle, Bc crashes (never reciprocates), N1..N3 and R stay clean.
NAMES = {
    0: "S1", 1: "S2", 2: "S3", 3: "S4", 4: "At",
    5: "N1", 6: "N2", 7: "Bc", 8: "N3", 9: "R",
}
N, F = 10, 3


def slow(reporter, suspect, round_id):
    return SuspicionRecord(
        reporter=reporter, suspect=suspect, kind=SuspicionKind.SLOW,
        round_id=round_id, msg_type="aggregate", phase=4,
    )


def reciprocate(record):
    return SuspicionRecord(
        reporter=record.suspect, suspect=record.reporter,
        kind=SuspicionKind.FALSE, round_id=record.round_id,
    )


def show(monitor) -> None:
    def names(items):
        return sorted(NAMES[i] for i in items) or "-"

    print(f"  crashed C        : {names(monitor.C)}")
    print(f"  disjoint edges Ed: "
          f"{sorted((NAMES[a], NAMES[b]) for a, b in monitor.e_d) or '-'}")
    print(f"  triangle set T   : {names(monitor.t_set)}")
    print(f"  candidates K     : {names(monitor.K)}")
    print(f"  estimate u       : {monitor.u}")


def main() -> None:
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=N, f=F)

    print("1. Mutual suspicions S1<->S4 and S2<->S3 (both reciprocated):")
    for round_id, (a, b) in enumerate([(0, 3), (1, 2)]):
        record = slow(a, b, round_id)
        log.append(record)
        log.append(reciprocate(record))
    show(monitor)

    print("\n2. 'At' completes a triangle with the (S1, S4) edge:")
    for round_id, (a, b) in enumerate([(4, 0), (4, 3)], start=2):
        record = slow(a, b, round_id)
        log.append(record)
        log.append(reciprocate(record))
    show(monitor)

    print("\n3. 'Bc' is suspected and never reciprocates -> crash after "
          f"f+1 = {F + 1} views:")
    log.append(slow(5, 7, round_id=5))
    for view in range(1, F + 3):
        monitor.advance_view(view)
    show(monitor)

    print("\nOnly N1, N2, N3 and R remain internal-node candidates, with")
    print(f"u = {monitor.u} misbehaving replicas budgeted by the tree score --")
    print("exactly the Fig. 6 outcome.")


if __name__ == "__main__":
    main()
