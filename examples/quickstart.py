"""Quickstart: OptiLog's sensors and monitors on a standalone log.

Builds a 21-replica European deployment, measures link latencies through
probes, commits the latency vectors to a (local) OptiLog log, lets a
Byzantine replica under-perform, and watches the suspicion pipeline expel
it from the candidate set -- all without running a full consensus engine.

Run:  python examples/quickstart.py
"""

from repro.core.latency import probe_all_peers
from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.net import deployment_for

N, F = 21, 6


def main() -> None:
    deployment = deployment_for("Europe21")
    print(f"deployment: {deployment.name} with {deployment.n} replicas")
    print(f"RTT envelope [ms]: {deployment.latency.stats_ms()}")

    # One replica's OptiLog pipeline; in a live system every replica runs
    # one and the log is replicated by the consensus engine.
    pipeline = OptiLogPipeline(0, PipelineSettings(n=N, f=F, delta=1.25))

    # 1. LatencySensor: probe all peers, publish the latency vector.
    probe_all_peers(pipeline.latency_sensor, deployment.latency.rtt)
    vector = pipeline.latency_sensor.measure_and_record()
    for record in pipeline.app.drain():
        pipeline.log.append(record)  # standalone mode: append directly
    print(f"\nlatency vector of replica 0 (first 5 entries, s): "
          f"{[round(v, 4) for v in vector.vector[:5]]}")

    # Feed the other replicas' vectors (all measure the same links here).
    for sender in range(1, N):
        row = tuple(
            0.0 if peer == sender else deployment.latency.one_way(sender, peer)
            for peer in range(N)
        )
        from repro.core.records import LatencyVectorRecord

        pipeline.log.append(LatencyVectorRecord(sender=sender, vector=row))
    print(f"latency matrix complete: {pipeline.latency_monitor.is_complete()}")

    # 2. SuspicionMonitor: replica 13 keeps missing its deadlines; each
    # round one replica reports it (⟨Slow⟩), and 13 reciprocates
    # (condition (c)) so it is treated as misbehaving, not crashed.
    villain = 13
    for round_id, reporter in enumerate((1, 2, 5)):
        pipeline.log.append(SuspicionRecord(
            reporter=reporter, suspect=villain, kind=SuspicionKind.SLOW,
            round_id=round_id, msg_type="write", phase=2,
        ))
        pipeline.log.append(SuspicionRecord(
            reporter=villain, suspect=reporter, kind=SuspicionKind.FALSE,
            round_id=round_id,
        ))
    print(f"\nafter suspicions against replica {villain}:")
    print(f"  candidate set K ({len(pipeline.candidates)} replicas): "
          f"{sorted(pipeline.candidates)}")
    print(f"  estimated misbehaving replicas u = {pipeline.u}")
    assert villain not in pipeline.candidates

    # 3. ConfigSensor/Monitor: attach Aware's search and reconfigure.
    from repro.aware.optiaware import OptiAware

    stack = OptiAware(0, N, F)
    for entry in pipeline.log:
        stack.pipeline.log.append(entry.record)
    proposal = stack.pipeline.config_sensor.search_and_propose()
    stack.pipeline.log.append(proposal)
    config = stack.current_configuration
    print(f"\noptimized configuration: leader={config.leader}, "
          f"Vmax={sorted(config.vmax_replicas)}")
    print(f"predicted round duration: {proposal.claimed_score * 1000:.2f} ms")
    assert villain not in config.special_replicas()
    print(f"\nreplica {villain} holds no special role -- OptiLog at work.")


if __name__ == "__main__":
    main()
