"""Quickstart: run scenarios through the unified runner, then peek
inside OptiLog's sensor/monitor pipeline.

Part 1 uses :mod:`repro.experiments.runner` -- the same entry point as
``python -m repro run`` -- to race a static PBFT leader against
OptiAware under a bursty workload and a delaying leader.

Part 2 drives one replica's OptiLog pipeline standalone (no consensus
engine) to show how committed measurements turn into the agreed
candidate set that role assignment draws from.

Run:  PYTHONPATH=src python examples/quickstart.py
"""

from repro.experiments.runner import FaultSpec, MeasurementPolicy, Scenario, run_scenario


def part1_scenarios() -> None:
    print("=" * 66)
    print("Part 1: the scenario runner")
    print("=" * 66)

    common = dict(
        deployment="wonderproxy-10",   # seeded random 10-city placement
        workload="bursty",
        workload_params={"on_rate": 60.0, "on_duration": 4.0, "off_duration": 4.0},
        duration=60.0,
        seed=0,
        delta=1.25,
        # A Byzantine leader starts delaying its proposals at t=30 s.
        faults=[FaultSpec(kind="delay", start=30.0, attacker="leader",
                          extra_delay=0.8, message_types=("PrePrepare",))],
        # Compressed Aware/OptiAware cadence so reconfiguration happens
        # inside the 60 s window (no-op for static PBFT).
        measurements=MeasurementPolicy(probe_at=2.0, publish_at=5.0,
                                       first_search_at=13.0, search_period=9.0),
    )

    for protocol in ("pbft", "pbft-optiaware"):
        result = run_scenario(Scenario(protocol=protocol, **common))
        metrics = result.metrics()
        client = metrics["client"]
        print(f"\n{protocol}:")
        print(f"  completed requests : {client['requests_completed']}")
        print(f"  mean client latency: {client['mean_latency'] * 1000:.1f} ms "
              f"(p99 {client['p99_latency'] * 1000:.1f} ms)")
        print(f"  reconfigurations   : {metrics['reconfigurations']}")
    print("\nOptiAware reconfigures away from the delaying leader; static")
    print("PBFT stays degraded. Try the same from the shell:")
    print("  python -m repro run --protocol pbft-optiaware "
          "--deployment wonderproxy-10 --workload bursty "
          "--fault delay:start=30,attacker=leader,extra_delay=0.8")


def part2_pipeline() -> None:
    from repro.aware.optiaware import OptiAware
    from repro.core.latency import probe_all_peers
    from repro.core.pipeline import OptiLogPipeline, PipelineSettings
    from repro.core.records import LatencyVectorRecord, SuspicionKind, SuspicionRecord
    from repro.net import deployment_for

    n, f = 21, 6
    print()
    print("=" * 66)
    print("Part 2: inside the sensor -> log -> monitor pipeline")
    print("=" * 66)
    deployment = deployment_for("Europe21")
    print(f"deployment: {deployment.name} with {deployment.n} replicas")

    # One replica's OptiLog pipeline; in a live system every replica runs
    # one and the log is replicated by the consensus engine.
    pipeline = OptiLogPipeline(0, PipelineSettings(n=n, f=f, delta=1.25))

    # 1. LatencySensor: probe all peers, publish the latency vector.
    probe_all_peers(pipeline.latency_sensor, deployment.latency.rtt)
    pipeline.latency_sensor.measure_and_record()
    for record in pipeline.app.drain():
        pipeline.log.append(record)  # standalone mode: append directly
    # Feed the other replicas' vectors (all measure the same links here).
    for sender in range(1, n):
        row = tuple(
            0.0 if peer == sender else deployment.latency.one_way(sender, peer)
            for peer in range(n)
        )
        pipeline.log.append(LatencyVectorRecord(sender=sender, vector=row))
    print(f"latency matrix complete: {pipeline.latency_monitor.is_complete()}")

    # 2. SuspicionMonitor: replica 13 keeps missing its deadlines; each
    # round one replica reports it ("Slow"), and 13 reciprocates
    # (condition (c)) so it is treated as misbehaving, not crashed.
    villain = 13
    for round_id, reporter in enumerate((1, 2, 5)):
        pipeline.log.append(SuspicionRecord(
            reporter=reporter, suspect=villain, kind=SuspicionKind.SLOW,
            round_id=round_id, msg_type="write", phase=2,
        ))
        pipeline.log.append(SuspicionRecord(
            reporter=villain, suspect=reporter, kind=SuspicionKind.FALSE,
            round_id=round_id,
        ))
    print(f"after suspicions against replica {villain}:")
    print(f"  candidate set K ({len(pipeline.candidates)} replicas): "
          f"{sorted(pipeline.candidates)}")
    print(f"  estimated misbehaving replicas u = {pipeline.u}")
    assert villain not in pipeline.candidates

    # 3. ConfigSensor/Monitor: attach Aware's search and reconfigure.
    stack = OptiAware(0, n, f)
    for entry in pipeline.log:
        stack.pipeline.log.append(entry.record)
    proposal = stack.pipeline.config_sensor.search_and_propose()
    stack.pipeline.log.append(proposal)
    config = stack.current_configuration
    print(f"optimized configuration: leader={config.leader}, "
          f"Vmax={sorted(config.vmax_replicas)}")
    print(f"predicted round duration: {proposal.claimed_score * 1000:.2f} ms")
    assert villain not in config.special_replicas()
    print(f"replica {villain} holds no special role -- OptiLog at work.")


def main() -> None:
    part1_scenarios()
    part2_pipeline()


if __name__ == "__main__":
    main()
