"""Tree selection for the (simulated) Stellar validator network (§7.4).

Maps the 56-validator Stellar set onto the latency model and shows how
OptiTree's annealed placement exploits the network's heavy US/EU
clustering: well-connected data-centre validators become internal nodes,
remote ones become leaves.

Run:  python examples/stellar_network.py
"""

import random
from collections import Counter

from repro.consensus.kauri import KauriCluster
from repro.net.stellar import stellar_deployment
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.optitree import optitree_search

DURATION = 15.0


def describe_tree(deployment, tree, label) -> None:
    internal_cities = Counter(
        deployment.cities[replica].name for replica in tree.internal_nodes
    )
    print(f"  {label} internal nodes: "
          + ", ".join(f"{city}×{count}" if count > 1 else city
                      for city, count in sorted(internal_cities.items())))


def main() -> None:
    deployment = stellar_deployment()
    n = deployment.n
    f = (n - 1) // 3
    latency = deployment.latency.matrix_seconds() / 2.0
    print(f"Stellar network: {n} validators, f={f}")
    regions = Counter(city.region for city in deployment.cities)
    print(f"validator regions: {dict(regions)}")

    kauri_tree = KauriReconfigurer(n, rng=random.Random(2)).tree_for_bin(0)
    opti_tree = optitree_search(
        latency, n, f, candidates=frozenset(range(n)), u=0,
        rng=random.Random(2),
        schedule=AnnealingSchedule.for_search_time(
            1.0, initial_temperature=0.05, cooling=0.9995
        ),
        k=2 * f + 1,
    ).best_state

    print()
    describe_tree(deployment, kauri_tree, "Kauri   ")
    describe_tree(deployment, opti_tree, "OptiTree")

    print()
    results = {}
    for label, tree in (("Kauri", kauri_tree), ("OptiTree", opti_tree)):
        cluster = KauriCluster(deployment, tree, pipeline_depth=3, seed=3)
        metrics = cluster.run(DURATION)
        results[label] = metrics
        print(f"{label:9s} throughput {metrics.throughput(DURATION):10,.0f} op/s, "
              f"latency {metrics.mean_latency() * 1000:7.1f} ms")

    gain = (results["OptiTree"].throughput(DURATION)
            / results["Kauri"].throughput(DURATION) - 1.0)
    drop = 1.0 - (results["OptiTree"].mean_latency()
                  / results["Kauri"].mean_latency())
    print(f"\nOptiTree vs Kauri: throughput {gain:+.1%}, latency {-drop:+.1%}")
    print("(paper, §7.4: +67.5% throughput, −36% latency)")


if __name__ == "__main__":
    main()
