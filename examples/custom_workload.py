"""Defining your own workload and running it through the scenario runner.

Two user-defined traffic shapes:

* ``DiurnalWorkload`` subclasses :class:`repro.workloads.OpenLoopWorkload`
  and only overrides the rate profile -- a sinusoidal day/night cycle,
  discretized into piecewise-constant steps so the base class's
  boundary-exact Poisson sampling stays exact.
* ``FlashCrowdWorkload`` composes an existing shape: a quiet baseline
  with one huge spike, built by overriding ``rate_at``/``next_change``
  directly.

Because a :class:`~repro.experiments.runner.Scenario` accepts a
``Workload`` *instance* (not just a registered name), custom shapes plug
straight into ``run_scenario`` -- and registering them in
``repro.workloads.WORKLOADS`` would expose them to the CLI too.

Run:  PYTHONPATH=src python examples/custom_workload.py
"""

import math

from repro.experiments.runner import Scenario, run_scenario
from repro.workloads import OpenLoopWorkload


class DiurnalWorkload(OpenLoopWorkload):
    """Sinusoidal day/night rate: mean +/- amplitude over one period."""

    name = "diurnal"

    def __init__(self, mean_rate=60.0, amplitude=40.0, period=30.0,
                 steps_per_period=12, clients=1, sites=None):
        super().__init__(rate=mean_rate, clients=clients, sites=sites)
        self.mean_rate = mean_rate
        self.amplitude = amplitude
        self.period = period
        self.step = period / steps_per_period

    def rate_at(self, t):
        # Piecewise-constant over each step, sampled at the step start.
        start = (t // self.step) * self.step
        phase = 2.0 * math.pi * (start % self.period) / self.period
        return max(0.0, self.mean_rate + self.amplitude * math.sin(phase))

    def next_change(self, t):
        boundary = ((t // self.step) + 1) * self.step
        # Strictly after t, or float noise at a boundary livelocks the sim.
        return boundary if boundary > t else boundary + self.step


class FlashCrowdWorkload(OpenLoopWorkload):
    """Quiet baseline, then a short massive spike (a 'flash crowd')."""

    name = "flash-crowd"

    def __init__(self, base_rate=20.0, spike_rate=300.0,
                 spike_start=20.0, spike_duration=5.0, clients=1, sites=None):
        super().__init__(rate=base_rate, clients=clients, sites=sites)
        self.base_rate = base_rate
        self.spike_rate = spike_rate
        self.spike_start = spike_start
        self.spike_end = spike_start + spike_duration

    def in_spike(self, t):
        return self.spike_start <= t < self.spike_end

    def rate_at(self, t):
        return self.spike_rate if self.in_spike(t) else self.base_rate

    def next_change(self, t):
        if t < self.spike_start:
            return self.spike_start
        if t < self.spike_end:
            return self.spike_end
        return None  # constant baseline forever after


def main() -> None:
    for workload in (
        DiurnalWorkload(mean_rate=60.0, amplitude=40.0, period=30.0),
        FlashCrowdWorkload(base_rate=20.0, spike_rate=300.0, spike_start=20.0),
    ):
        scenario = Scenario(
            protocol="hotstuff-rr",
            deployment="wonderproxy-10",
            workload=workload,          # a Workload instance plugs in directly
            duration=45.0,
            seed=0,
        )
        metrics = run_scenario(scenario).metrics()
        client = metrics["client"]
        print(f"{workload.name:12s}: sent {client['requests_sent']:5d}, "
              f"completed {client['requests_completed']:5d}, "
              f"mean latency {client['mean_latency'] * 1000:6.1f} ms, "
              f"p99 {client['p99_latency'] * 1000:6.1f} ms")


if __name__ == "__main__":
    main()
