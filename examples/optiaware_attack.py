"""OptiAware under a Pre-Prepare delay attack (the Fig. 7 scenario).

Runs a full PBFT deployment over 21 European cities with a closed-loop
client in Nuremberg.  At one third of the run a Byzantine leader starts
delaying its proposals; OptiAware's suspicion pipeline detects the delay,
expels the attacker from the candidate set and reconfigures to a new
leader, restoring the optimized latency.

Run:  python examples/optiaware_attack.py
"""

from repro.consensus.pbft import PbftCluster
from repro.faults.delay import DelayAttack
from repro.net.deployments import EUROPE21, deployment_for

DURATION = 60.0
ATTACK_AT = 27.0


def main() -> None:
    deployment = deployment_for("Europe21")
    cluster = PbftCluster(
        deployment,
        mode="optiaware",
        delta=1.25,
        client_city_index=EUROPE21.index("Nuremberg"),
    )
    cluster.schedule_measurements(
        probe_at=2.0, publish_at=5.0, first_search_at=13.0,
        search_period=9.0, horizon=DURATION,
    )

    def launch_attack() -> None:
        attacker = cluster.current_leader
        print(f"[t={cluster.sim.now:5.1f}s] leader {attacker} turns Byzantine: "
              "delaying proposals by 800 ms")
        cluster.network.add_interceptor(DelayAttack(
            attacker=attacker,
            message_types=("PrePrepare",),
            extra_delay=0.8,
            start=ATTACK_AT,
            now_fn=lambda: cluster.sim.now,
        ))

    cluster.sim.schedule_at(ATTACK_AT, launch_attack)
    print(f"running OptiAware on {deployment.name} for {DURATION:.0f}s "
          f"(attack at {ATTACK_AT:.0f}s)…")
    cluster.run(DURATION)

    print("\nclient latency (Nuremberg), 5-second means:")
    series = cluster.client.latency_series(DURATION, bucket=5.0)
    for time, latency in series:
        bar = "#" * min(60, int(latency * 200))
        print(f"  t={time:5.1f}s  {latency * 1000:8.1f} ms  {bar}")

    pipeline = cluster.replicas[1].optilog.pipeline
    print(f"\nreconfigurations: "
          f"{[f'{t:.1f}s' for t in cluster.replicas[1].reconfigure_times]}")
    print(f"final leader: {cluster.current_leader}")
    print(f"candidate set K: {sorted(pipeline.candidates)}")
    print(f"suspicion log entries: "
          f"{pipeline.log.type_histogram().get('SuspicionRecord', 0)}")


if __name__ == "__main__":
    main()
