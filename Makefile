# OptiLog reproduction -- developer entry points.
#
#   make test           tier-1 test suite (the CI gate)
#   make bench          `repro bench` perf suite -> BENCH_full.json
#   make bench-quick    CI variant (n <= 32, capped durations) -> BENCH_quick.json
#                       + quick search suite -> BENCH_search_quick.json
#                       + quick pipeline suite -> BENCH_pipeline_quick.json
#   make bench-search   optimizer-layer suite -> BENCH_PR4.json
#   make bench-pipeline monitoring-pipeline suite -> BENCH_PR5.json
#   make bench-figures  figure benchmarks at CI scale (REPRO_FULL=1 for paper scale)
#   make bench-metrics  measurement-plane suite -> BENCH_metrics.json
#   make bench-plane    message-plane suite (object vs columnar) -> BENCH_PR7.json
#   make bench-scale    internet-scale suite (n up to 8192) -> BENCH_PR10.json
#   make bench-attack   adversary-synthesis suite -> BENCH_PR9.json
#   make bench-all      every bench suite, one consolidated -> BENCH_all.json
#   make campaign-smoke flat-RSS + kill/resume campaign smoke (REPRO_FULL=1 for 2M)
#   make attack-smoke   jobs byte-identity + smoke robustness frontier
#   make profile        cProfile over the fixed hot-path scenario
#   make profile-search cProfile over the fixed search hot path
#   make profile-pipeline cProfile over the fixed monitoring hot path
#   make profile-scale  cProfile over one n=1024 hierarchical scenario
#   make lint           bytecode-compile the tree + import-check the package
#
# Everything runs from the source tree via PYTHONPATH; `pip install -e .`
# additionally provides the `repro` console script.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-quick bench-search bench-pipeline bench-figures bench-metrics bench-plane bench-scale bench-attack bench-all campaign-smoke attack-smoke profile profile-search profile-pipeline profile-scale lint quickstart

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro bench --output BENCH_full.json

bench-quick:
	$(PYTHON) -m repro bench --quick --output BENCH_quick.json
	$(PYTHON) -m repro bench --quick --search --output BENCH_search_quick.json
	$(PYTHON) -m repro bench --quick --pipeline --output BENCH_pipeline_quick.json
	$(PYTHON) -m repro bench --quick --metrics --output BENCH_metrics_quick.json
	$(PYTHON) -m repro bench --quick --plane --output BENCH_plane_quick.json

bench-search:
	$(PYTHON) -m repro bench --search --output BENCH_PR4.json

bench-pipeline:
	$(PYTHON) -m repro bench --pipeline --output BENCH_PR5.json

bench-figures:
	$(PYTHON) -m pytest benchmarks -q

bench-metrics:
	$(PYTHON) -m repro bench --metrics --output BENCH_metrics.json

bench-plane:
	$(PYTHON) -m repro bench --plane --output BENCH_PR7.json

bench-scale:
	$(PYTHON) -m repro bench --scale --output BENCH_PR10.json

bench-attack:
	$(PYTHON) -m repro bench --attack --output BENCH_PR9.json

bench-all:
	$(PYTHON) -m repro.bench.all BENCH_all.json

campaign-smoke:
	$(PYTHON) scripts/campaign_smoke.py

attack-smoke:
	$(PYTHON) scripts/attack_smoke.py BENCH_frontier_smoke.json

profile:
	$(PYTHON) -m repro.bench.profile

profile-search:
	$(PYTHON) -m repro.bench.profile_search

profile-pipeline:
	$(PYTHON) -m repro.bench.profile_pipeline

profile-scale:
	$(PYTHON) -m repro.bench.profile_scale

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro, repro.experiments.runner, repro.workloads, repro.bench, repro.__main__"
	$(PYTHON) -m repro list > /dev/null

quickstart:
	$(PYTHON) examples/quickstart.py
