# OptiLog reproduction -- developer entry points.
#
#   make test    tier-1 test suite (the CI gate)
#   make bench   figure benchmarks at CI scale (REPRO_FULL=1 for paper scale)
#   make lint    bytecode-compile the tree + import-check the package
#
# Everything runs from the source tree via PYTHONPATH; `pip install -e .`
# additionally provides the `repro` console script.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench lint quickstart

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks -q

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
	$(PYTHON) -c "import repro, repro.experiments.runner, repro.workloads, repro.__main__"
	$(PYTHON) -m repro list > /dev/null

quickstart:
	$(PYTHON) examples/quickstart.py
