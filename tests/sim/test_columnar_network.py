"""Columnar message plane: bit-identity with the object plane, batch
handler dispatch, fault fallback, stats parity and pickling.

The contract under test (see the "Message planes" section of
:mod:`repro.sim.network`): a pristine columnar network delivers exactly
the messages the object plane delivers, at the same simulated times, in
the same global order, with the same RNG draws, seq numbers and
statistics -- while using one heap cursor per column instead of one
heap entry per message.  Any fault (down node, partition, interceptor,
per-link override) makes new sends take the object path and in-flight
columnar rows fall back to per-message delivery-time checks.
"""

import pickle

from repro.sim.engine import Simulator
from repro.sim.network import MESSAGE_PLANES, Network

import pytest


class Ping:
    """Minimal message class so batch dispatch has a real class name."""

    wire_size = 10

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Ping({self.value})"


class Pong(Ping):
    wire_size = 7


def make_pair(delay=0.01, jitter=0.0, seed=1):
    """One simulator + network per plane, identically seeded."""
    pair = []
    for plane in ("object", "columnar"):
        sim = Simulator(seed=seed)
        network = Network(sim, lambda a, b: delay, jitter=jitter, plane=plane)
        pair.append((sim, network))
    return pair


def run_traffic(sim, network, n=6):
    """Mixed multicasts, unicasts and reactive sends; returns the trace."""
    trace = []

    def handler(dst):
        def on_message(src, message):
            trace.append((round(sim.now, 12), src, dst, repr(message)))
            # Reactive unicast: odd receivers bounce a Pong to node 0.
            if dst % 2 == 1 and isinstance(message, Ping) and not isinstance(
                message, Pong
            ):
                network.send(dst, 0, Pong(message.value), Pong.wire_size)

        return on_message

    for node in range(n):
        network.register(node, handler(node))
    for round_index in range(4):
        src = round_index % n
        network.multicast(src, range(n), Ping(round_index), Ping.wire_size)
        network.send(src, (src + 1) % n, Ping(100 + round_index), Ping.wire_size)
    sim.run()
    return trace


def snapshot(sim, network):
    stats = network.stats
    return {
        "now": sim.now,
        "seq": sim._seq,
        "rng": sim.rng.getstate(),
        "sent": stats.messages_sent,
        "delivered": stats.messages_delivered,
        "dropped": stats.messages_dropped,
        "bytes": stats.bytes_sent,
        "per_type_bytes": stats.per_type_bytes,
    }


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_plane_vocabulary_and_validation():
    assert MESSAGE_PLANES == (
        "object", "columnar", "columnar-fast", "check", "check-fast"
    )
    sim = Simulator(seed=0)
    with pytest.raises(ValueError, match="check"):
        Network(sim, lambda a, b: 0.01, plane="check")
    with pytest.raises(ValueError, match="check"):
        Network(sim, lambda a, b: 0.01, plane="check-fast")
    with pytest.raises(ValueError):
        Network(sim, lambda a, b: 0.01, plane="rowwise")


# ----------------------------------------------------------------------
# Bit-identity on pristine networks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jitter", [0.0, 0.05])
def test_columnar_trace_matches_object_plane(jitter):
    (sim_o, net_o), (sim_c, net_c) = make_pair(jitter=jitter)
    trace_object = run_traffic(sim_o, net_o)
    trace_columnar = run_traffic(sim_c, net_c)
    assert trace_columnar == trace_object
    assert snapshot(sim_c, net_c) == snapshot(sim_o, net_o)


def test_columnar_uses_fewer_heap_events():
    (sim_o, net_o), (sim_c, net_c) = make_pair()
    run_traffic(sim_o, net_o)
    run_traffic(sim_c, net_c)
    # One cursor per drained column vs one entry per message: the
    # columnar run must process strictly fewer heap events for the
    # identical delivery trace.
    assert sim_c.events_processed < sim_o.events_processed


def test_delivery_tie_order_matches_object_plane():
    # Zero delay and zero jitter: every delivery carries the same
    # timestamp and order is decided purely by seq allocation.
    (sim_o, net_o), (sim_c, net_c) = make_pair(delay=0.0)
    trace_object = run_traffic(sim_o, net_o)
    trace_columnar = run_traffic(sim_c, net_c)
    assert trace_columnar == trace_object


# ----------------------------------------------------------------------
# Batch handler dispatch (unicast columns)
# ----------------------------------------------------------------------
class BatchEndpoint:
    """Records whether rows arrived via the batch or the row path."""

    def __init__(self, sim):
        self.sim = sim
        self.batches = []
        self.rows = []

    def on_message(self, src, message):
        self.rows.append((self.sim.now, src, message.value))

    def handle_PingBatch(self, srcs, messages, times):  # noqa: N802
        self.batches.append(
            (list(srcs), [m.value for m in messages], list(times))
        )
        return len(messages)


def test_unicast_runs_reach_batch_handler():
    sim = Simulator(seed=1)
    network = Network(sim, lambda a, b: 0.01, plane="columnar")
    endpoint = BatchEndpoint(sim)
    network.register(1, endpoint.on_message)
    network.register_batch_endpoint(1, endpoint)
    for src in (0, 2, 3):
        network.send(src, 1, Ping(src), Ping.wire_size)
    sim.run()
    # All three same-class rows arrive as one gathered run; the per-row
    # path never fires.
    assert endpoint.rows == []
    assert len(endpoint.batches) == 1
    srcs, values, times = endpoint.batches[0]
    assert srcs == values == [0, 2, 3]
    assert times == sorted(times)
    assert network.stats.messages_delivered == 3


class YieldingEndpoint(BatchEndpoint):
    """Consumes one row per call and replies: the cooperative contract
    for handlers whose rows send (side effects may precede row k+1).
    The per-row handler is equivalent, as the contract requires --
    single-row runs are delivered through it, not the batch path."""

    def __init__(self, sim, network):
        super().__init__(sim)
        self.network = network

    def on_message(self, src, message):
        self.rows.append((self.sim.now, src, message.value))
        self.network.send(1, src, Pong(message.value), Pong.wire_size)

    def handle_PingBatch(self, srcs, messages, times):  # noqa: N802
        self.sim.now = times[0]
        self.batches.append((srcs[0], messages[0].value, times[0]))
        self.network.send(1, srcs[0], Pong(messages[0].value), Pong.wire_size)
        return 1


def test_yielding_batch_handler_preserves_order():
    def run(plane):
        sim = Simulator(seed=1)
        network = Network(sim, lambda a, b: 0.01, plane=plane)
        trace = []
        if plane == "columnar":
            endpoint = YieldingEndpoint(sim, network)
            network.register(1, endpoint.on_message)
            network.register_batch_endpoint(1, endpoint)
        else:
            def on_ping(src, message):
                network.send(1, src, Pong(message.value), Pong.wire_size)

            network.register(1, on_ping)
        for node in (0, 2, 3):
            network.register(
                node,
                lambda src, msg, node=node: trace.append(
                    (round(sim.now, 12), src, node, msg.value)
                ),
            )
            network.send(node, 1, Ping(node), Ping.wire_size)
        sim.run()
        return trace, snapshot(sim, network)

    trace_object, stats_object = run("object")
    trace_columnar, stats_columnar = run("columnar")
    assert trace_columnar == trace_object
    # The endpoints differ by construction, so only the wire-visible
    # stats are compared (same sends, same deliveries, same bytes).
    assert stats_columnar == stats_object


class GreedyEndpoint(BatchEndpoint):
    """Claims more rows than it was handed: the network must clamp."""

    def handle_PingBatch(self, srcs, messages, times):  # noqa: N802
        self.batches.append(len(messages))
        return len(messages) + 10


def test_overclaimed_consumed_count_is_clamped():
    sim = Simulator(seed=1)
    network = Network(sim, lambda a, b: 0.01, plane="columnar")
    endpoint = GreedyEndpoint(sim)
    network.register(1, endpoint.on_message)
    network.register_batch_endpoint(1, endpoint)
    for src in (0, 2):
        network.send(src, 1, Ping(src), Ping.wire_size)
    sim.run()
    assert network.stats.messages_delivered == 2


def test_mixed_classes_split_into_class_runs():
    sim = Simulator(seed=1)
    network = Network(sim, lambda a, b: 0.0, plane="columnar")
    endpoint = BatchEndpoint(sim)
    network.register(1, endpoint.on_message)
    network.register_batch_endpoint(1, endpoint)
    # Ping, Ping, Pong, Ping at identical times: the Pong (no batch
    # handler) breaks the run and takes the per-row path, and the
    # trailing single-row Ping run goes per-row too (batch handlers
    # only see runs of two or more).
    for index, cls in enumerate((Ping, Ping, Pong, Ping)):
        network.send(index + 2, 1, cls(index), cls.wire_size)
    sim.run()
    assert [values for _, values, _ in endpoint.batches] == [[0, 1]]
    assert [value for _, _, value in endpoint.rows] == [2, 3]


# ----------------------------------------------------------------------
# Horizon slicing
# ----------------------------------------------------------------------
def test_horizon_slices_columns_and_resumes():
    # run(until=...) must not deliver rows beyond the horizon, and a
    # later run() must deliver them -- the campaign plane's slice loop.
    def run(plane):
        sim = Simulator(seed=1)
        network = Network(sim, lambda a, b: 1.0, plane=plane)
        trace = []
        for node in range(3):
            network.register(
                node,
                lambda src, msg, node=node: trace.append(
                    (sim.now, src, node, msg.value)
                ),
            )
        network.multicast(0, range(3), Ping(1), Ping.wire_size)
        sim.run(until=0.5)
        first = list(trace)
        sim.run(until=10.0)
        return first, trace

    first_o, full_o = run("object")
    first_c, full_c = run("columnar")
    assert first_c == first_o  # nothing before the horizon... (self-row)
    assert full_c == full_o  # ...and everything after resuming


# ----------------------------------------------------------------------
# Fault fallback
# ----------------------------------------------------------------------
def test_mid_flight_crash_drops_on_both_planes():
    def run(plane):
        sim = Simulator(seed=1)
        network = Network(sim, lambda a, b: 1.0, plane=plane)
        trace = []
        for node in range(4):
            network.register(
                node,
                lambda src, msg, node=node: trace.append((node, msg.value)),
            )
        network.multicast(0, range(4), Ping(7), Ping.wire_size)
        network.send(1, 2, Ping(8), Ping.wire_size)
        sim.schedule(0.5, network.set_down, 2, True)
        sim.run()
        return trace, snapshot(sim, network)

    trace_object, stats_object = run("object")
    trace_columnar, stats_columnar = run("columnar")
    assert trace_columnar == trace_object
    assert stats_columnar == stats_object
    assert stats_columnar["dropped"] == 2  # multicast row + unicast row


def test_sends_after_fault_take_object_path_and_match():
    def run(plane):
        sim = Simulator(seed=3)
        network = Network(sim, lambda a, b: 0.01, jitter=0.05, plane=plane)
        trace = []
        for node in range(4):
            network.register(
                node,
                lambda src, msg, node=node: trace.append(
                    (round(sim.now, 12), node, msg.value)
                ),
            )

        def interceptor(src, dst, message, delay):
            if message.value == "drop-me":
                return None
            return message, delay * 2.0

        network.multicast(0, range(4), Ping("early"), Ping.wire_size)
        sim.schedule(0.5, network.add_interceptor, interceptor)
        sim.schedule(1.0, network.multicast, 1, range(4), Ping("late"),
                     Ping.wire_size)
        sim.schedule(1.0, network.send, 1, 3, Ping("drop-me"), Ping.wire_size)
        sim.run()
        return trace, snapshot(sim, network)

    trace_object, stats_object = run("object")
    trace_columnar, stats_columnar = run("columnar")
    assert trace_columnar == trace_object
    assert stats_columnar == stats_object
    # The interceptor-dropped unicast is not counted as sent (satellite:
    # drop-vs-sent accounting must agree between planes).
    assert stats_columnar["dropped"] == 1
    assert stats_columnar["per_type_bytes"] == stats_object["per_type_bytes"]


def test_lossy_interceptor_stats_agree_between_planes():
    # A probabilistic-loss interceptor added mid-run: drops must not
    # count as sent on the columnar path either, and per_type_bytes must
    # agree byte-for-byte (the loss RNG is seeded per run).
    import random

    def run(plane):
        sim = Simulator(seed=2)
        network = Network(sim, lambda a, b: 0.02, plane=plane)
        received = []
        for node in range(5):
            network.register(
                node,
                lambda src, msg, node=node: received.append((node, msg.value)),
            )
        rng = random.Random(99)

        def lossy(src, dst, message, delay):
            if rng.random() < 0.5:
                return None
            return message, delay

        def blast(tag):
            network.multicast(1, range(5), Ping(tag), Ping.wire_size)
            network.send(2, 3, Pong(tag), Pong.wire_size)

        blast("pre-fault")
        sim.schedule(0.1, network.add_interceptor, lossy)
        for start in (0.2, 0.3):
            sim.schedule(start, blast, f"at-{start}")
        sim.run()
        return received, snapshot(sim, network)

    received_object, stats_object = run("object")
    received_columnar, stats_columnar = run("columnar")
    assert received_columnar == received_object
    assert stats_columnar == stats_object
    assert stats_columnar["dropped"] > 0
    sent_by_type = stats_columnar["per_type_bytes"]
    assert set(sent_by_type) == {"Ping", "Pong"}


# ----------------------------------------------------------------------
# Pickling (checkpoint/resume with columns in flight)
# ----------------------------------------------------------------------
def _half_second(a, b):
    """Module-level delay provider so the network graph pickles."""
    return 0.5


class PicklableEndpoint:
    """Module-level endpoint so the network graph pickles."""

    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def __call__(self, src, message):
        self.received.append((round(self.sim.now, 12), src, message.value))


def test_columnar_network_pickles_with_rows_in_flight():
    def build():
        sim = Simulator(seed=4)
        network = Network(sim, _half_second, jitter=0.1, plane="columnar")
        endpoints = [PicklableEndpoint(sim) for _ in range(3)]
        for node, endpoint in enumerate(endpoints):
            network.register(node, endpoint)
        network.multicast(0, range(3), Ping("m"), Ping.wire_size)
        network.send(1, 2, Ping("u"), Ping.wire_size)
        return sim, network, endpoints

    # Uninterrupted run.
    sim, network, endpoints = build()
    sim.run()
    want = [endpoint.received for endpoint in endpoints]
    want_stats = snapshot(sim, network)

    # Pickled mid-flight (armed cursors, partially drained columns).
    sim, network, endpoints = build()
    sim.run(until=0.1)
    sim2, network2, endpoints2 = pickle.loads(
        pickle.dumps((sim, network, endpoints))
    )
    sim2.run()
    assert [endpoint.received for endpoint in endpoints2] == want
    assert snapshot(sim2, network2) == want_stats


# ----------------------------------------------------------------------
# Relaxed plane (columnar-fast)
# ----------------------------------------------------------------------
class FloorDelay:
    """Module-level provider (pickles) exposing the relaxed plane's
    window-cap floor: constant cross-node delay, zero self delay."""

    def __init__(self, delay=0.01):
        self.delay = delay

    def __call__(self, a, b):
        return 0.0 if a == b else self.delay

    def delay_floor(self):
        return self.delay


def test_fast_plane_reads_the_provider_delay_floor():
    sim = Simulator(seed=0)
    network = Network(sim, FloorDelay(0.02), plane="columnar-fast")
    assert network._delay_floor == 0.02
    # Bare callables advertise no floor: capping is disabled.
    network.one_way_delay = lambda a, b: 0.02
    assert network._delay_floor == 0.0
    # Exact planes never cap, whatever the provider knows.
    exact = Network(Simulator(seed=0), FloorDelay(0.02), plane="columnar")
    assert exact._delay_floor == 0.0


def test_fast_plane_delivers_object_multiset_in_dst_time_order():
    # The relaxed contract: same deliveries at the same timestamps as
    # the object plane (as a multiset -- global interleaving is free),
    # and with a positive floor each destination observes its rows in
    # non-decreasing time order.
    def run(plane):
        sim = Simulator(seed=3)
        network = Network(sim, FloorDelay(), plane=plane)
        trace = run_traffic(sim, network)
        stats = snapshot(sim, network)
        return trace, stats

    trace_object, stats_object = run("object")
    trace_fast, stats_fast = run("columnar-fast")
    assert sorted(trace_fast) == sorted(trace_object)
    for key in ("seq", "sent", "delivered", "dropped", "bytes",
                "per_type_bytes"):
        assert stats_fast[key] == stats_object[key], key
    per_dst = {}
    for t, src, dst, rep in trace_fast:
        per_dst.setdefault(dst, []).append(t)
    for dst, times in per_dst.items():
        assert times == sorted(times), dst


def test_fast_plane_without_floor_keeps_barrier_equivalence():
    # A bare-callable provider (floor 0.0) disables window capping;
    # barrier-level coalescing must still deliver the object plane's
    # exact multiset of (time, src, dst, message) rows.
    def run(plane):
        sim = Simulator(seed=5)
        network = Network(sim, lambda a, b: 0.01 if a != b else 0.0,
                          plane=plane)
        return run_traffic(sim, network)

    assert sorted(run("columnar-fast")) == sorted(run("object"))


def test_fast_network_pickles_with_rows_in_flight():
    def build():
        sim = Simulator(seed=4)
        network = Network(
            sim, FloorDelay(0.5), jitter=0.1, plane="columnar-fast"
        )
        endpoints = [PicklableEndpoint(sim) for _ in range(3)]
        for node, endpoint in enumerate(endpoints):
            network.register(node, endpoint)
        network.multicast(0, range(3), Ping("m"), Ping.wire_size)
        network.send(1, 2, Ping("u"), Ping.wire_size)
        return sim, network, endpoints

    sim, network, endpoints = build()
    sim.run()
    want = [endpoint.received for endpoint in endpoints]
    want_stats = snapshot(sim, network)

    # Cut while the structured column holds rows and the drain cursor
    # is armed: __getstate__ snapshots buf[:count] + pool + cursor keys.
    sim, network, endpoints = build()
    sim.run(until=0.1)
    assert network._fast.count > 0
    sim2, network2, endpoints2 = pickle.loads(
        pickle.dumps((sim, network, endpoints))
    )
    sim2.run()
    assert [endpoint.received for endpoint in endpoints2] == want
    assert snapshot(sim2, network2) == want_stats
