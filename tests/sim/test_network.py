"""Tests for the simulated network."""

from repro.sim.engine import Simulator
from repro.sim.network import Network


def make_network(delay=0.01, jitter=0.0):
    sim = Simulator(seed=1)
    network = Network(sim, lambda a, b: delay, jitter=jitter)
    return sim, network


def test_message_delivered_after_link_delay():
    sim, network = make_network(delay=0.05)
    inbox = []
    network.register(1, lambda src, msg: inbox.append((sim.now, src, msg)))
    network.send(0, 1, "hello")
    sim.run()
    assert inbox == [(0.05, 0, "hello")]


def test_self_delivery_is_instant():
    sim, network = make_network(delay=0.05)
    inbox = []
    network.register(0, lambda src, msg: inbox.append(sim.now))
    network.send(0, 0, "self")
    sim.run()
    assert inbox == [0.0]


def test_multicast_reaches_all():
    sim, network = make_network()
    inboxes = {i: [] for i in range(3)}
    for i in range(3):
        network.register(i, lambda src, msg, i=i: inboxes[i].append(msg))
    network.multicast(0, range(3), "m")
    sim.run()
    assert all(inboxes[i] == ["m"] for i in range(3))


def test_down_node_drops_messages_both_ways():
    sim, network = make_network()
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.set_down(1)
    network.send(0, 1, "lost")
    sim.run()
    assert inbox == []
    assert network.stats.messages_dropped == 1
    network.set_down(1, False)
    network.send(0, 1, "found")
    sim.run()
    assert inbox == ["found"]


def test_crash_during_flight_drops_delivery():
    sim, network = make_network(delay=1.0)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.send(0, 1, "in-flight")
    sim.schedule(0.5, network.set_down, 1, True)
    sim.run()
    assert inbox == []


def test_interceptor_can_drop_and_delay():
    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append((sim.now, msg)))

    def interceptor(src, dst, message, delay):
        if message == "drop":
            return None
        return message, delay + 1.0

    network.add_interceptor(interceptor)
    network.send(0, 1, "drop")
    network.send(0, 1, "slow")
    sim.run()
    assert inbox == [(1.01, "slow")]


def test_jitter_stretches_delay_within_bound():
    sim, network = make_network(delay=0.1, jitter=0.1)
    times = []
    network.register(1, lambda src, msg: times.append(sim.now))
    for _ in range(50):
        network.send(0, 1, "x")
    sim.run()
    assert all(0.1 <= t <= 0.11 + 1e-9 for t in times)


def test_stats_count_bytes_per_type():
    sim, network = make_network()
    network.register(1, lambda src, msg: None)
    network.send(0, 1, "abc", size=10)
    network.send(0, 1, "def", size=5)
    sim.run()
    assert network.stats.bytes_sent == 15
    assert network.stats.per_type_bytes["str"] == 15
    assert network.stats.messages_delivered == 2
