"""Tests for the simulated network."""

from repro.sim.engine import Simulator
from repro.sim.network import Network


def make_network(delay=0.01, jitter=0.0):
    sim = Simulator(seed=1)
    network = Network(sim, lambda a, b: delay, jitter=jitter)
    return sim, network


def test_message_delivered_after_link_delay():
    sim, network = make_network(delay=0.05)
    inbox = []
    network.register(1, lambda src, msg: inbox.append((sim.now, src, msg)))
    network.send(0, 1, "hello")
    sim.run()
    assert inbox == [(0.05, 0, "hello")]


def test_self_delivery_is_instant():
    sim, network = make_network(delay=0.05)
    inbox = []
    network.register(0, lambda src, msg: inbox.append(sim.now))
    network.send(0, 0, "self")
    sim.run()
    assert inbox == [0.0]


def test_multicast_reaches_all():
    sim, network = make_network()
    inboxes = {i: [] for i in range(3)}
    for i in range(3):
        network.register(i, lambda src, msg, i=i: inboxes[i].append(msg))
    network.multicast(0, range(3), "m")
    sim.run()
    assert all(inboxes[i] == ["m"] for i in range(3))


def test_down_node_drops_messages_both_ways():
    sim, network = make_network()
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.set_down(1)
    network.send(0, 1, "lost")
    sim.run()
    assert inbox == []
    assert network.stats.messages_dropped == 1
    network.set_down(1, False)
    network.send(0, 1, "found")
    sim.run()
    assert inbox == ["found"]


def test_crash_during_flight_drops_delivery():
    sim, network = make_network(delay=1.0)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.send(0, 1, "in-flight")
    sim.schedule(0.5, network.set_down, 1, True)
    sim.run()
    assert inbox == []


def test_interceptor_can_drop_and_delay():
    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append((sim.now, msg)))

    def interceptor(src, dst, message, delay):
        if message == "drop":
            return None
        return message, delay + 1.0

    network.add_interceptor(interceptor)
    network.send(0, 1, "drop")
    network.send(0, 1, "slow")
    sim.run()
    assert inbox == [(1.01, "slow")]


def test_jitter_stretches_delay_within_bound():
    sim, network = make_network(delay=0.1, jitter=0.1)
    times = []
    network.register(1, lambda src, msg: times.append(sim.now))
    for _ in range(50):
        network.send(0, 1, "x")
    sim.run()
    assert all(0.1 <= t <= 0.11 + 1e-9 for t in times)


def test_multicast_counts_batches_and_per_destination_sends():
    sim, network = make_network()
    for i in range(4):
        network.register(i, lambda src, msg: None)
    network.multicast(0, range(4), "m", size=10)
    network.multicast(0, (), "empty", size=10)
    sim.run()
    assert network.stats.messages_multicast == 2
    assert network.stats.messages_sent == 4  # one per destination
    assert network.stats.bytes_sent == 40
    assert network.stats.messages_delivered == 4


def test_multicast_batched_path_equals_send_loop():
    """The pristine multicast batch must deliver at the same times, in the
    same order, with the same jitter draws as a loop of send() calls."""
    def run(batched):
        sim = Simulator(seed=5)
        network = Network(sim, lambda a, b: 0.01 * (a + b + 1), jitter=0.05)
        log = []
        for i in range(5):
            network.register(i, lambda src, msg, i=i: log.append((sim.now, i, msg)))
        if batched:
            network.multicast(0, range(5), "m")
        else:
            for dst in range(5):
                network.send(0, dst, "m")
        sim.run()
        return log

    assert run(batched=True) == run(batched=False)


def test_fast_path_equivalent_to_interceptor_disabled_path():
    """A no-op interceptor forces the checked (slow) path; delivery times
    must be identical to the pristine fast path under the same seed."""
    def run(with_noop):
        sim = Simulator(seed=9)
        network = Network(sim, lambda a, b: 0.02, jitter=0.1)
        if with_noop:
            network.add_interceptor(lambda src, dst, msg, delay: (msg, delay))
        log = []
        network.register(1, lambda src, msg: log.append((sim.now, msg)))
        for k in range(20):
            network.send(0, 1, f"m{k}")
        network.multicast(0, [1, 1, 1], "mc")
        sim.run()
        return log

    assert run(with_noop=True) == run(with_noop=False)


def test_fast_path_reengages_after_faults_clear():
    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.set_down(1)
    network.send(0, 1, "lost")
    network.set_down(1, False)
    epoch = network.partition([(0,), (1,)])
    network.send(0, 1, "cut")
    network.heal(epoch)
    noop = lambda src, dst, msg, delay: (msg, delay)  # noqa: E731
    network.add_interceptor(noop)
    network.send(0, 1, "checked")
    network.remove_interceptor(noop)
    network.send(0, 1, "fast")
    sim.run()
    assert inbox == ["checked", "fast"]
    assert network.stats.messages_dropped == 2


def test_stats_count_bytes_per_type():
    sim, network = make_network()
    network.register(1, lambda src, msg: None)
    network.send(0, 1, "abc", size=10)
    network.send(0, 1, "def", size=5)
    sim.run()
    assert network.stats.bytes_sent == 15
    assert network.stats.per_type_bytes["str"] == 15
    assert network.stats.messages_delivered == 2


def test_stats_exclude_messages_dropped_at_send():
    """A message dropped before it reaches the wire (down node or
    interceptor) must not inflate the Fig. 13 overhead accounting."""
    sim, network = make_network()
    network.register(1, lambda src, msg: None)
    network.set_down(1)
    network.send(0, 1, "to-down-node", size=100)
    network.set_down(1, False)
    network.add_interceptor(lambda src, dst, msg, d: None if msg == "drop" else (msg, d))
    network.send(0, 1, "drop", size=50)
    network.send(0, 1, "keep", size=7)
    sim.run()
    assert network.stats.messages_sent == 1
    assert network.stats.bytes_sent == 7
    assert network.stats.per_type_bytes == {"str": 7}
    assert network.stats.messages_dropped == 2
    assert network.stats.messages_delivered == 1


def test_interceptors_run_in_installation_order():
    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append((sim.now, msg)))

    def double(src, dst, message, delay):
        return message, delay * 2.0

    def drop_if_slow(src, dst, message, delay):
        # Sees the delay *after* `double`: proof of chain ordering.
        return None if delay > 0.015 else (message, delay)

    network.add_interceptor(double)
    network.add_interceptor(drop_if_slow)
    network.send(0, 1, "x")
    sim.run()
    assert inbox == []
    network.remove_interceptor(double)
    network.send(0, 1, "y")
    sim.run()
    assert inbox == [(0.01, "y")]
    assert network.stats.messages_dropped == 1


def test_partition_blocks_cross_group_traffic_both_directions():
    sim, network = make_network(delay=0.01)
    inboxes = {i: [] for i in range(4)}
    for i in range(4):
        network.register(i, lambda src, msg, i=i: inboxes[i].append(msg))
    network.partition([(0, 1), (2, 3)])
    network.send(0, 1, "intra")
    network.send(0, 2, "cross")
    network.send(3, 1, "cross-back")
    sim.run()
    assert inboxes[1] == ["intra"]
    assert inboxes[2] == []
    assert network.stats.messages_dropped == 2
    assert not network.reachable(0, 2)
    assert network.reachable(0, 1)


def test_partition_drops_in_flight_messages_and_heals():
    sim, network = make_network(delay=1.0)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    network.send(0, 1, "in-flight")
    sim.schedule(0.5, network.partition, [(0,), (1,)])
    sim.run()
    assert inbox == []
    network.heal()
    network.send(0, 1, "after-heal")
    sim.run()
    assert inbox == ["after-heal"]


def test_partition_leaves_unlisted_nodes_connected():
    """Nodes absent from every group (e.g. clients) keep talking to all."""
    sim, network = make_network(delay=0.01)
    inboxes = {i: [] for i in range(3)}
    for i in range(3):
        network.register(i, lambda src, msg, i=i: inboxes[i].append(msg))
    network.partition([(0,), (1,)])
    network.send(2, 0, "to-a")
    network.send(2, 1, "to-b")
    sim.run()
    assert inboxes[0] == ["to-a"]
    assert inboxes[1] == ["to-b"]


def test_stale_heal_epoch_does_not_wipe_newer_partition():
    """A heal scheduled for an old partition must not clear a newer one."""
    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    first = network.partition([(0,), (1,)])
    second = network.partition([(0, 2), (1,)])
    network.heal(first)  # stale: superseded by `second`
    network.send(0, 1, "still-cut")
    sim.run()
    assert inbox == []
    network.heal(second)
    network.send(0, 1, "healed")
    sim.run()
    assert inbox == ["healed"]


def test_partition_rejects_overlapping_groups_and_replaces_old():
    import pytest

    sim, network = make_network(delay=0.01)
    inbox = []
    network.register(1, lambda src, msg: inbox.append(msg))
    with pytest.raises(ValueError, match="two partition groups"):
        network.partition([(0, 1), (1, 2)])
    network.partition([(0,), (1,)])
    network.partition([(0, 1), (2,)])  # replaces: 0 and 1 reunited
    network.send(0, 1, "reunited")
    sim.run()
    assert inbox == ["reunited"]
