"""Spine blocks: wide multicasts parked as columnar arrays.

A multicast whose fanout reaches ``Network.block_fanout`` skips the
tuple spine entirely and parks its rows as one :class:`_SpineBlock`
(parallel numpy arrays keyed by ``(time, seq)``).  The contract is the
same as for the scalar spine: delivery times, global order, seq
allocation, RNG draws and statistics are bit-identical to the object
plane.  These tests pin the block machinery specifically by lowering
``block_fanout`` so small fanouts engage it.
"""

import pickle

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Network, _Spine

pytestmark = pytest.mark.usefixtures("small_blocks")


@pytest.fixture
def small_blocks(monkeypatch):
    """Engage the block path at fanout 4 so n=8 traffic exercises it."""
    monkeypatch.setattr(Network, "block_fanout", 4)


class Ping:
    wire_size = 10

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"Ping({self.value})"


class Pong(Ping):
    wire_size = 7


def _delay(a, b):
    # Distinct per-pair delays so block rows interleave with everything.
    return 0.001 + ((a * 7 + b * 3) % 11) * 0.003


def run_wide_traffic(plane, n=8, jitter=0.0, seed=1, reactive=False):
    """All-to-all wide multicasts plus reactive unicasts; returns the
    delivery trace and the wire-visible statistics."""
    sim = Simulator(seed=seed)
    network = Network(sim, _delay, jitter=jitter, plane=plane)
    trace = []

    def handler(dst):
        def on_message(src, message):
            trace.append((sim.now, src, dst, repr(message)))
            if reactive and dst == 0 and isinstance(message, Ping) and not (
                isinstance(message, Pong)
            ):
                # Sends fired from inside a block run land in the scalar
                # spine (fanout 1) and must still interleave correctly.
                network.send(dst, src, Pong(message.value), Pong.wire_size)

        return on_message

    for node in range(n):
        network.register(node, handler(node))
    for round_index in range(3):
        for src in range(n):
            # Concurrent wide multicasts: rows from different blocks
            # interleave row-by-row (the PBFT all-to-all shape).
            sim.schedule(
                round_index * 0.01,
                network.multicast,
                src,
                range(n),
                Ping((round_index, src)),
                Ping.wire_size,
            )
    sim.run()
    stats = network.stats
    return trace, {
        "now": sim.now,
        "seq": sim._seq,
        "rng": sim.rng.getstate(),
        "delivered": stats.messages_delivered,
        "dropped": stats.messages_dropped,
        "bytes": stats.bytes_sent,
    }


# ----------------------------------------------------------------------
# Bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jitter", [0.0, 0.05])
def test_block_trace_matches_object_plane(jitter):
    trace_object, stats_object = run_wide_traffic("object", jitter=jitter)
    trace_block, stats_block = run_wide_traffic("columnar", jitter=jitter)
    assert trace_block == trace_object
    assert stats_block == stats_object


def test_reactive_sends_interleave_with_block_rows():
    trace_object, stats_object = run_wide_traffic("object", reactive=True)
    trace_block, stats_block = run_wide_traffic("columnar", reactive=True)
    assert trace_block == trace_object
    assert stats_block == stats_object


def test_blocks_actually_engage():
    sim = Simulator(seed=1)
    network = Network(sim, _delay, plane="columnar")
    for node in range(6):
        network.register(node, lambda src, msg: None)
    network.multicast(0, range(6), Ping("wide"), Ping.wire_size)
    assert len(network._spine.blocks) == 1
    assert not network._spine.entries
    network.send(1, 2, Ping("narrow"), Ping.wire_size)
    assert len(network._spine.entries) == 1
    sim.run()
    assert not network._spine.blocks
    assert network.stats.messages_delivered == 7


def test_zero_delay_ties_resolve_by_seq():
    # All rows at one timestamp: order is decided purely by seq, which a
    # block must reproduce through its stable argsort.
    def run(plane):
        sim = Simulator(seed=2)
        network = Network(sim, lambda a, b: 0.0, plane=plane)
        trace = []
        for node in range(6):
            network.register(
                node, lambda src, msg, node=node: trace.append((src, node))
            )
        network.multicast(0, range(6), Ping("a"), Ping.wire_size)
        network.multicast(1, range(6), Ping("b"), Ping.wire_size)
        sim.run()
        return trace

    assert run("columnar") == run("object")


# ----------------------------------------------------------------------
# Faults and horizons
# ----------------------------------------------------------------------
def test_mid_flight_fault_falls_back_per_row():
    def run(plane):
        sim = Simulator(seed=1)
        network = Network(sim, lambda a, b: 1.0, plane=plane)
        trace = []
        for node in range(6):
            network.register(
                node,
                lambda src, msg, node=node: trace.append((node, msg.value)),
            )
        network.multicast(0, range(6), Ping(7), Ping.wire_size)
        sim.schedule(0.5, network.set_down, 2, True)
        sim.run()
        return trace, network.stats.messages_dropped

    trace_object, dropped_object = run("object")
    trace_block, dropped_block = run("columnar")
    assert trace_block == trace_object
    assert dropped_block == dropped_object == 1


def test_horizon_slices_block_and_resumes():
    def run(plane):
        sim = Simulator(seed=1)
        network = Network(sim, lambda a, b: 1.0, plane=plane)
        trace = []
        for node in range(5):
            network.register(
                node,
                lambda src, msg, node=node: trace.append(
                    (sim.now, src, node, msg.value)
                ),
            )
        network.multicast(0, range(5), Ping(1), Ping.wire_size)
        sim.run(until=0.5)
        first = list(trace)
        sim.run(until=10.0)
        return first, trace

    first_o, full_o = run("object")
    first_c, full_c = run("columnar")
    assert first_c == first_o
    assert full_c == full_o


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def _one_second(a, b):
    return 1.0 if a != b else 0.0


class PicklableEndpoint:
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def __call__(self, src, message):
        self.received.append((self.sim.now, src, message.value))


def test_network_pickles_with_blocks_in_flight():
    def build():
        sim = Simulator(seed=4)
        network = Network(sim, _one_second, jitter=0.1, plane="columnar")
        endpoints = [PicklableEndpoint(sim) for _ in range(5)]
        for node, endpoint in enumerate(endpoints):
            network.register(node, endpoint)
        network.multicast(0, range(5), Ping("m"), Ping.wire_size)
        network.multicast(1, range(5), Ping("n"), Ping.wire_size)
        return sim, network, endpoints

    sim, network, endpoints = build()
    sim.run()
    want = [endpoint.received for endpoint in endpoints]

    sim, network, endpoints = build()
    sim.run(until=0.1)
    assert network._spine.blocks  # rows genuinely in flight as blocks
    sim2, network2, endpoints2 = pickle.loads(
        pickle.dumps((sim, network, endpoints))
    )
    sim2.run()
    assert [endpoint.received for endpoint in endpoints2] == want


def test_spine_setstate_accepts_legacy_three_tuple():
    # Checkpoints written before the block heap existed restore with an
    # empty heap.
    spine = _Spine.__new__(_Spine)
    spine.__setstate__(([("row",)], (0.0, 1), {(0.0, 1)}))
    assert spine.entries == [("row",)]
    assert spine.blocks == []
