"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "late")
    sim.schedule(1.0, order.append, "early")
    sim.schedule(3.0, order.append, "last")
    sim.run()
    assert order == ["early", "late", "last"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in ("a", "b", "c"):
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_event_exactly_at_until_is_executed():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "x")
    sim.run(until=2.0)
    assert fired == ["x"]


def test_cancelled_event_is_skipped():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    handle.cancel()
    sim.run()
    assert fired == ["kept"]


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, order.append, "nested")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "nested"]
    assert sim.now == 2.0


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_pending_count_ignores_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending == 1


def test_post_orders_like_schedule():
    """post() (the no-handle fast path) and schedule() share one queue and
    one ordering rule: time, then insertion order."""
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "handle-1")
    sim.post(1.0, order.append, ("post-1",))
    sim.post(0.5, order.append, ("post-early",))
    sim.schedule(1.0, order.append, "handle-2")
    sim.run()
    assert order == ["post-early", "handle-1", "post-1", "handle-2"]


def test_post_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.post(-0.1, lambda: None)


def test_pending_counts_posted_events():
    sim = Simulator()
    sim.post(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending == 1


def test_max_queue_depth_tracks_high_water_mark():
    sim = Simulator()
    assert sim.max_queue_depth == 0
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.post(0.5, lambda: None)
    assert sim.max_queue_depth == 6
    sim.run()
    # Draining does not lower the recorded peak.
    assert sim.max_queue_depth == 6
    assert sim.pending == 0


def test_determinism_same_seed():
    def run_once(seed):
        sim = Simulator(seed=seed)
        draws = []
        for delay in (1.0, 2.0):
            sim.schedule(delay, lambda: draws.append(sim.rng.random()))
        sim.run()
        return draws

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)


def test_until_respected_when_head_is_cancelled():
    # A cancelled head used to be popped inside step() without re-checking
    # ``until``, letting an event beyond the horizon execute.
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(5.0, fired.append, "beyond-horizon")
    handle.cancel()
    sim.run(until=2.0)
    assert fired == []
    assert sim.now == 2.0
    sim.run()
    assert fired == ["beyond-horizon"]


def test_max_events_counts_only_executed_events():
    sim = Simulator()
    fired = []
    handles = [sim.schedule(float(i + 1), fired.append, i) for i in range(10)]
    for i in (0, 2, 4):  # cancelled entries must not consume the budget
        handles[i].cancel()
    sim.run(max_events=3)
    assert fired == [1, 3, 5]
    assert sim.events_processed == 3


def test_events_processed_matches_across_runs():
    sim = Simulator()
    for i in range(6):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=2)
    assert sim.events_processed == 2
    sim.run(max_events=2)
    assert sim.events_processed == 4
    sim.run()
    assert sim.events_processed == 6


def test_budget_stop_does_not_jump_clock_past_pending_events():
    # run(until=..., max_events=...) stopping on the budget must not
    # advance the clock over still-pending events, or a later run would
    # move time backwards.
    sim = Simulator()
    seen = []
    for i in range(6):
        sim.schedule(float(i + 1), lambda t=i + 1: seen.append((t, sim.now)))
    sim.run(until=10.0, max_events=2)
    assert sim.now == 2.0
    sim.run(until=10.0)
    assert [t for t, _ in seen] == [1, 2, 3, 4, 5, 6]
    assert all(t == now for t, now in seen)
    assert sim.now == 10.0
