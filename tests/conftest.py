"""Shared fixtures: deployments and latency matrices are expensive to
build, so they are session-scoped."""

import random

import pytest

from repro.net.deployments import deployment_for, random_world_deployment


@pytest.fixture(scope="session")
def europe21():
    return deployment_for("Europe21")


@pytest.fixture(scope="session")
def global73():
    return deployment_for("Global73")


@pytest.fixture(scope="session")
def stellar56():
    return deployment_for("Stellar56")


@pytest.fixture(scope="session")
def world57():
    return random_world_deployment(57, random.Random(42))


@pytest.fixture(scope="session")
def europe21_links(europe21):
    """Link-latency matrix (one-way per hop) for Europe21."""
    return europe21.latency.matrix_seconds() / 2.0


@pytest.fixture(scope="session")
def world57_links(world57):
    return world57.latency.matrix_seconds() / 2.0
