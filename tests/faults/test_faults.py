"""Tests for the Byzantine fault library."""

import random

from repro.core.log import AppendOnlyLog
from repro.faults.crash import CrashSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack
from repro.faults.false_suspicion import TargetedSuspicionAttack
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.topology import TreeConfiguration


class FakeMsg:
    pass


class PrePrepare(FakeMsg):
    pass


class Forward(FakeMsg):
    pass


def test_delay_attack_only_in_window_and_type():
    clock = {"now": 0.0}
    attack = DelayAttack(
        attacker=2, message_types=("PrePrepare",), extra_delay=0.5,
        start=10.0, end=20.0, now_fn=lambda: clock["now"],
    )
    message = PrePrepare()
    # Outside the window: untouched.
    assert attack(2, 1, message, 0.01) == (message, 0.01)
    clock["now"] = 15.0
    assert attack(2, 1, message, 0.01) == (message, 0.51)
    # Other senders and other message types untouched.
    assert attack(3, 1, message, 0.01) == (message, 0.01)
    other = Forward()
    assert attack(2, 1, other, 0.01) == (other, 0.01)
    assert attack.messages_delayed == 1


def test_delta_delay_multiplies_within_bound():
    attack = DeltaDelayAttack(attackers={1}, delta=1.4, message_types=("Forward",))
    message = Forward()
    _, delay = attack(1, 2, message, 0.1)
    assert delay == 0.1 * 1.4
    _, delay = attack(3, 2, message, 0.1)
    assert delay == 0.1


def test_crash_schedule_crashes_current_role():
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    schedule = CrashSchedule(sim, network)
    role = {"holder": 4}
    schedule.crash_role_every(10.0, lambda: role["holder"], end=35.0)

    def rotate():
        role["holder"] += 1

    sim.schedule_at(15.0, rotate)
    sim.schedule_at(25.0, rotate)
    sim.run(until=40.0)
    assert schedule.crashed == [4, 5, 6]
    assert network.is_down(4)


def test_targeted_suspicion_attack_removes_pairs():
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=13, f=4)
    tree = TreeConfiguration.from_layout(range(13))
    attack = TargetedSuspicionAttack(
        faulty_pool=[9, 10, 11, 12], rng=random.Random(1)
    )
    suspicion = attack.attack_round(log, tree, round_id=1)
    assert suspicion is not None
    assert suspicion.reporter in {9, 10, 11, 12}
    assert suspicion.suspect in tree.internal_nodes
    # Both the attacker and the targeted internal node left K.
    assert suspicion.reporter not in monitor.K
    assert suspicion.suspect not in monitor.K
    assert monitor.u == 1


def test_targeted_attack_exhausts_pool():
    log = AppendOnlyLog()
    tree = TreeConfiguration.from_layout(range(13))
    attack = TargetedSuspicionAttack(faulty_pool=[12], rng=random.Random(1))
    assert attack.attack_round(log, tree, 1) is not None
    assert attack.attack_round(log, tree, 2) is None
