"""Tests for the Byzantine fault library."""

import random

import pytest

from repro.core.log import AppendOnlyLog
from repro.faults.churn import ChurnSchedule
from repro.faults.crash import CrashSchedule
from repro.faults.delay import DelayAttack, DeltaDelayAttack, StealthDelayAttack
from repro.faults.false_suspicion import TargetedSuspicionAttack
from repro.faults.loss import MessageLoss
from repro.faults.window import ActivationWindow
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.topology import TreeConfiguration


class FakeMsg:
    pass


class PrePrepare(FakeMsg):
    pass


class Forward(FakeMsg):
    pass


def test_delay_attack_only_in_window_and_type():
    clock = {"now": 0.0}
    attack = DelayAttack(
        attacker=2, message_types=("PrePrepare",), extra_delay=0.5,
        start=10.0, end=20.0, now_fn=lambda: clock["now"],
    )
    message = PrePrepare()
    # Outside the window: untouched.
    assert attack(2, 1, message, 0.01) == (message, 0.01)
    clock["now"] = 15.0
    assert attack(2, 1, message, 0.01) == (message, 0.51)
    # Other senders and other message types untouched.
    assert attack(3, 1, message, 0.01) == (message, 0.01)
    other = Forward()
    assert attack(2, 1, other, 0.01) == (other, 0.01)
    assert attack.messages_delayed == 1


def test_windowed_attack_without_clock_fails_loudly():
    """A start/end window with the old silent default clock was a dead
    attack; it must now refuse construction."""
    with pytest.raises(ValueError, match="now_fn"):
        DelayAttack(attacker=1, message_types=("PrePrepare",), extra_delay=0.5,
                    start=10.0)
    with pytest.raises(ValueError, match="now_fn"):
        ActivationWindow(end=20.0)
    # The trivial always-active window needs no clock.
    attack = DelayAttack(attacker=1, message_types=("PrePrepare",), extra_delay=0.5)
    assert attack.active()


def test_activation_window_boundaries_are_inclusive():
    clock = {"now": 0.0}
    window = ActivationWindow(start=10.0, end=20.0, now_fn=lambda: clock["now"])
    for now, expected in ((9.999, False), (10.0, True), (15.0, True),
                          (20.0, True), (20.001, False)):
        clock["now"] = now
        assert window.active() is expected
    with pytest.raises(ValueError, match="precedes"):
        ActivationWindow(start=5.0, end=1.0, now_fn=lambda: 0.0)


def test_delta_delay_multiplies_within_bound():
    attack = DeltaDelayAttack(attackers={1}, delta=1.4, message_types=("Forward",))
    message = Forward()
    _, delay = attack(1, 2, message, 0.1)
    assert delay == 0.1 * 1.4
    _, delay = attack(3, 2, message, 0.1)
    assert delay == 0.1


def test_delta_delay_window_gates_activity():
    clock = {"now": 0.0}
    attack = DeltaDelayAttack(attackers={1}, delta=2.0, message_types=("Forward",),
                              start=5.0, end=10.0, now_fn=lambda: clock["now"])
    message = Forward()
    assert attack(1, 2, message, 0.1) == (message, 0.1)
    clock["now"] = 5.0
    assert attack(1, 2, message, 0.1) == (message, 0.2)
    clock["now"] = 10.5
    assert attack(1, 2, message, 0.1) == (message, 0.1)


def test_stealth_attack_fills_suspicion_budget():
    expected = {(1, 2): 0.1, (1, 3): 0.5}
    attack = StealthDelayAttack(
        attackers={1}, delta=1.4, expected_delay=lambda a, b: expected[(a, b)],
        headroom=0.95,
    )
    message = Forward()
    _, delay = attack(1, 2, message, 0.102)  # jittered base delay
    assert delay == pytest.approx(0.95 * 1.4 * 0.1)
    # A link already slower than the budget is left alone.
    _, delay = attack(1, 3, message, 0.9)
    assert delay == 0.9
    # Non-attackers untouched.
    assert attack(2, 1, message, 0.05) == (message, 0.05)
    assert attack.messages_delayed == 1
    assert attack.total_added == pytest.approx(0.95 * 1.4 * 0.1 - 0.102)
    with pytest.raises(ValueError, match="headroom"):
        StealthDelayAttack({1}, 1.2, lambda a, b: 0.1, headroom=0.0)


def test_message_loss_is_seeded_and_filtered():
    def run_stream(rng_seed):
        loss = MessageLoss(rate=0.5, rng=random.Random(rng_seed))
        outcomes = [loss(0, 1, FakeMsg(), 0.01) is None for _ in range(40)]
        return loss, outcomes

    loss_a, drops_a = run_stream(7)
    _loss_b, drops_b = run_stream(7)
    assert drops_a == drops_b  # same stream, same losses
    assert 0 < loss_a.messages_lost < 40
    assert loss_a.messages_seen == 40

    # Filtered messages pass untouched and consume no random draw.
    loss = MessageLoss(rate=1.0, rng=random.Random(0), senders={5},
                       message_types=("PrePrepare",))
    message = FakeMsg()
    assert loss(0, 1, message, 0.01) == (message, 0.01)  # wrong sender
    assert loss(5, 1, message, 0.01) == (message, 0.01)  # wrong type
    assert loss.messages_seen == 0
    assert loss(5, 1, PrePrepare(), 0.01) is None

    with pytest.raises(ValueError, match="rate"):
        MessageLoss(rate=1.5, rng=random.Random(0))


def test_message_loss_never_drops_self_delivery():
    loss = MessageLoss(rate=1.0, rng=random.Random(0))
    message = FakeMsg()
    assert loss(3, 3, message, 0.0) == (message, 0.0)
    assert loss(3, 4, message, 0.01) is None
    assert loss.messages_lost == 1


def test_crash_schedule_crashes_current_role():
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    schedule = CrashSchedule(sim, network)
    role = {"holder": 4}
    schedule.crash_role_every(10.0, lambda: role["holder"], end=35.0)

    def rotate():
        role["holder"] += 1

    sim.schedule_at(15.0, rotate)
    sim.schedule_at(25.0, rotate)
    sim.run(until=40.0)
    assert schedule.crashed == [4, 5, 6]
    assert network.is_down(4)


def test_targeted_suspicion_attack_removes_pairs():
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=13, f=4)
    tree = TreeConfiguration.from_layout(range(13))
    attack = TargetedSuspicionAttack(
        faulty_pool=[9, 10, 11, 12], rng=random.Random(1)
    )
    suspicion = attack.attack_round(log, tree, round_id=1)
    assert suspicion is not None
    assert suspicion.reporter in {9, 10, 11, 12}
    assert suspicion.suspect in tree.internal_nodes
    # Both the attacker and the targeted internal node left K.
    assert suspicion.reporter not in monitor.K
    assert suspicion.suspect not in monitor.K
    assert monitor.u == 1


def test_targeted_attack_exhausts_pool():
    log = AppendOnlyLog()
    tree = TreeConfiguration.from_layout(range(13))
    attack = TargetedSuspicionAttack(faulty_pool=[12], rng=random.Random(1))
    assert attack.attack_round(log, tree, 1) is not None
    assert attack.attack_round(log, tree, 2) is None


def test_crash_role_every_never_fires_past_end():
    """start + period > end used to fire one stray crash after the window."""
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    schedule = CrashSchedule(sim, network)
    schedule.crash_role_every(10.0, lambda: 3, start=30.0, end=35.0)
    sim.run(until=100.0)
    assert schedule.crashed == []
    assert not network.is_down(3)


def test_crash_schedule_revival_reflected_in_live_state():
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    schedule = CrashSchedule(sim, network)
    schedule.crash_at(5.0, 2)
    schedule.crash_at(6.0, 4)
    schedule.revive_at(9.0, 2)
    sim.run(until=20.0)
    assert schedule.crashed == [4]
    assert schedule.revivals == [(9.0, 2)]
    assert not network.is_down(2)
    assert network.is_down(4)


def test_churn_cycles_crash_and_revive_with_hook():
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    revived = []
    schedule = ChurnSchedule(sim, network, on_revive=revived.append)
    schedule.cycle(pool=[1, 2], period=10.0, downtime=4.0, end=45.0)
    sim.run(until=60.0)
    # Crashes at 10, 20, 30, 40 (round-robin 1,2,1,2), each up again 4 s later.
    assert [victim for _t, victim in schedule.crashes] == [1, 2, 1, 2]
    assert revived == [1, 2, 1, 2]
    assert schedule.down == []
    assert schedule.cycles_completed == 4
    assert not network.is_down(1) and not network.is_down(2)


def test_churn_respects_window_and_skips_down_victims():
    sim = Simulator()
    network = Network(sim, lambda a, b: 0.01)
    schedule = ChurnSchedule(sim, network)
    # Victim stays down longer than the period: the next cycle must skip
    # it rather than double-crash.
    schedule.cycle(pool=[7], period=5.0, downtime=12.0, end=14.0)
    sim.run(until=30.0)
    assert [victim for _t, victim in schedule.crashes] == [7]
    assert schedule.revivals and schedule.revivals[0][0] == 17.0
    # start + period > end: empty schedule (same contract as CrashSchedule).
    late = ChurnSchedule(sim, network)
    late.cycle(pool=[1], period=10.0, downtime=1.0, start=28.0, end=35.0)
    sim.run(until=60.0)
    assert late.crashes == []


def test_churn_random_victims_are_seeded():
    def run(seed):
        sim = Simulator(seed=seed)
        network = Network(sim, lambda a, b: 0.01)
        schedule = ChurnSchedule(sim, network)
        schedule.cycle(pool=[1, 2, 3, 4], period=5.0, downtime=1.0, end=50.0,
                       rng=sim.derive_rng("churn"))
        sim.run(until=60.0)
        return [victim for _t, victim in schedule.crashes]

    assert run(3) == run(3)
    assert len(run(3)) == 10
    with pytest.raises(ValueError, match="non-empty"):
        ChurnSchedule(Simulator(), Network(Simulator(), lambda a, b: 0.0)).cycle(
            pool=[], period=1.0, downtime=0.5
        )
