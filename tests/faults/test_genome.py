"""The adversary genome: budgets, compilation, mutation, round-trips."""

import random

import pytest

from repro.experiments.runner import FaultSpec
from repro.faults.genome import (
    GRID,
    AdversaryBudget,
    ArenaProfile,
    AttackGenome,
    AttackMove,
    GenomeError,
    allowed_kinds,
    compile_genome,
    genome_from_dict,
    genome_to_dict,
    mutate,
    seed_genome,
)

ARENA = ArenaProfile(n=7, family="pbft", duration=8.0)
AWARE = ArenaProfile(n=7, family="pbft", duration=8.0, has_optilog=True)
BUDGET = AdversaryBudget(max_faulty=3)


# ----------------------------------------------------------------------
# Budget / move / profile validation
# ----------------------------------------------------------------------
def test_budget_rejects_nonsense():
    with pytest.raises(ValueError, match="max_faulty"):
        AdversaryBudget(max_faulty=0)
    with pytest.raises(ValueError, match="delta"):
        AdversaryBudget(delta=0.5)
    with pytest.raises(ValueError, match="max_loss_rate"):
        AdversaryBudget(max_loss_rate=1.5)
    with pytest.raises(ValueError, match="max_moves"):
        AdversaryBudget(max_moves=0)


def test_move_windows_live_on_the_grid():
    with pytest.raises(ValueError, match="window"):
        AttackMove(kind="crash", start=5, end=5)
    with pytest.raises(ValueError, match="window"):
        AttackMove(kind="crash", start=-1, end=4)
    with pytest.raises(ValueError, match="window"):
        AttackMove(kind="crash", start=0, end=GRID + 1)
    with pytest.raises(ValueError, match="kind"):
        AttackMove(kind="meteor")


def test_profile_validates_family_and_size():
    with pytest.raises(ValueError, match="family"):
        ArenaProfile(n=4, family="raft", duration=1.0)
    with pytest.raises(ValueError, match="n >= 2"):
        ArenaProfile(n=1, family="pbft", duration=1.0)


# ----------------------------------------------------------------------
# Compilation: validity rules
# ----------------------------------------------------------------------
def test_compile_lowers_every_kind_to_fault_specs():
    genome = AttackGenome(
        victims=(4, 5, 6),
        moves=(
            AttackMove(kind="stealth", start=0, end=16),
            AttackMove(kind="crash", start=16, end=24, victim=0),
            AttackMove(kind="loss", start=0, end=32, level=16),
        ),
    )
    specs = compile_genome(genome, BUDGET, ARENA)
    assert [spec.kind for spec in specs] == ["delta_delay", "crash", "loss"]
    assert all(isinstance(spec, FaultSpec) for spec in specs)
    # Grid windows scale to arena time.
    assert specs[0].start == 0.0 and specs[0].end == 4.0
    assert specs[1].start == 4.0 and specs[1].end == 6.0
    # Loss at half level is half the budget cap, victims-sent only.
    assert specs[2].params["rate"] == pytest.approx(BUDGET.max_loss_rate / 2)
    assert specs[2].params["senders"] == (4, 5, 6)


def test_compile_rejects_budget_violations():
    over = AttackGenome(victims=(3, 4, 5, 6), moves=(AttackMove(kind="stealth"),))
    with pytest.raises(GenomeError, match="max_faulty"):
        compile_genome(over, BUDGET, ARENA)
    crowded = AttackGenome(
        victims=(6,), moves=tuple(AttackMove(kind="stealth") for _ in range(5))
    )
    with pytest.raises(GenomeError, match="max_moves"):
        compile_genome(crowded, BUDGET, ARENA)
    with pytest.raises(GenomeError, match="no victims"):
        compile_genome(AttackGenome(victims=()), BUDGET, ARENA)


def test_compile_protects_the_observer():
    # Replica 0 is the measurement observer: recruiting it would let the
    # adversary score phantom degradation by crashing the probe.
    probe = AttackGenome(victims=(0, 6), moves=(AttackMove(kind="stealth"),))
    with pytest.raises(GenomeError, match="observer"):
        compile_genome(probe, BUDGET, ARENA)


def test_compile_gates_smear_on_optilog():
    smear = AttackGenome(victims=(5, 6), moves=(AttackMove(kind="smear"),))
    with pytest.raises(GenomeError, match="OptiAware"):
        compile_genome(smear, BUDGET, ARENA)
    specs = compile_genome(smear, BUDGET, AWARE)
    assert specs[0].kind == "false_suspicion"
    assert specs[0].attacker == (5, 6)


def test_compile_forbids_churn_crash_mix():
    mixed = AttackGenome(
        victims=(5, 6),
        moves=(AttackMove(kind="churn"), AttackMove(kind="crash")),
    )
    with pytest.raises(GenomeError, match="mutually exclusive"):
        compile_genome(mixed, BUDGET, ARENA)


def test_compile_runs_the_composition_validator():
    # Two whole-run crashes of the same victim lower to overlapping
    # crash windows -- the construction-time composition check fires.
    double = AttackGenome(
        victims=(6,),
        moves=(
            AttackMove(kind="crash", start=0, end=20, victim=0),
            AttackMove(kind="crash", start=10, end=32, victim=0),
        ),
    )
    with pytest.raises(ValueError, match="overlapping"):
        compile_genome(double, BUDGET, ARENA)


def test_level_is_monotone_in_aggression_for_cyclic_kinds():
    def period_of(kind, level, arena):
        move = AttackMove(kind=kind, level=level, aux=GRID)
        genome = AttackGenome(victims=(5, 6), moves=(move,))
        return compile_genome(genome, BUDGET, arena)[0].params["period"]

    assert period_of("churn", GRID, ARENA) < period_of("churn", 1, ARENA)
    assert period_of("smear", GRID, AWARE) < period_of("smear", 1, AWARE)


# ----------------------------------------------------------------------
# Seeds, mutation, round-trip
# ----------------------------------------------------------------------
def test_seed_genomes_compile_for_every_variant():
    for arena in (ARENA, AWARE):
        for variant in range(len(allowed_kinds(arena))):
            genome = seed_genome(BUDGET, arena, variant=variant)
            specs = compile_genome(genome, BUDGET, arena)
            assert specs, (arena, variant)
            assert 0 not in genome.victims


def test_seed_rotation_prefers_requested_kind():
    plain = seed_genome(BUDGET, AWARE, variant=0)
    smear_first = seed_genome(BUDGET, AWARE, variant=0, prefer="smear")
    assert plain.moves[0].kind == "stealth"
    assert smear_first.moves[0].kind == "smear"


def test_mutation_is_deterministic_and_stays_on_grid():
    rng_a, rng_b = random.Random(11), random.Random(11)
    genome = seed_genome(BUDGET, ARENA)
    for _ in range(200):
        a = mutate(genome, rng_a, BUDGET, ARENA)
        b = mutate(genome, rng_b, BUDGET, ARENA)
        assert a == b
        for move in a.moves:
            assert 0 <= move.start < move.end <= GRID
            assert 1 <= move.level <= GRID
        assert 0 not in a.victims
        assert len(a.moves) <= BUDGET.max_moves
        genome = a


def test_canonical_form_makes_equal_strategies_equal():
    forward = AttackGenome(
        victims=(6, 4),
        moves=(AttackMove(kind="loss"), AttackMove(kind="crash")),
    ).canonical()
    backward = AttackGenome(
        victims=(4, 6),
        moves=(AttackMove(kind="crash"), AttackMove(kind="loss")),
    ).canonical()
    assert forward == backward
    assert hash(forward) == hash(backward)


def test_json_round_trip_is_exact():
    genome = seed_genome(BUDGET, AWARE, variant=3)
    assert genome_from_dict(genome_to_dict(genome)) == genome
