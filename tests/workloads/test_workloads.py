"""Workload generator tests: determinism, Poisson statistics, bursty
phase transitions, Zipf skew normalization, ramp monotonicity."""

import math

import pytest

from repro.consensus.messages import ClientRequest, Reply
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workloads import (
    BurstyWorkload,
    ClosedLoopWorkload,
    ClusterBinding,
    OpenLoopWorkload,
    RampWorkload,
    SkewedWorkload,
    make_workload,
    zipf_weights,
)

N, F = 7, 2
LINK_DELAY = 0.01


def echo_harness(seed=0, n=N):
    """A simulator plus ``n`` stub replicas that reply to every request."""
    sim = Simulator(seed=seed)
    network = Network(sim, lambda a, b: LINK_DELAY)

    def make_handler(replica_id):
        def handler(src, message):
            if isinstance(message, ClientRequest):
                network.send(
                    replica_id,
                    message.client_id,
                    Reply(replica_id, message.request_id, sim.now),
                )

        return handler

    for replica_id in range(n):
        network.register(replica_id, make_handler(replica_id))
    return sim, network


def bind(workload, sim, network, n=N, f=F, replies_needed=None):
    workload.bind(
        ClusterBinding(
            sim=sim,
            network=network,
            n=n,
            f=f,
            replies_needed=replies_needed if replies_needed is not None else f + 1,
            place_client=lambda client_id, site: None,
        )
    )
    return workload


class RecordingOpenLoop(OpenLoopWorkload):
    """Open-loop workload that records arrival times for statistics."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.arrival_times = []

    def _fire(self):
        if self.running:
            self.arrival_times.append(self.binding.sim.now)
        super()._fire()


class RecordingBursty(RecordingOpenLoop, BurstyWorkload):
    pass


class RecordingRamp(RecordingOpenLoop, RampWorkload):
    pass


def run_workload(workload, duration, seed=0):
    sim, network = echo_harness(seed=seed)
    bind(workload, sim, network)
    workload.start()
    sim.run(until=duration)
    workload.stop()
    return workload


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_open_loop_deterministic_under_fixed_seed():
    a = run_workload(RecordingOpenLoop(rate=80.0), duration=10.0, seed=5)
    b = run_workload(RecordingOpenLoop(rate=80.0), duration=10.0, seed=5)
    assert a.arrival_times == b.arrival_times
    assert a.latencies() == b.latencies()


def test_open_loop_seed_changes_the_trace():
    a = run_workload(RecordingOpenLoop(rate=80.0), duration=10.0, seed=5)
    b = run_workload(RecordingOpenLoop(rate=80.0), duration=10.0, seed=6)
    assert a.arrival_times != b.arrival_times


# ----------------------------------------------------------------------
# Poisson statistics (sanity bounds, no chi-square machinery)
# ----------------------------------------------------------------------
def test_poisson_arrival_count_within_four_sigma():
    rate, duration = 200.0, 50.0
    workload = run_workload(RecordingOpenLoop(rate=rate), duration=duration, seed=1)
    expected = rate * duration
    sigma = math.sqrt(expected)
    assert abs(len(workload.arrival_times) - expected) < 4 * sigma


def test_poisson_interarrival_mean_and_shape():
    rate, duration = 200.0, 50.0
    workload = run_workload(RecordingOpenLoop(rate=rate), duration=duration, seed=2)
    times = workload.arrival_times
    gaps = [b - a for a, b in zip(times, times[1:])]
    mean = sum(gaps) / len(gaps)
    assert abs(mean - 1.0 / rate) < 0.10 / rate  # within 10% of 1/lambda
    # Memoryless shape: P(gap < mean) = 1 - 1/e for an exponential.
    below = sum(1 for gap in gaps if gap < mean) / len(gaps)
    assert abs(below - (1.0 - math.exp(-1.0))) < 0.05


# ----------------------------------------------------------------------
# Bursty phase transitions
# ----------------------------------------------------------------------
def test_bursty_silent_off_phases_and_active_on_phases():
    workload = run_workload(
        RecordingBursty(on_rate=100.0, off_rate=0.0, on_duration=2.0, off_duration=2.0),
        duration=12.0,
        seed=3,
    )
    assert workload.arrival_times, "bursts must produce traffic"
    for time in workload.arrival_times:
        assert (time % 4.0) < 2.0, f"arrival at {time} falls in an off phase"
    # Every on phase sees traffic (3 full cycles in 12 s).
    cycles = {int(time // 4.0) for time in workload.arrival_times}
    assert cycles == {0, 1, 2}


def test_bursty_off_rate_trickles():
    workload = run_workload(
        RecordingBursty(on_rate=200.0, off_rate=10.0, on_duration=2.0, off_duration=2.0),
        duration=20.0,
        seed=4,
    )
    on = sum(1 for t in workload.arrival_times if (t % 4.0) < 2.0)
    off = len(workload.arrival_times) - on
    assert off > 0
    assert on > 5 * off  # 20x rate ratio, loose 5x bound


# ----------------------------------------------------------------------
# Zipf skew
# ----------------------------------------------------------------------
def test_zipf_weights_normalized_and_monotone():
    for skew in (0.0, 0.8, 1.0, 2.0):
        weights = zipf_weights(11, skew)
        assert abs(sum(weights) - 1.0) < 1e-12
        assert all(a >= b for a, b in zip(weights, weights[1:]))
    assert zipf_weights(5, 0.0) == pytest.approx([0.2] * 5)


def test_skewed_workload_concentrates_on_low_ranks():
    workload = run_workload(
        SkewedWorkload(rate=300.0, clients=5, skew=1.5), duration=20.0, seed=7
    )
    sent = [client.sent for client in workload.clients]
    assert sum(sent) > 0
    assert sent[0] == max(sent)
    assert sent[0] > 3 * sent[-1]  # zipf(1.5): w0/w4 ~ 11x, loose 3x bound


def test_skewed_workload_caps_clients_at_deployment_size():
    sim, network = echo_harness()
    workload = bind(SkewedWorkload(rate=10.0, clients=50), sim, network)
    assert len(workload.clients) == N
    assert abs(sum(workload.weights) - 1.0) < 1e-12


# ----------------------------------------------------------------------
# Ramp
# ----------------------------------------------------------------------
def test_ramp_rate_profile_is_monotone():
    workload = RampWorkload(start_rate=10.0, end_rate=100.0, ramp_duration=30.0)
    samples = [workload.rate_at(t) for t in (0.0, 7.5, 15.0, 22.5, 29.9, 35.0)]
    assert all(a <= b for a, b in zip(samples, samples[1:]))
    assert samples[0] == 10.0
    assert samples[-1] == 100.0


def test_ramp_traffic_increases_over_time():
    workload = run_workload(
        RecordingRamp(start_rate=20.0, end_rate=200.0, ramp_duration=30.0),
        duration=30.0,
        seed=8,
    )
    first = sum(1 for t in workload.arrival_times if t < 10.0)
    last = sum(1 for t in workload.arrival_times if t >= 20.0)
    assert last > 2 * first


# ----------------------------------------------------------------------
# Closed loop and shared machinery
# ----------------------------------------------------------------------
def test_closed_loop_keeps_one_request_outstanding():
    workload = run_workload(ClosedLoopWorkload(), duration=2.0)
    client = workload.clients[0]
    assert client.completed > 10
    assert client.sent - client.completed <= 1  # at most the in-flight one
    # Round trip through the echo harness: request + reply link delays
    # (up to float accumulation in the virtual clock).
    for _, latency in workload.latencies():
        assert latency >= 2 * LINK_DELAY - 1e-9


def test_workload_summary_reports_percentiles():
    workload = run_workload(OpenLoopWorkload(rate=50.0), duration=5.0)
    summary = workload.summary()
    assert summary["requests_completed"] > 0
    assert summary["p50_latency"] <= summary["p90_latency"] <= summary["p99_latency"]


def test_make_workload_registry():
    workload = make_workload("bursty", on_rate=42.0)
    assert isinstance(workload, BurstyWorkload)
    assert workload.on_rate == 42.0
    with pytest.raises(ValueError, match="unknown workload"):
        make_workload("nope")


def test_workloads_package_imports_standalone():
    """repro.workloads must be importable before repro.consensus (the
    engines import workloads.base at class-definition time, so a
    module-level back-import would be circular)."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-c",
         "import repro.workloads; import repro.workloads.closed_loop"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr


def test_bursty_non_exact_durations_terminate():
    # Phase durations that are not float-exact used to make next_change()
    # return the current time, livelocking the simulation at one instant.
    workload = run_workload(
        RecordingBursty(on_rate=50.0, off_rate=0.0,
                        on_duration=1.1, off_duration=2.2),
        duration=12.0,
        seed=9,
    )
    assert workload.arrival_times  # made progress and finished


def test_ramp_non_exact_steps_terminate():
    workload = run_workload(
        RecordingRamp(start_rate=30.0, end_rate=90.0,
                      ramp_duration=3.3, steps=7),
        duration=6.0,
        seed=9,
    )
    assert workload.arrival_times


def test_skewed_rebind_recomputes_client_clamp():
    workload = SkewedWorkload(rate=10.0, clients=10)
    sim, network = echo_harness(n=4)
    bind(workload, sim, network, n=4)
    assert len(workload.clients) == 4
    sim2, network2 = echo_harness(n=9)
    bind(workload, sim2, network2, n=9)
    assert len(workload.clients) == 9  # not stuck at the earlier clamp


def test_zero_clients_rejected_at_construction():
    with pytest.raises(ValueError, match="at least one client"):
        OpenLoopWorkload(rate=10.0, clients=0)
    with pytest.raises(ValueError, match="at least one client"):
        ClosedLoopWorkload(clients=-1)


def test_client_site_router_delay_floor_clamps_to_local_delay():
    from repro.workloads.base import ClientSiteRouter

    class Provider:
        def __call__(self, a, b):
            return 0.0 if a == b else 0.004

        def delay_floor(self):
            return 0.004

    # Co-located client routes answer `or local_delay`, so the router's
    # floor is the smaller of the provider floor and the local fallback.
    router = ClientSiteRouter(Provider(), n=4)
    assert router.delay_floor() == router.local_delay
    tight = ClientSiteRouter(Provider(), n=4, local_delay=0.01)
    assert tight.delay_floor() == 0.004
    # Bare callables advertise no bound.
    bare = ClientSiteRouter(lambda a, b: 0.004, n=4)
    assert bare.delay_floor() == 0.0
