"""Regression tests pinning ``percentile`` to numpy's linear method.

The audit that motivated these: ``percentile`` claims bit-for-bit
equality with ``numpy.quantile(values, q, method="linear")``.  Every
sketch-accuracy bound in the measurement plane is stated relative to
this function, so it must track numpy exactly -- including the
numerically-symmetric lerp numpy switched to (anchoring at the upper
order statistic once the interpolation fraction reaches 0.5).
"""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import percentile

_QS = (0.0, 0.001, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0)


def _numpy_linear(values, q):
    return float(np.quantile(np.asarray(values, dtype=float), q, method="linear"))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(
            min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_percentile_matches_numpy_bitwise(values, q):
    values.sort()
    assert percentile(values, q) == _numpy_linear(values, q)


def test_percentile_fixed_cases_match_numpy():
    rng = random.Random(13)
    for n in (1, 2, 3, 4, 5, 10, 101, 1000):
        values = sorted(rng.lognormvariate(0.0, 2.0) for _ in range(n))
        for q in _QS:
            assert percentile(values, q) == _numpy_linear(values, q), (n, q)


def test_percentile_interpolation_fraction_half_is_symmetric():
    # Two elements at q=0.5: pos = 0.5 -- the case where the asymmetric
    # lerp ``lo + frac*(hi-lo)`` can differ from numpy's upper-anchored
    # form in the last ulp.
    values = [0.1, 0.30000000000000004]
    for q in (0.5, 0.25, 0.75):
        assert percentile(values, q) == _numpy_linear(values, q)


def test_percentile_boundaries_and_clamping():
    values = [1.0, 2.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 4.0
    # Out-of-range q clamps (numpy raises; callers treat q as a ratio).
    assert percentile(values, -0.5) == 1.0
    assert percentile(values, 1.5) == 4.0


def test_percentile_single_sample():
    for q in _QS:
        assert percentile([7.5], q) == 7.5


def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 0.5))


def test_percentile_exact_order_statistics():
    values = [float(v) for v in range(11)]
    # q landing exactly on an order statistic returns it untouched.
    for k in range(11):
        assert percentile(values, k / 10) == float(k)


def test_percentile_constant_input():
    values = [3.25] * 9
    for q in _QS:
        assert percentile(values, q) == 3.25
