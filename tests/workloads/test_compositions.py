"""Diurnal and flash-crowd campaign workloads.

Both are piecewise-constant staircases over the open-loop rate
machinery: ``rate_at`` must be a pure function of time, ``next_change``
strictly after its argument, and the whole composition checkpointable --
no state beyond the base workload.
"""

import pytest

from repro.workloads import (
    DiurnalWorkload,
    FlashCrowdWorkload,
    WORKLOADS,
    make_workload,
)


def test_compositions_are_registered():
    assert WORKLOADS["diurnal"] is DiurnalWorkload
    assert WORKLOADS["flash-crowd"] is FlashCrowdWorkload
    assert isinstance(make_workload("diurnal", clients=2), DiurnalWorkload)


# ----------------------------------------------------------------------
# Diurnal
# ----------------------------------------------------------------------
def test_diurnal_cycles_between_trough_and_peak():
    workload = DiurnalWorkload(low_rate=10.0, high_rate=100.0, period=24.0, steps=24)
    rates = [workload.rate_at(t + 0.5) for t in range(24)]
    # Trough at the cycle start, peak mid-cycle.
    assert min(rates) == rates[0]
    assert max(rates) == max(rates[11], rates[12])
    assert 10.0 <= min(rates) < 15.0
    assert 95.0 < max(rates) <= 100.0
    # Raised cosine: midpoint phases of steps k and 23-k sum to a full
    # turn, so the staircase is symmetric about the peak.
    for k in range(12):
        assert rates[k] == pytest.approx(rates[23 - k])


def test_diurnal_rate_is_periodic_and_piecewise_constant():
    workload = DiurnalWorkload(period=12.0, steps=6)
    step = 12.0 / 6
    for t in (0.3, 5.1, 11.9):
        assert workload.rate_at(t) == workload.rate_at(t + 12.0)
        assert workload.rate_at(t) == workload.rate_at(t + 24.0)
        # Constant inside a plateau.
        plateau_start = (t // step) * step
        assert workload.rate_at(plateau_start + 1e-6) == workload.rate_at(t)


def test_diurnal_next_change_is_strictly_after_and_on_boundaries():
    workload = DiurnalWorkload(period=12.0, steps=6)
    step = 2.0
    t = 0.0
    for _ in range(20):
        boundary = workload.next_change(t)
        assert boundary > t
        assert boundary % step == pytest.approx(0.0, abs=1e-9)
        t = boundary
    # Calling exactly on a boundary advances to the next one.
    assert workload.next_change(4.0) == pytest.approx(6.0)


def test_diurnal_validates_parameters():
    with pytest.raises(ValueError, match="period"):
        DiurnalWorkload(period=0.0)
    with pytest.raises(ValueError, match="steps"):
        DiurnalWorkload(steps=1)
    with pytest.raises(ValueError, match="low_rate"):
        DiurnalWorkload(low_rate=50.0, high_rate=10.0)


# ----------------------------------------------------------------------
# Flash crowd
# ----------------------------------------------------------------------
def test_flash_crowd_spikes_then_decays_to_base():
    workload = FlashCrowdWorkload(
        base_rate=50.0, multiplier=8.0, interval=60.0, decay_steps=4,
        step_duration=2.0,
    )
    # t=0 is the first crowd: full spike.
    assert workload.rate_at(0.0) == pytest.approx(400.0)
    # Geometric decay per plateau.
    decay = 8.0 ** (-1.0 / 4)
    for step in range(4):
        assert workload.rate_at(step * 2.0 + 1.0) == pytest.approx(
            400.0 * decay**step
        )
    # After the decay window: base rate until the next crowd.
    assert workload.rate_at(8.0) == 50.0
    assert workload.rate_at(59.9) == 50.0
    # The next crowd fires at the interval.
    assert workload.rate_at(60.0) == pytest.approx(400.0)


def test_flash_crowd_decay_is_monotone_nonincreasing():
    workload = FlashCrowdWorkload()
    rates = [workload.rate_at(t * workload.step_duration + 0.1)
             for t in range(workload.decay_steps + 1)]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    assert rates[-1] == workload.base_rate


def test_flash_crowd_next_change_walks_plateaus_then_jumps_to_next_crowd():
    workload = FlashCrowdWorkload(
        base_rate=50.0, multiplier=4.0, interval=30.0, decay_steps=3,
        step_duration=2.0,
    )
    assert workload.next_change(0.0) == pytest.approx(2.0)
    assert workload.next_change(2.0) == pytest.approx(4.0)
    assert workload.next_change(4.5) == pytest.approx(6.0)
    # Past the decay window: nothing changes until the next crowd.
    assert workload.next_change(6.0) == pytest.approx(30.0)
    assert workload.next_change(29.0) == pytest.approx(30.0)
    assert workload.next_change(30.0) == pytest.approx(32.0)


def test_flash_crowd_validates_parameters():
    with pytest.raises(ValueError, match="positive"):
        FlashCrowdWorkload(interval=0.0)
    with pytest.raises(ValueError, match="decay step"):
        FlashCrowdWorkload(decay_steps=0)
    with pytest.raises(ValueError, match="multiplier"):
        FlashCrowdWorkload(multiplier=0.5)
    with pytest.raises(ValueError, match="decay must finish"):
        FlashCrowdWorkload(interval=10.0, decay_steps=6, step_duration=2.0)


def test_compositions_run_under_the_simulator():
    # End to end: both shapes drive a PBFT cluster deterministically.
    from repro.experiments.runner import Scenario, run_scenario

    for name, params in (
        ("diurnal", dict(low_rate=20.0, high_rate=120.0, period=4.0, steps=4)),
        ("flash-crowd", dict(base_rate=40.0, multiplier=4.0, interval=4.0,
                             decay_steps=2, step_duration=0.5)),
    ):
        scenario = Scenario(
            protocol="pbft", deployment="wonderproxy-4", workload=name,
            workload_params=params, duration=8.0, seed=1,
        )
        first = run_scenario(scenario).to_json()
        second = run_scenario(scenario).to_json()
        assert first == second
        assert run_scenario(scenario).run_metrics.total_requests() > 0
