"""Incremental-vs-full equivalence for the tree search engines.

The acceptance bar for the optimizer refactor: for every engine entry
point, the incremental path returns *identical* ``best_state`` /
``best_score`` / ``accepted`` to the full-scoring reference under the
same seed, across sizes including the paper's n=211, and the delta
scores match the from-scratch scores to the bit (checked-reference
mode).
"""

import random

import pytest

from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule, anneal_incremental
from repro.tree.kauri_sa import KauriSaReconfigurer
from repro.tree.optitree import IncrementalTreeSearch, optitree_search, random_tree
from repro.tree.score import tree_score
from repro.tree.topology import TreeConfiguration, tree_position_structure


def latency_for(n: int, seed: int = 0):
    deployment = random_world_deployment(n, random.Random(seed + n))
    return deployment.latency.matrix_seconds() / 2.0


SCHEDULE = AnnealingSchedule(iterations=600, initial_temperature=0.05, cooling=0.9995)


@pytest.mark.parametrize("n", [4, 57, 211])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_optitree_incremental_matches_full(n, seed):
    latency = latency_for(n)
    f = (n - 1) // 3
    kwargs = dict(
        candidates=frozenset(range(n)), u=0, schedule=SCHEDULE, k=2 * f + 1
    )
    fast = optitree_search(latency, n, f, rng=random.Random(seed), **kwargs)
    slow = optitree_search(
        latency, n, f, rng=random.Random(seed), incremental=False, **kwargs
    )
    assert fast.best_state == slow.best_state
    assert fast.best_score == slow.best_score
    assert fast.initial_score == slow.initial_score
    assert fast.accepted == slow.accepted
    assert fast.iterations_used == slow.iterations_used


@pytest.mark.parametrize("n,candidate_range", [(57, (3, 40)), (211, (10, 150))])
def test_optitree_incremental_matches_full_restricted_candidates(n, candidate_range):
    """The candidate-respecting mutation path (resampled swap targets)
    must consume randomness identically in both engines."""
    latency = latency_for(n)
    f = (n - 1) // 3
    candidates = frozenset(range(*candidate_range))
    kwargs = dict(candidates=candidates, u=2, schedule=SCHEDULE)
    fast = optitree_search(latency, n, f, rng=random.Random(9), **kwargs)
    slow = optitree_search(
        latency, n, f, rng=random.Random(9), incremental=False, **kwargs
    )
    assert fast.best_state == slow.best_state
    assert fast.best_score == slow.best_score
    assert fast.accepted == slow.accepted
    assert fast.best_state.internal_nodes <= candidates


@pytest.mark.parametrize("n", [4, 57, 211])
def test_tree_engine_deltas_match_full_scores_to_the_bit(n):
    """Checked-reference mode: every accepted incremental score equals
    the from-scratch ``tree_score`` of the mutated layout exactly."""
    latency = latency_for(n)
    f = (n - 1) // 3
    k = 2 * f + 1
    candidates = frozenset(range(n))
    rng = random.Random(31)
    initial = random_tree(n, candidates, rng)
    engine = IncrementalTreeSearch(latency, initial, candidates, k)
    result = anneal_incremental(
        engine,
        rng,
        AnnealingSchedule(iterations=300, initial_temperature=0.05),
        check_score=lambda tree: tree_score(latency, tree, k),
    )
    assert result.accepted > 0
    # The engine's final cached costs equal a fresh engine's.
    rebuilt = IncrementalTreeSearch(
        latency, engine.snapshot(), candidates, k
    )
    assert rebuilt.costs == engine.costs
    assert rebuilt.lagg == engine.lagg


def test_position_structure_matches_children_blocks():
    """The shared (n, b) position structure must agree with the
    per-layout children mapping for imperfect sizes too."""
    for n in (4, 8, 16, 56, 57, 100):
        tree = TreeConfiguration.from_layout(range(n))
        spans, votes, subtree_of = tree_position_structure(n, tree.branch_factor)
        for index, intermediate in enumerate(tree.intermediates):
            begin, end = spans[index]
            assert tree.children[intermediate] == tree.layout[begin:end]
            assert votes[index] == tree.subtree_size(intermediate)
            assert subtree_of[1 + index] == index
            for position in range(begin, end):
                assert subtree_of[position] == index
        assert subtree_of[0] == -1


def test_kauri_sa_candidates_cached_and_invalidated():
    latency = latency_for(21)
    reconfigurer = KauriSaReconfigurer(
        latency,
        21,
        6,
        rng=random.Random(5),
        schedule=AnnealingSchedule(iterations=100, initial_temperature=0.05),
    )
    first = reconfigurer.candidates
    assert reconfigurer.candidates is first  # cached, not rebuilt per access
    tree = reconfigurer.next_tree()
    assert reconfigurer.candidates is first  # forming a tree changes nothing
    reconfigurer.tree_failed(tree)
    updated = reconfigurer.candidates
    assert updated is not first
    assert updated == first - tree.internal_nodes
    assert reconfigurer.candidates is updated


def test_kauri_sa_sequence_unchanged_by_caching():
    """The annealed tree sequence is identical to an uncached run (the
    cache must not perturb the rng stream or the candidate sets)."""
    latency = latency_for(21)
    schedule = AnnealingSchedule(iterations=150, initial_temperature=0.05)

    def sequence():
        reconfigurer = KauriSaReconfigurer(
            latency, 21, 6, rng=random.Random(5), schedule=schedule
        )
        trees = []
        while True:
            tree = reconfigurer.next_tree()
            if tree is None:
                return trees
            trees.append(tree.layout)
            reconfigurer.tree_failed(tree)

    assert sequence() == sequence()
