"""Candidate-set-sharded tree search.

The contract is the sweep-executor contract from the parallel module:
shard partition and per-shard seeds are pure functions of the inputs, so
the merged result is byte-identical for any ``jobs`` value.  These tests
pin that equivalence (serial loop vs process pool), the partition
properties, and the degenerate-shard merge behaviour.
"""

import random

import pytest

from repro.experiments.parallel import derive_sweep_seed
from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_sa import KauriSaReconfigurer
from repro.tree.optitree import (
    optitree_search,
    optitree_search_sharded,
    shard_candidates,
)
from repro.tree.topology import branch_factor_for

FAST = AnnealingSchedule(iterations=300, initial_temperature=0.05)

N, F = 57, 18


def result_key(result):
    """Every observable field of an AnnealingResult, for exact diffs."""
    return (
        result.best_state,
        result.best_score,
        result.initial_score,
        result.iterations_used,
        result.accepted,
        result.converged,
    )


# ----------------------------------------------------------------------
# Partition
# ----------------------------------------------------------------------
def test_shard_candidates_is_a_partition():
    candidates = frozenset(range(3, 40))
    shards = shard_candidates(candidates, 5)
    assert len(shards) == 5
    union = set()
    for shard in shards:
        assert not (shard & union)
        union |= shard
    assert union == candidates


def test_shard_candidates_deals_round_robin():
    # Sorted round-robin: shard i holds every 5th candidate starting at
    # the i-th smallest, so each shard spans the whole id range.
    shards = shard_candidates(frozenset(range(10)), 5)
    assert shards[0] == {0, 5}
    assert shards[4] == {4, 9}


def test_shard_candidates_deterministic():
    candidates = frozenset(random.Random(1).sample(range(500), 64))
    assert shard_candidates(candidates, 7) == shard_candidates(candidates, 7)


# ----------------------------------------------------------------------
# Byte-identical merge across --jobs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [2, 3])
def test_sharded_search_matches_serial_for_any_jobs(world57_links, jobs):
    kwargs = dict(
        u=0, root_seed=99, shards=3, schedule=FAST, k=(N - F) + F
    )
    candidates = frozenset(range(N))
    serial = optitree_search_sharded(
        world57_links, N, F, candidates, jobs=1, **kwargs
    )
    pooled = optitree_search_sharded(
        world57_links, N, F, candidates, jobs=jobs, **kwargs
    )
    assert result_key(pooled) == result_key(serial)


def test_sharded_search_repeatable_under_root_seed(world57_links):
    candidates = frozenset(range(N))
    runs = [
        optitree_search_sharded(
            world57_links, N, F, candidates, u=0,
            root_seed=7, shards=4, jobs=2, schedule=FAST,
        )
        for _ in range(2)
    ]
    assert result_key(runs[0]) == result_key(runs[1])


def test_single_shard_reduces_to_plain_search(world57_links):
    candidates = frozenset(range(N))
    sharded = optitree_search_sharded(
        world57_links, N, F, candidates, u=0,
        root_seed=11, shards=1, schedule=FAST,
    )
    direct = optitree_search(
        world57_links, N, F, candidates, u=0,
        rng=random.Random(derive_sweep_seed(11, "shard-0")),
        schedule=FAST,
    )
    assert result_key(sharded) == result_key(direct)


def test_winning_tree_stays_inside_one_shard(world57_links):
    # Each shard searches only its own candidate subset, so the merged
    # winner's internal nodes sit entirely inside a single shard.
    candidates = frozenset(range(N))
    shards = shard_candidates(candidates, 3)
    result = optitree_search_sharded(
        world57_links, N, F, candidates, u=0,
        root_seed=5, shards=3, schedule=FAST,
    )
    internal = result.best_state.internal_nodes
    assert any(internal <= shard for shard in shards)


# ----------------------------------------------------------------------
# Degenerate shards
# ----------------------------------------------------------------------
def test_undersized_shards_are_skipped(world57_links):
    # 15 candidates over 2 shards: shard 0 gets 8 (= b + 1 for n=57,
    # just enough), shard 1 gets 7 and cannot form a tree.
    b = branch_factor_for(N)
    candidates = frozenset(range(2 * (b + 1) - 1))
    shards = shard_candidates(candidates, 2)
    assert len(shards[0]) == b + 1 and len(shards[1]) == b
    result = optitree_search_sharded(
        world57_links, N, F, candidates, u=0,
        root_seed=3, shards=2, schedule=FAST,
    )
    assert result is not None
    assert result.best_state.internal_nodes <= shards[0]


def test_all_shards_undersized_returns_none(world57_links):
    result = optitree_search_sharded(
        world57_links, N, F, frozenset(range(6)), u=0,
        root_seed=3, shards=3, schedule=FAST,
    )
    assert result is None


# ----------------------------------------------------------------------
# Kauri-sa wiring
# ----------------------------------------------------------------------
def make_reconfigurer(world57_links, jobs):
    return KauriSaReconfigurer(
        world57_links, N, F, rng=random.Random(21),
        schedule=FAST, shards=3, jobs=jobs,
    )


def test_kauri_sa_sharded_identical_across_jobs(world57_links):
    serial = make_reconfigurer(world57_links, jobs=1)
    pooled = make_reconfigurer(world57_links, jobs=2)
    for _ in range(2):
        tree_serial = serial.next_tree()
        tree_pooled = pooled.next_tree()
        assert tree_pooled == tree_serial
        # Blacklisting after a failure must keep the streams aligned.
        serial.tree_failed(tree_serial)
        pooled.tree_failed(tree_pooled)
    assert serial.trees_formed == pooled.trees_formed == 2


def test_kauri_sa_sharded_respects_blacklist(world57_links):
    reconfigurer = make_reconfigurer(world57_links, jobs=1)
    tree = reconfigurer.next_tree()
    reconfigurer.tree_failed(tree)
    successor = reconfigurer.next_tree()
    assert not (successor.internal_nodes & tree.internal_nodes)
