"""Tests for Definition 1's score and the tree timeouts of Lemma 6."""

import math

import numpy as np
import pytest

from repro.tree.score import (
    TreeTimeouts,
    aggregation_latency,
    default_k,
    tree_round_duration,
    tree_score,
)
from repro.tree.topology import TreeConfiguration


def uniform_latency(n: int, value: float = 0.01) -> np.ndarray:
    matrix = np.full((n, n), value)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def test_aggregation_latency_is_slowest_child_link():
    n = 13
    latency = uniform_latency(n)
    tree = TreeConfiguration.from_layout(range(n))
    latency[1, 6] = 0.05  # one slow leaf under intermediate 1
    latency[6, 1] = 0.05
    assert aggregation_latency(latency, tree, 1) == 0.05
    assert aggregation_latency(latency, tree, 2) == 0.01


def test_score_uniform_tree():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    latency = uniform_latency(n)
    # Each subtree: Lagg + L[I,R] = 0.02, covering 4 votes; root adds 1.
    assert tree_score(latency, tree, k=5) == pytest.approx(0.02)
    assert tree_score(latency, tree, k=13) == pytest.approx(0.02)


def test_score_takes_cheapest_covering_subtrees():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    latency = uniform_latency(n)
    # Make intermediate 3's subtree slow.
    for child in tree.children[3]:
        latency[3, child] = latency[child, 3] = 0.10
    # k=9: subtrees of intermediates 1 and 2 cover 8 + root = 9.
    assert tree_score(latency, tree, k=9) == pytest.approx(0.02)
    # k=13 needs subtree 3 as well: cost jumps to 0.10 + 0.01.
    assert tree_score(latency, tree, k=13) == pytest.approx(0.11)


def test_score_infeasible_when_k_exceeds_votes():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    assert tree_score(uniform_latency(n), tree, k=14) == math.inf


def test_round_duration_counts_dissemination():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    latency = uniform_latency(n)
    score = tree_score(latency, tree, k=9)
    duration = tree_round_duration(latency, tree, k=9)
    # down + 2*Lagg + up = 0.04 vs score's Lagg + up = 0.02.
    assert duration == pytest.approx(2 * score)


def test_better_placement_scores_lower(world57_links):
    """Moving well-connected replicas to internal positions must help:
    the score of the best-of-100 random layouts beats the worst."""
    import random

    from repro.tree.optitree import random_tree

    n, f = 57, 18
    rng = random.Random(1)
    scores = []
    for _ in range(100):
        tree = random_tree(n, frozenset(range(n)), rng)
        scores.append(tree_score(world57_links, tree, 2 * f + 1))
    assert min(scores) < 0.8 * max(scores)


# ----------------------------------------------------------------------
# TreeTimeouts: TR1/TR2 chains along the tree (Lemma 6)
# ----------------------------------------------------------------------
def test_timeouts_chain_monotonically():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    timeouts = TreeTimeouts(uniform_latency(n), tree, k=9)
    leaf, intermediate = 4, 1
    assert timeouts.propose_arrival(intermediate) == pytest.approx(0.01)
    assert timeouts.forward_arrival(leaf) == pytest.approx(0.02)
    assert timeouts.vote_arrival(leaf) == pytest.approx(0.03)
    assert timeouts.aggregate_arrival(intermediate) == pytest.approx(0.04)
    assert timeouts.round_duration() == pytest.approx(0.04)


def test_round_duration_equals_tree_round_duration():
    n = 21
    tree = TreeConfiguration.from_layout(range(n))
    latency = uniform_latency(n, 0.02)
    timeouts = TreeTimeouts(latency, tree, k=15)
    assert timeouts.round_duration() == pytest.approx(
        tree_round_duration(latency, tree, k=15)
    )


def test_expected_messages_by_role():
    n = 13
    tree = TreeConfiguration.from_layout(range(n))
    timeouts = TreeTimeouts(uniform_latency(n), tree, k=9)
    # Root expects aggregates from its intermediates.
    root_msgs = timeouts.expected_messages(0)
    assert {m.sender for m in root_msgs} == {1, 2, 3}
    assert all(m.msg_type == "aggregate" for m in root_msgs)
    # Intermediates expect the propose and their children's votes.
    mid_msgs = timeouts.expected_messages(1)
    kinds = {(m.sender, m.msg_type) for m in mid_msgs}
    assert (0, "propose") in kinds
    assert (4, "vote") in kinds
    # Leaves only track the forwarded proposal (§6.3 optimization).
    leaf_msgs = timeouts.expected_messages(4)
    assert [m.msg_type for m in leaf_msgs] == ["forward"]


def test_default_k():
    assert default_k(n=21, f=6, u=0) == 15
    assert default_k(n=21, f=6, u=3) == 18
