"""Vectorized-vs-scalar equivalence for tree scoring and timeouts.

The vectorized hot paths must match the scalar reference
implementations *to the float* (bit equality, not approx): seeded
simulations consume these values directly, so any ulp drift would break
the repo-wide determinism contract.
"""

import math
import random

import numpy as np
import pytest

from repro.net.deployments import random_world_deployment
from repro.tree.optitree import random_tree
from repro.tree.score import (
    TreeTimeouts,
    _collect_time_array,
    _subtree_costs,
    tree_round_duration,
    tree_round_duration_scalar,
    tree_score,
    tree_score_scalar,
)


def latency_for(n: int, seed: int = 0):
    deployment = random_world_deployment(n, random.Random(seed + n))
    return deployment.latency.matrix_seconds() / 2.0


def vectorized_score(latency, tree, k):
    """Force the vectorized path regardless of the small-tree dispatch."""
    _, lagg, uplink, votes = _subtree_costs(latency, tree)
    return _collect_time_array(lagg + uplink, votes, k - 1)


def vectorized_round_duration(latency, tree, k):
    intermediates, lagg, uplink, votes = _subtree_costs(latency, tree)
    costs = latency[tree.root, intermediates] + 2.0 * lagg + uplink
    return _collect_time_array(costs, votes, k - 1)


@pytest.mark.parametrize("n", [4, 13, 56, 57, 211])
def test_vectorized_tree_score_bit_equals_scalar(n):
    latency = latency_for(n)
    rng = random.Random(n)
    f = (n - 1) // 3
    for _ in range(20):
        tree = random_tree(n, frozenset(range(n)), rng)
        for k in (2 * f + 1, n - f, n, 2):
            scalar = tree_score_scalar(latency, tree, k)
            assert vectorized_score(latency, tree, k) == scalar
            assert tree_score(latency, tree, k) == scalar


@pytest.mark.parametrize("n", [13, 57, 211])
def test_vectorized_round_duration_bit_equals_scalar(n):
    latency = latency_for(n)
    rng = random.Random(n + 1)
    f = (n - 1) // 3
    for _ in range(10):
        tree = random_tree(n, frozenset(range(n)), rng)
        scalar = tree_round_duration_scalar(latency, tree, 2 * f + 1)
        assert vectorized_round_duration(latency, tree, 2 * f + 1) == scalar
        assert tree_round_duration(latency, tree, 2 * f + 1) == scalar


def test_vectorized_score_infeasible_k():
    n = 57
    latency = latency_for(n)
    tree = random_tree(n, frozenset(range(n)), random.Random(0))
    assert vectorized_score(latency, tree, n + 1) == math.inf
    assert tree_score(latency, tree, n + 1) == math.inf
    assert tree_score(latency, tree, 1) == 0.0  # root's own vote suffices


def test_vectorized_score_with_duplicate_costs():
    """Uniform latencies produce all-equal (cost, votes) entries; the
    lexsort tiebreak must agree with the scalar tuple sort."""
    n = 21
    latency = np.full((n, n), 0.01)
    np.fill_diagonal(latency, 0.0)
    tree = random_tree(n, frozenset(range(n)), random.Random(4))
    for k in range(2, n + 1):
        assert vectorized_score(latency, tree, k) == tree_score_scalar(
            latency, tree, k
        )


@pytest.mark.parametrize("n", [13, 57, 211])
def test_tree_timeout_chains_bit_equal_scalar_definitions(n):
    """The memoized TR1/TR2 chains equal the recursive definitions."""
    latency = latency_for(n)
    tree = random_tree(n, frozenset(range(n)), random.Random(2))
    f = (n - 1) // 3
    timeouts = TreeTimeouts(latency, tree, k=2 * f + 1)
    root = tree.root
    for intermediate in tree.intermediates:
        propose = float(latency[root, intermediate])
        assert timeouts.propose_arrival(intermediate) == propose
        children = tree.children[intermediate]
        votes = []
        for leaf in children:
            forward = propose + float(latency[intermediate, leaf])
            vote = forward + float(latency[leaf, intermediate])
            assert timeouts.forward_arrival(leaf) == forward
            assert timeouts.vote_arrival(leaf) == vote
            votes.append(vote)
        slowest = max(votes) if votes else propose
        assert timeouts.aggregate_arrival(intermediate) == (
            slowest + float(latency[intermediate, root])
        )
    # The chain form ((L+l)+l) and the closed form (L+2l) of d_rnd agree
    # only approximately (different float op order, as before the
    # refactor); the chain itself is pinned bit-exactly above.
    assert timeouts.round_duration() == pytest.approx(
        tree_round_duration_scalar(latency, tree, 2 * f + 1)
    )


def test_timeout_expected_messages_use_memoized_chains():
    n = 57
    latency = latency_for(n)
    tree = random_tree(n, frozenset(range(n)), random.Random(3))
    timeouts = TreeTimeouts(latency, tree, k=39)
    for message in timeouts.expected_messages(tree.root):
        assert message.d_m == timeouts.aggregate_arrival(message.sender)
    intermediate = tree.intermediates[0]
    for message in timeouts.expected_messages(intermediate):
        if message.msg_type == "vote":
            assert message.d_m == timeouts.vote_arrival(message.sender)
    leaf = tree.leaves[0]
    (forward,) = timeouts.expected_messages(leaf)
    assert forward.d_m == timeouts.forward_arrival(leaf)
