"""Tests for Kauri reconfiguration bins, Kauri-sa and OptiTree search."""

import random

import pytest

from repro.optimize.annealing import AnnealingSchedule
from repro.tree.kauri_reconfig import KauriReconfigurer, StarFallback
from repro.tree.kauri_sa import KauriSaReconfigurer
from repro.tree.optitree import OptiTree, mutate_tree, optitree_search, random_tree
from repro.tree.score import tree_score
from repro.tree.topology import TreeConfiguration

FAST = AnnealingSchedule(iterations=800, initial_temperature=0.05)


# ----------------------------------------------------------------------
# Kauri bins (t-bounded conformity)
# ----------------------------------------------------------------------
def test_bins_are_disjoint_and_sized():
    reconfigurer = KauriReconfigurer(21, rng=random.Random(1))
    bins = reconfigurer.bins
    assert len(bins) == 21 // 5  # i = b+1 = 5, t = n // i = 4
    seen = set()
    for bin_members in bins:
        assert len(bin_members) == 5
        assert not (set(bin_members) & seen)
        seen.update(bin_members)


def test_one_bin_is_fault_free_when_f_less_than_t():
    """t-bounded conformity: f < t guarantees a fault-free bin."""
    reconfigurer = KauriReconfigurer(21, rng=random.Random(3))
    t = reconfigurer.bin_count
    faulty = set(random.Random(5).sample(range(21), t - 1))
    clean = [b for b in reconfigurer.bins if not (set(b) & faulty)]
    assert clean, "no fault-free bin despite f < t"


def test_trees_use_bin_members_as_internal():
    reconfigurer = KauriReconfigurer(21, rng=random.Random(1))
    tree = reconfigurer.tree_for_bin(0)
    assert tree.internal_nodes == set(reconfigurer.bins[0])


def test_star_fallback_after_t_trials():
    reconfigurer = KauriReconfigurer(21, rng=random.Random(1))
    for _ in range(reconfigurer.bin_count):
        assert isinstance(reconfigurer.next_tree(), TreeConfiguration)
    assert isinstance(reconfigurer.next_tree(), StarFallback)


# ----------------------------------------------------------------------
# OptiTree search
# ----------------------------------------------------------------------
def test_random_tree_respects_candidates():
    candidates = frozenset(range(5, 21))
    tree = random_tree(21, candidates, random.Random(2))
    assert tree.internal_nodes <= candidates


def test_random_tree_none_when_too_few_candidates():
    assert random_tree(21, frozenset({1, 2}), random.Random(2)) is None


def test_mutate_keeps_internal_positions_candidate_only():
    candidates = frozenset(range(10))
    rng = random.Random(4)
    tree = random_tree(21, candidates, rng)
    for _ in range(200):
        tree = mutate_tree(tree, candidates, rng)
        assert tree.internal_nodes <= candidates


def test_search_improves_over_random(world57_links):
    n, f = 57, 18
    rng = random.Random(7)
    result = optitree_search(
        world57_links, n, f, frozenset(range(n)), u=0, rng=rng,
        schedule=AnnealingSchedule(iterations=4000, initial_temperature=0.05),
    )
    assert result.best_score <= result.initial_score
    assert result.best_score < result.initial_score  # virtually certain
    assert result.best_state.internal_nodes <= frozenset(range(n))


def test_search_larger_u_never_faster(world57_links):
    """score(q+u) is monotone in u: more robustness costs latency."""
    n, f = 57, 18
    base = optitree_search(
        world57_links, n, f, frozenset(range(n)), u=0,
        rng=random.Random(1), schedule=FAST,
    )
    tree = base.best_state
    q = n - f
    assert tree_score(world57_links, tree, q) <= tree_score(
        world57_links, tree, q + 5
    )


def test_optitree_stack_search_and_validate(world57_links):
    stack = OptiTree(0, 57, 18, search_schedule=FAST)
    from repro.core.records import LatencyVectorRecord

    for sender in range(57):
        stack.pipeline.log.append(
            LatencyVectorRecord(
                sender=sender,
                vector=tuple(float(world57_links[sender, j]) for j in range(57)),
            )
        )
    record = stack.pipeline.config_sensor.search_and_propose()
    assert record is not None
    stack.pipeline.log.append(record)
    assert stack.current_tree is not None
    timeouts = stack.timeouts_for(stack.current_tree)
    assert timeouts.round_duration() > 0


# ----------------------------------------------------------------------
# Kauri-sa
# ----------------------------------------------------------------------
def test_kauri_sa_blacklists_internal_nodes(world57_links):
    reconfigurer = KauriSaReconfigurer(
        world57_links, 57, 18, rng=random.Random(5), schedule=FAST
    )
    first = reconfigurer.next_tree()
    reconfigurer.tree_failed(first)
    assert first.internal_nodes <= reconfigurer.excluded
    second = reconfigurer.next_tree()
    assert not (second.internal_nodes & first.internal_nodes)


def test_kauri_sa_exhausts_candidates(world57_links):
    reconfigurer = KauriSaReconfigurer(
        world57_links, 57, 18, rng=random.Random(5), schedule=FAST
    )
    trees = 0
    while True:
        tree = reconfigurer.next_tree()
        if tree is None:
            break
        reconfigurer.tree_failed(tree)
        trees += 1
        assert trees < 20
    # 8 internal nodes per tree, 57 replicas: at most 7 trees.
    assert trees == 57 // 8
