"""Tests for tree configurations and the branch-factor rule."""

import pytest

from repro.tree.topology import (
    TreeConfiguration,
    branch_factor_for,
    is_perfect_tree_size,
    perfect_tree_sizes,
)


@pytest.mark.parametrize(
    "n,b",
    [(13, 3), (21, 4), (43, 6), (57, 7), (73, 8), (91, 9), (111, 10),
     (157, 12), (183, 13), (211, 14)],
)
def test_paper_sizes_have_exact_branch_factors(n, b):
    """§7.3: b = (√(4n−3) − 1)/2 for every evaluation size."""
    assert branch_factor_for(n) == b
    assert is_perfect_tree_size(n)


def test_perfect_tree_sizes_enumeration():
    assert perfect_tree_sizes(220) == [13, 21, 31, 43, 57, 73, 91, 111, 133, 157, 183, 211]


def test_non_perfect_size_supported():
    b = branch_factor_for(56)  # Stellar56
    assert b == 6
    tree = TreeConfiguration.from_layout(range(56))
    sizes = [len(tree.children[i]) for i in tree.intermediates]
    assert sum(sizes) == 56 - 7
    assert max(sizes) - min(sizes) <= 1  # balanced leaf assignment


def test_structure_of_perfect_tree():
    tree = TreeConfiguration.from_layout(range(13))
    assert tree.root == 0
    assert tree.intermediates == (1, 2, 3)
    assert tree.internal_nodes == {0, 1, 2, 3}
    assert len(tree.leaves) == 9
    assert tree.children[0] == (1, 2, 3)
    assert tree.children[1] == (4, 5, 6)
    assert tree.parent[4] == 1
    assert tree.parent[1] == 0
    assert tree.subtree_size(1) == 4


def test_layout_must_be_permutation():
    with pytest.raises(ValueError):
        TreeConfiguration.from_layout([0, 0, 1, 2])
    with pytest.raises(ValueError):
        TreeConfiguration(layout=tuple(range(13)), branch_factor=0)


def test_special_replicas_are_internal_nodes():
    layout = list(range(13))[::-1]
    tree = TreeConfiguration.from_layout(layout)
    assert tree.special_replicas() == {12, 11, 10, 9}
    assert tree.participants() == frozenset(range(13))


def test_swap_positions():
    tree = TreeConfiguration.from_layout(range(13))
    swapped = tree.swap(0, 12)
    assert swapped.root == 12
    assert swapped.layout[12] == 0
    # Original is unchanged (immutability).
    assert tree.root == 0


def test_too_small_for_tree():
    with pytest.raises(ValueError):
        branch_factor_for(3)
