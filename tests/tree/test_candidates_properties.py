"""Property tests for tree candidate selection (Theorem D.1, Lemma 8)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.graphs import Graph, ordered_edge
from repro.tree.candidates import build_disjoint_edge_set, tree_candidates


@st.composite
def graphs_with_order(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    count = draw(st.integers(min_value=0, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=9999))
    rng = random.Random(seed)
    order = []
    graph = Graph(vertices=range(n))
    for _ in range(count):
        a, b = rng.sample(range(n), 2)
        graph.add_edge(a, b)
        order.append(ordered_edge(a, b))
    return graph, order


@given(graphs_with_order())
@settings(max_examples=80, deadline=None)
def test_e_d_is_disjoint_and_maximal(item):
    graph, order = item
    e_d = build_disjoint_edge_set(graph, order)
    covered = [v for edge in e_d for v in edge]
    assert len(covered) == len(set(covered)), "E_d edges share a vertex"
    # Maximality: every graph edge touches a covered vertex.
    covered_set = set(covered)
    for a, b in graph.edges():
        assert a in covered_set or b in covered_set, f"edge ({a},{b}) uncovered"


@given(graphs_with_order())
@settings(max_examples=80, deadline=None)
def test_candidates_not_adjacent_to_e_d_and_u_formula(item):
    graph, order = item
    candidates, u, e_d, t_set = tree_candidates(graph, order)
    covered = {v for edge in e_d for v in edge}
    assert not (candidates & covered)
    assert not (candidates & t_set)
    assert u == len(e_d) + len(t_set)


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=60, deadline=None)
def test_theorem_d1_bound_with_f_faulty_reporters(seed):
    """Theorem D.1: with at most f faulty replicas raising suspicions
    (each suspicion involving >= 1 faulty endpoint), at least f+1
    candidates remain -- enough internal nodes for n >= 13."""
    rng = random.Random(seed)
    n = rng.choice([13, 21, 43])
    f = (n - 1) // 3
    faulty = set(rng.sample(range(n), f))
    graph = Graph(vertices=range(n))
    order = []
    for _ in range(3 * f):
        a = rng.choice(sorted(faulty))
        b = rng.randrange(n)
        if a == b:
            continue
        graph.add_edge(a, b)
        order.append(ordered_edge(a, b))
    candidates, _, _, _ = tree_candidates(graph, order)
    assert len(candidates) >= f + 1
    # Correct replicas dominate the exclusions only via pairing: each
    # excluded correct replica is paired with a distinct faulty one.
    excluded_correct = set(range(n)) - candidates - faulty
    assert len(excluded_correct) <= f


@given(graphs_with_order())
@settings(max_examples=60, deadline=None)
def test_deterministic_across_replays(item):
    graph, order = item
    assert tree_candidates(graph, order)[:2] == tree_candidates(graph, order)[:2]
