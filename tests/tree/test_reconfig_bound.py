"""Reconfiguration-bound tests (CT2, CT4: Lemmas 4-5, Theorem D.2).

The adversary model follows §7.5: each failed tree yields suspicions
whose edges each touch at least one faulty replica (after GST, correct
pairs never suspect each other -- Lemma 3).  Theorem D.2 then bounds the
number of failed trees by 2t (t = actual faults), because every failure
grows |E_d| or grows |T| while |E_d| stays constant.
"""

import random

import pytest

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.tree.candidates import TreeSuspicionMonitor, tree_candidates
from repro.optimize.graphs import Graph, ordered_edge
from repro.tree.optitree import random_tree


def run_adversarial_reconfigurations(n, f, t, seed):
    """Simulate tree formation against ``t`` hidden faulty replicas.

    A tree "works" iff no internal node is faulty.  When a tree fails,
    one faulty internal node is suspected by a correct child (a slow
    aggregate), creating one new suspicion edge -- the minimal evidence
    Lemma 4's case (1) guarantees.  Returns the number of failed trees
    before a working one is found.
    """
    rng = random.Random(seed)
    faulty = set(rng.sample(range(n), t))
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=n, f=f)
    failures = 0
    for round_id in range(4 * f + 10):
        candidates, _u = monitor.estimate()
        tree = random_tree(n, candidates, rng)
        assert tree is not None, "ran out of candidates (CT1 violated)"
        faulty_internal = sorted(tree.internal_nodes & faulty)
        if not faulty_internal:
            return failures
        failures += 1
        culprit = faulty_internal[0]
        correct_children = [
            child for child in tree.children.get(culprit, ()) if child not in faulty
        ]
        reporter = correct_children[0] if correct_children else tree.root
        if reporter == culprit or reporter in faulty:
            reporter = next(
                r for r in range(n) if r not in faulty and r != culprit
            )
        log.append(
            SuspicionRecord(
                reporter=reporter, suspect=culprit, kind=SuspicionKind.SLOW,
                round_id=round_id, msg_type="aggregate", phase=4,
            )
        )
        log.append(
            SuspicionRecord(
                reporter=culprit, suspect=reporter, kind=SuspicionKind.FALSE,
                round_id=round_id, msg_type="reciprocation", phase=4,
            )
        )
    pytest.fail("no working tree found within the trial bound")


@pytest.mark.parametrize("seed", range(8))
def test_ct4_at_most_2t_reconfigurations(seed):
    n = 21
    f = 6
    t = 4
    failures = run_adversarial_reconfigurations(n, f, t, seed)
    assert failures <= 2 * t


@pytest.mark.parametrize("seed", range(4))
def test_ct4_full_fault_budget(seed):
    n = 43
    f = 14
    failures = run_adversarial_reconfigurations(n, f, t=f, seed=seed)
    assert failures <= 2 * f


def test_lemma5_e_d_or_t_grows_on_failure():
    """Each new suspicion grows |E_d|, or grows |T| keeping |E_d|."""
    rng = random.Random(3)
    n = 21
    graph = Graph(vertices=range(n))
    order = []
    previous = (0, 0)
    for _ in range(25):
        a, b = rng.sample(range(n), 2)
        if graph.has_edge(a, b):
            continue
        graph.add_edge(a, b)
        order.append(ordered_edge(a, b))
        _, _, e_d, t_set = tree_candidates(graph, order)
        current = (len(e_d), len(t_set))
        assert current[0] > previous[0] or current >= previous
        previous = current
