"""Tests for the E_d / T candidate rule (§6.4, Fig. 6)."""

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.optimize.graphs import Graph
from repro.tree.candidates import (
    TreeSuspicionMonitor,
    build_disjoint_edge_set,
    triangle_set,
    tree_candidates,
)


def test_disjoint_edges_basic():
    graph = Graph(edges=[(0, 1), (2, 3)])
    e_d = build_disjoint_edge_set(graph, [(0, 1), (2, 3)])
    assert e_d == [(0, 1), (2, 3)]


def test_shared_vertex_second_edge_not_added():
    graph = Graph(edges=[(0, 1), (1, 2)])
    e_d = build_disjoint_edge_set(graph, [(0, 1), (1, 2)])
    assert e_d == [(0, 1)]


def test_augmenting_exchange_grows_matching():
    """§6.4: adding an edge may replace one E_d edge by two new ones."""
    # Arrivals: (1,2) enters E_d; then (1,0) cannot; but G has (2,3)
    # with 3 free -> replace (1,2) by (1,0) + (2,3).
    graph = Graph(edges=[(1, 2), (2, 3), (0, 1)])
    e_d = build_disjoint_edge_set(graph, [(1, 2), (2, 3), (0, 1)])
    assert sorted(e_d) == [(0, 1), (2, 3)]


def test_triangle_set_matches_paper_figure():
    """The Fig. 6 example: E_d = {(S1,S4), (S2,S3)}, T = {At}.

    Vertices: S1=0, S2=1, S3=2, S4=3, At=4, N1=5, N2=6, Bc=7, N3=8, R=9.
    """
    edges = [(0, 3), (1, 2), (0, 4), (3, 4), (1, 3)]
    graph = Graph(vertices=range(10), edges=edges)
    e_d = build_disjoint_edge_set(graph, edges)
    assert sorted(e_d) == [(0, 3), (1, 2)]
    t_set = triangle_set(graph, e_d)
    assert t_set == {4}  # At forms a triangle with (S1, S4)
    candidates, u, _, _ = tree_candidates(graph, edges)
    assert candidates == {5, 6, 7, 8, 9}
    assert u == len(e_d) + len(t_set) == 3


def test_u_counts_edges_and_triangles():
    graph = Graph(vertices=range(6), edges=[(0, 1)])
    candidates, u, e_d, t_set = tree_candidates(graph, [(0, 1)])
    assert u == 1
    assert candidates == {2, 3, 4, 5}


def test_monitor_integration():
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=13, f=4)
    log.append(
        SuspicionRecord(reporter=1, suspect=2, kind=SuspicionKind.SLOW, round_id=1)
    )
    assert 1 not in monitor.K
    assert 2 not in monitor.K
    assert monitor.u == 1
    assert monitor.e_d == [(1, 2)]


def test_monitor_triangle_exclusion():
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=13, f=4)
    for round_id, (a, b) in enumerate([(1, 2), (3, 1), (3, 2)]):
        log.append(
            SuspicionRecord(
                reporter=a, suspect=b, kind=SuspicionKind.SLOW, round_id=round_id
            )
        )
    # (1,2) in E_d; 3 forms a triangle with it -> excluded, u = 2.
    assert monitor.u == 2
    assert {1, 2, 3} & monitor.K == set()
    assert monitor.t_set == frozenset({3})


def test_crashed_replicas_not_in_tree_candidates():
    log = AppendOnlyLog()
    monitor = TreeSuspicionMonitor(0, log, n=13, f=4)
    log.append(
        SuspicionRecord(
            reporter=1, suspect=5, kind=SuspicionKind.SLOW, round_id=1, view=0
        )
    )
    monitor.advance_view(6)  # f+1 views, no reciprocation -> crashed
    assert 5 in monitor.C
    assert 5 not in monitor.K
    assert monitor.u == 0  # crash faults are not misbehavior (App. B.1)
    assert 1 in monitor.K  # the reporter is rehabilitated
