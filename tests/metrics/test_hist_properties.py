"""Property tests for the measurement-plane sketches.

Two families of guarantees back the campaign plane:

* **Merge algebra** -- ``merge`` is associative and commutative with the
  fresh sketch as identity, across *arbitrary* shard splits of a value
  stream.  This is what lets ``run_campaign`` fold per-shard sketches in
  any grouping and land on the serial answer.
* **Quantile accuracy** -- ``quantile(q)`` stays within the documented
  ``error_bound()`` (relative) of the exact linear-interpolated
  percentile for every in-domain distribution, including the shapes
  that break naive histograms: bimodal with widely separated modes,
  heavy tails, constants and single samples.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import LogHistogram, MetricsSketch, StreamingStats
from repro.workloads import percentile


def _fold_values(values, bins_per_decade=100):
    hist = LogHistogram(bins_per_decade=bins_per_decade)
    for value in values:
        hist.add(value)
    return hist


def _assert_hist_equal(left: LogHistogram, right: LogHistogram):
    """Field-by-field equality; ``total`` is a float sum whose value
    depends on add-order association, so it gets a tight isclose."""
    assert left.counts == right.counts
    assert left.count == right.count
    assert left.min == right.min
    assert left.max == right.max
    assert left.clamped_low == right.clamped_low
    assert left.clamped_high == right.clamped_high
    assert math.isclose(left.total, right.total, rel_tol=1e-12, abs_tol=1e-300)


@st.composite
def latency_streams(draw):
    """Seeded value streams over the histogram's domain, mixed shapes."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=0, max_value=400))
    shape = draw(st.sampled_from(["uniform", "lognormal", "bimodal"]))
    rng = random.Random(repr((seed, shape)))
    if shape == "uniform":
        return [10.0 ** rng.uniform(-5.0, 3.0) for _ in range(count)]
    if shape == "lognormal":
        return [math.exp(rng.gauss(-1.5, 1.0)) for _ in range(count)]
    return [
        rng.uniform(0.001, 0.002) if rng.random() < 0.5 else rng.uniform(5.0, 9.0)
        for _ in range(count)
    ]


@st.composite
def split_streams(draw):
    """A stream plus a random partition of it into contiguous shards."""
    values = draw(latency_streams())
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(values)),
                min_size=0,
                max_size=4,
            )
        )
    )
    shards = []
    start = 0
    for cut in cuts + [len(values)]:
        shards.append(values[start:cut])
        start = cut
    return values, shards


@settings(max_examples=60, deadline=None)
@given(split_streams())
def test_merge_over_any_shard_split_equals_whole(case):
    values, shards = case
    whole = _fold_values(values)
    merged = LogHistogram()
    for shard in shards:
        merged.merge(_fold_values(shard))
    _assert_hist_equal(merged, whole)


@settings(max_examples=40, deadline=None)
@given(latency_streams(), latency_streams())
def test_merge_commutes(left_values, right_values):
    ab = _fold_values(left_values).merge(_fold_values(right_values))
    ba = _fold_values(right_values).merge(_fold_values(left_values))
    assert ab.counts == ba.counts
    assert ab.count == ba.count
    assert ab.min == ba.min
    assert ab.max == ba.max
    # a+b vs b+a: same two floats, addition is commutative -- exact.
    assert ab.total == ba.total


@settings(max_examples=40, deadline=None)
@given(latency_streams(), latency_streams(), latency_streams())
def test_merge_associates(a_values, b_values, c_values):
    left = _fold_values(a_values).merge(
        _fold_values(b_values).merge(_fold_values(c_values))
    )
    right = _fold_values(a_values).merge(_fold_values(b_values)).merge(
        _fold_values(c_values)
    )
    _assert_hist_equal(left, right)


@settings(max_examples=40, deadline=None)
@given(latency_streams())
def test_fresh_histogram_is_merge_identity(values):
    folded = _fold_values(values)
    left_identity = LogHistogram().merge(_fold_values(values))
    right_identity = _fold_values(values).merge(LogHistogram())
    _assert_hist_equal(left_identity, folded)
    _assert_hist_equal(right_identity, folded)


def test_merge_rejects_mismatched_geometry():
    with pytest.raises(ValueError, match="different geometry"):
        LogHistogram(bins_per_decade=100).merge(LogHistogram(bins_per_decade=50))
    with pytest.raises(ValueError, match="different geometry"):
        LogHistogram(lo=1e-6).merge(LogHistogram(lo=1e-3))


# ----------------------------------------------------------------------
# Quantile accuracy vs the exact percentile
# ----------------------------------------------------------------------
_QS = (0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 1.0)


def _assert_quantiles_within_bound(values, bins_per_decade=100):
    hist = _fold_values(values, bins_per_decade)
    bound = hist.error_bound()
    exact_sorted = sorted(values)
    for q in _QS:
        got = hist.quantile(q)
        want = percentile(exact_sorted, q)
        assert abs(got - want) <= bound * abs(want) + 1e-15, (
            f"q={q}: sketch {got!r} vs exact {want!r} "
            f"(bound {bound:.4%}, n={len(values)})"
        )


@settings(max_examples=60, deadline=None)
@given(
    latency_streams().filter(bool),
    st.sampled_from([20, 50, 100, 200]),
)
def test_quantiles_within_documented_bound(values, bins_per_decade):
    _assert_quantiles_within_bound(values, bins_per_decade)


def test_quantiles_bimodal_separated_modes():
    rng = random.Random(7)
    values = [
        rng.uniform(0.0005, 0.0006) if k % 2 else rng.uniform(100.0, 120.0)
        for k in range(501)
    ]
    _assert_quantiles_within_bound(values)


def test_quantiles_heavy_tail():
    rng = random.Random(11)
    # Pareto-ish: a few samples orders of magnitude above the median.
    values = [0.01 * (rng.random() ** -1.5) for _ in range(1000)]
    values = [min(v, 9e3) for v in values]  # stay in-domain
    _assert_quantiles_within_bound(values)


def test_quantiles_constant_input_exact():
    hist = _fold_values([0.125] * 64)
    for q in _QS:
        # The [min, max] clamp makes constants exact, not just bounded.
        assert hist.quantile(q) == 0.125


def test_quantiles_single_sample_exact():
    hist = _fold_values([3.7])
    for q in _QS:
        assert hist.quantile(q) == 3.7


def test_quantile_of_empty_histogram_is_nan():
    assert math.isnan(LogHistogram().quantile(0.5))


def test_out_of_domain_values_are_clamped_and_counted():
    hist = LogHistogram(lo=1e-3, hi=1e2)
    hist.add(1e-9)
    hist.add(1e9)
    assert hist.clamped_low == 1
    assert hist.clamped_high == 1
    # min/max stay exact even for clamped values.
    assert hist.min == 1e-9
    assert hist.max == 1e9


# ----------------------------------------------------------------------
# MetricsSketch: the composite unit inherits the algebra
# ----------------------------------------------------------------------
def _fold_commits(commits):
    sketch = MetricsSketch()
    for commit_time, latency, payload in commits:
        sketch.observe(commit_time, latency, payload)
    return sketch


@st.composite
def commit_streams(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=0, max_value=200))
    rng = random.Random(seed)
    now = 0.0
    commits = []
    for _ in range(count):
        now += rng.expovariate(10.0)
        commits.append((now, math.exp(rng.gauss(-1.5, 0.7)), rng.randrange(1, 1001)))
    return commits


@settings(max_examples=40, deadline=None)
@given(commit_streams(), st.integers(min_value=1, max_value=5))
def test_sketch_shard_split_matches_whole(commits, shards):
    whole = _fold_commits(commits)
    merged = MetricsSketch()
    for shard in range(shards):
        merged.merge(_fold_commits(commits[shard::shards]))
    assert merged.blocks == whole.blocks
    assert merged.requests == whole.requests
    assert merged.hist.counts == whole.hist.counts
    assert _windows_close(merged, whole)
    summary_merged = merged.summary()
    summary_whole = whole.summary()
    assert (summary_merged is None) == (summary_whole is None)
    if summary_whole is not None:
        for key in ("p50", "p90", "p99"):
            assert summary_merged[key] == summary_whole[key]
        assert math.isclose(
            summary_merged["mean"], summary_whole["mean"], rel_tol=1e-12
        )


def _windows_close(merged, whole):
    left = merged.windows.state_dict()["windows"]
    right = whole.windows.state_dict()["windows"]
    if len(left) != len(right):
        return False
    for (li, lr, lb, ls), (ri, rr, rb, rs) in zip(left, right):
        if (li, lr, lb) != (ri, rr, rb):
            return False
        if not math.isclose(ls, rs, rel_tol=1e-12, abs_tol=1e-300):
            return False
    return True


@settings(max_examples=40, deadline=None)
@given(commit_streams())
def test_sketch_state_roundtrip_preserves_everything(commits):
    sketch = _fold_commits(commits)
    restored = MetricsSketch.from_state(sketch.state_dict())
    assert restored.state_dict() == sketch.state_dict()
    assert restored.summary() == sketch.summary()


@settings(max_examples=40, deadline=None)
@given(latency_streams())
def test_streaming_stats_match_naive(values):
    stats = StreamingStats()
    for value in values:
        stats.add(value)
    assert stats.count == len(values)
    if values:
        assert stats.min == min(values)
        assert stats.max == max(values)
        assert math.isclose(
            stats.mean(), sum(values) / len(values), rel_tol=1e-12
        )
