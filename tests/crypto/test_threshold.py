"""Tests for aggregates and quorum certificates."""

import pytest

from repro.crypto.signatures import InvalidSignature, KeyRegistry
from repro.crypto.threshold import AggregateSignature, QuorumCertificate, aggregate


def test_aggregate_signers_and_verify():
    registry = KeyRegistry(5)
    agg = aggregate(registry, "block-h", [0, 1, 3])
    assert agg.signers == {0, 1, 3}
    assert agg.verify(registry)


def test_aggregate_with_bad_signature_fails_verification():
    registry = KeyRegistry(5)
    agg = aggregate(registry, "block-h", [0, 1])
    tampered = AggregateSignature(
        payload="block-h",
        signatures=agg.signatures + (registry.forge(2, "block-h"),),
    )
    assert not tampered.verify(registry)


def test_merge_unions_signers():
    registry = KeyRegistry(5)
    a = aggregate(registry, "p", [0, 1])
    b = aggregate(registry, "p", [1, 2], suspected=[4])
    merged = a.merge(b)
    assert merged.signers == {0, 1, 2}
    assert merged.suspected == {4}
    assert merged.verify(registry)


def test_merge_different_payloads_rejected():
    registry = KeyRegistry(3)
    a = aggregate(registry, "p", [0])
    b = aggregate(registry, "q", [1])
    with pytest.raises(ValueError):
        a.merge(b)


def test_wire_size_grows_with_signers():
    registry = KeyRegistry(10)
    small = aggregate(registry, "p", [0])
    large = aggregate(registry, "p", range(10))
    assert large.wire_size > small.wire_size


def test_qc_verify_checks_weight_and_signatures():
    registry = KeyRegistry(4)
    agg = aggregate(registry, "h", [0, 1, 2])
    qc = QuorumCertificate(view=3, block_hash="h", aggregate=agg, weight=3.0)
    qc.verify(registry, required_weight=3.0)
    with pytest.raises(InvalidSignature):
        qc.verify(registry, required_weight=4.0)


def test_suspected_children_counted_in_coverage():
    registry = KeyRegistry(6)
    agg = aggregate(registry, "h", [0, 1], suspected=[2, 3])
    assert agg.signers | agg.suspected == {0, 1, 2, 3}


def test_lazy_aggregate_equals_eager_construction():
    """aggregate() defers signing; materialized signatures must be the
    ones eager per-signer signing produces, in ascending signer order."""
    registry = KeyRegistry(5)
    lazy = aggregate(registry, "block-h", {3, 0, 1})
    eager = AggregateSignature(
        payload="block-h",
        signatures=tuple(registry.sign(s, "block-h") for s in (0, 1, 3)),
    )
    assert lazy.wire_size == eager.wire_size  # before materialization
    assert lazy.signatures == eager.signatures
    assert lazy == eager
    assert lazy.verify(registry)


def test_lazy_aggregate_snapshots_signers():
    """Callers pass live vote sets that keep growing; the aggregate must
    freeze its signer set at construction."""
    registry = KeyRegistry(5)
    voters = {0, 1}
    agg = aggregate(registry, "h", voters)
    voters.add(2)
    assert agg.signers == {0, 1}
    assert [sig.signer for sig in agg.signatures] == [0, 1]


def test_lazy_aggregate_validates_signers_eagerly():
    registry = KeyRegistry(3)
    with pytest.raises(KeyError):
        aggregate(registry, "h", [0, 42])
