"""Tests for the signature substrate."""

import pytest

from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    InvalidSignature,
    KeyRegistry,
)


def test_sign_verify_roundtrip():
    registry = KeyRegistry(4)
    signature = registry.sign(2, ("vote", 7))
    assert registry.verify(signature, ("vote", 7))


def test_verify_rejects_wrong_payload():
    registry = KeyRegistry(4)
    signature = registry.sign(2, ("vote", 7))
    assert not registry.verify(signature, ("vote", 8))


def test_verify_rejects_wrong_signer_claim():
    registry = KeyRegistry(4)
    signature = registry.sign(2, "payload")
    forged = type(signature)(signer=3, digest=signature.digest)
    assert not registry.verify(forged, "payload")


def test_forge_produces_invalid_signature():
    registry = KeyRegistry(4)
    forged = registry.forge(1, "payload")
    assert not registry.verify(forged, "payload")


def test_require_valid_raises():
    registry = KeyRegistry(4)
    forged = registry.forge(1, "payload")
    with pytest.raises(InvalidSignature):
        registry.require_valid(forged, "payload")


def test_registries_with_different_seeds_do_not_cross_verify():
    registry_a = KeyRegistry(4, seed=1)
    registry_b = KeyRegistry(4, seed=2)
    signature = registry_a.sign(0, "x")
    assert not registry_b.verify(signature, "x")


def test_enroll_is_idempotent_and_extends():
    registry = KeyRegistry(2)
    registry.enroll(10)
    registry.enroll(10)
    signature = registry.sign(10, "client")
    assert registry.verify(signature, "client")


def test_signature_deterministic_and_sized():
    registry = KeyRegistry(2)
    first = registry.sign(0, ("a", 1))
    second = registry.sign(0, ("a", 1))
    assert first == second
    assert first.wire_size == SIGNATURE_SIZE


def test_dict_payloads_rejected():
    registry = KeyRegistry(2)
    with pytest.raises(TypeError):
        registry.sign(0, {"a": 1})
