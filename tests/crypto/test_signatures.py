"""Tests for the signature substrate."""

import pytest

from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    InvalidSignature,
    KeyRegistry,
)


def test_sign_verify_roundtrip():
    registry = KeyRegistry(4)
    signature = registry.sign(2, ("vote", 7))
    assert registry.verify(signature, ("vote", 7))


def test_verify_rejects_wrong_payload():
    registry = KeyRegistry(4)
    signature = registry.sign(2, ("vote", 7))
    assert not registry.verify(signature, ("vote", 8))


def test_verify_rejects_wrong_signer_claim():
    registry = KeyRegistry(4)
    signature = registry.sign(2, "payload")
    forged = type(signature)(signer=3, digest=signature.digest)
    assert not registry.verify(forged, "payload")


def test_forge_produces_invalid_signature():
    registry = KeyRegistry(4)
    forged = registry.forge(1, "payload")
    assert not registry.verify(forged, "payload")


def test_require_valid_raises():
    registry = KeyRegistry(4)
    forged = registry.forge(1, "payload")
    with pytest.raises(InvalidSignature):
        registry.require_valid(forged, "payload")


def test_registries_with_different_seeds_do_not_cross_verify():
    registry_a = KeyRegistry(4, seed=1)
    registry_b = KeyRegistry(4, seed=2)
    signature = registry_a.sign(0, "x")
    assert not registry_b.verify(signature, "x")


def test_enroll_is_idempotent_and_extends():
    registry = KeyRegistry(2)
    registry.enroll(10)
    registry.enroll(10)
    signature = registry.sign(10, "client")
    assert registry.verify(signature, "client")


def test_signature_deterministic_and_sized():
    registry = KeyRegistry(2)
    first = registry.sign(0, ("a", 1))
    second = registry.sign(0, ("a", 1))
    assert first == second
    assert first.wire_size == SIGNATURE_SIZE


def test_dict_payloads_rejected():
    registry = KeyRegistry(2)
    with pytest.raises(TypeError):
        registry.sign(0, {"a": 1})


def test_set_and_frozenset_payloads_rejected():
    """Sets repr in hash-iteration order: a latent nondeterminism hazard."""
    registry = KeyRegistry(2)
    with pytest.raises(TypeError, match="unordered"):
        registry.sign(0, {1, 2, 3})
    with pytest.raises(TypeError, match="unordered"):
        registry.sign(0, frozenset({1, 2}))
    with pytest.raises(TypeError, match="unordered"):
        registry.verify(registry.sign(0, "x"), frozenset({1}))


def test_memoized_digests_do_not_conflate_equal_but_distinct_payloads():
    """1, 1.0 and True compare equal (one dict slot) but canonicalise to
    different bytes; the digest memo must be keyed by the bytes, never by
    the payload object."""
    registry = KeyRegistry(2)
    sig_int = registry.sign(0, 1)
    sig_float = registry.sign(0, 1.0)
    sig_bool = registry.sign(0, True)
    assert sig_int.digest != sig_float.digest
    assert sig_int.digest != sig_bool.digest
    assert registry.verify(sig_int, 1)
    assert not registry.verify(sig_int, 1.0)
    assert not registry.verify(sig_float, True)


def test_verification_is_memoized_consistently():
    """Repeated verifies (cache hits) agree with the first (cache miss),
    for both accepting and rejecting outcomes."""
    registry = KeyRegistry(2)
    signature = registry.sign(1, ("vote", 9))
    for _ in range(3):
        assert registry.verify(signature, ("vote", 9))
        assert not registry.verify(signature, ("vote", 10))
    forged = type(signature)(signer=1, digest=b"\x00" * 32)
    for _ in range(2):
        assert not registry.verify(forged, ("vote", 9))


def test_sign_many_matches_individual_signs():
    registry = KeyRegistry(5)
    sigs = registry.sign_many({3, 1, 4, 1}, "payload")
    assert [s.signer for s in sigs] == [1, 3, 4]
    for sig in sigs:
        assert sig == registry.sign(sig.signer, "payload")
    with pytest.raises(KeyError):
        registry.sign_many({1, 99}, "payload")


def test_sign_unknown_signer_raises_keyerror():
    registry = KeyRegistry(2)
    with pytest.raises(KeyError):
        registry.sign(7, "payload")
