"""Tests for the ConfigSensor / ConfigMonitor (§4.2.4)."""

import math
import random

import pytest

from repro.core.config import ConfigMonitor, ConfigSensor
from repro.core.log import AppendOnlyLog
from repro.core.records import ConfigProposalRecord
from repro.core.sensor import SensorApp
from repro.aware.weights import WeightConfiguration

N, F = 7, 2


def config_with_leader(leader: int, avoid=()) -> WeightConfiguration:
    pool = sorted(set(range(N)) - {leader} - set(avoid))
    return WeightConfiguration(
        n=N, f=F, leader=leader, vmax_replicas=frozenset(pool[: 2 * F])
    )


def leader_score(configuration) -> float:
    # Toy deterministic score: prefer low leader ids.
    return 1.0 + configuration.leader


def make_monitor(candidates=None, u=0, on_reconfigure=None, improvement=0.9):
    log = AppendOnlyLog()
    state = {"candidates": frozenset(candidates or range(N)), "u": u}

    def provider():
        return state["candidates"], state["u"]

    monitor = ConfigMonitor(
        0,
        log,
        score=leader_score,
        validator=lambda config: isinstance(config, WeightConfiguration),
        candidate_provider=provider,
        f=F,
        on_reconfigure=on_reconfigure,
        improvement_factor=improvement,
    )
    return log, monitor, state


def proposal(leader: int, proposer: int = 0, claimed=None, avoid=()) -> ConfigProposalRecord:
    configuration = config_with_leader(leader, avoid=avoid)
    return ConfigProposalRecord(
        proposer=proposer,
        configuration=configuration,
        claimed_score=claimed if claimed is not None else leader_score(configuration),
    )


def test_first_proposal_activates_when_no_current():
    log, monitor, _ = make_monitor()
    log.append(proposal(leader=3))
    assert monitor.current is not None
    assert monitor.current.leader == 3
    assert monitor.reconfigurations[0].reason == "invalid-current"


def test_valid_current_requires_significant_improvement():
    log, monitor, _ = make_monitor(improvement=0.9)
    monitor.install(config_with_leader(3))  # score 4
    log.append(proposal(leader=2, proposer=1))  # score 3 < 0.9*4 -> activate
    assert monitor.current.leader == 2
    log.append(proposal(leader=2, proposer=2))
    # Score 3 vs current 3: not an improvement; stays.
    assert len(monitor.reconfigurations) == 1


def test_marginal_improvement_rejected():
    log, monitor, _ = make_monitor(improvement=0.5)
    monitor.install(config_with_leader(2))  # score 3
    log.append(proposal(leader=1, proposer=1))  # score 2 > 0.5*3
    assert monitor.current.leader == 2


def test_invalid_current_waits_for_f_plus_1_proposals():
    log, monitor, state = make_monitor()
    monitor.install(config_with_leader(3))
    state["candidates"] = frozenset(range(N)) - {3}  # leader now suspect
    assert not monitor.current_is_valid()
    log.append(proposal(leader=1, proposer=1, avoid={3}))
    log.append(proposal(leader=2, proposer=2, avoid={3}))
    assert len(monitor.reconfigurations) == 0  # only 2 < f+1 = 3
    log.append(proposal(leader=1, proposer=4, avoid={3}))
    assert len(monitor.reconfigurations) == 1
    assert monitor.current.leader == 1  # best score among pending


def test_claimed_score_is_ignored_scores_recomputed():
    """Accountability: a lying proposer cannot win with a fake score."""
    log, monitor, state = make_monitor()
    monitor.install(config_with_leader(6))
    state["candidates"] = frozenset(range(N)) - {6}
    log.append(proposal(leader=5, proposer=1, claimed=0.0001, avoid={6}))  # lie
    log.append(proposal(leader=1, proposer=2, avoid={6}))
    log.append(proposal(leader=4, proposer=3, avoid={6}))
    assert monitor.current.leader == 1  # true best, not the liar's


def test_proposals_with_non_candidate_roles_rejected():
    log, monitor, state = make_monitor(candidates=set(range(N)) - {5})
    log.append(proposal(leader=5, proposer=1))
    assert monitor.invalid_proposals == 1
    assert monitor.current is None


def test_stale_pending_revalidated_on_candidate_change():
    """A buffered proposal naming a later-suspected replica must not be
    reconfigured to (the OptiAware attack regression)."""
    log, monitor, state = make_monitor()
    monitor.install(config_with_leader(2))
    log.append(proposal(leader=2, proposer=1))  # same as current; buffered
    state["candidates"] = frozenset(range(N)) - {2}  # 2 becomes suspect
    monitor.recheck()
    assert len(monitor.reconfigurations) == 0  # stale proposal dropped
    assert monitor.pending_count == 0


def test_newer_proposal_replaces_same_proposer():
    log, monitor, state = make_monitor()
    monitor.install(config_with_leader(1))
    state["candidates"] = frozenset(range(N)) - {1}
    log.append(proposal(leader=6, proposer=2, avoid={1}))
    log.append(proposal(leader=2, proposer=2, avoid={1}))  # same proposer, better
    log.append(proposal(leader=5, proposer=3, avoid={1}))
    log.append(proposal(leader=6, proposer=4, avoid={1}))
    assert monitor.current.leader == 2


def test_on_reconfigure_callback_invoked():
    decisions = []
    log, monitor, _ = make_monitor(on_reconfigure=decisions.append)
    log.append(proposal(leader=2))
    assert len(decisions) == 1
    assert decisions[0].configuration.leader == 2


def test_sensor_proposes_best_found():
    log = AppendOnlyLog()
    app = SensorApp(0, propose=lambda record: log.append(record))

    def search(candidates, u, rng):
        return config_with_leader(min(candidates))

    sensor = ConfigSensor(
        0,
        app,
        search=search,
        score=leader_score,
        candidate_provider=lambda: (frozenset({2, 3, 4, 5, 6}), 0),
        rng=random.Random(0),
    )
    record = sensor.search_and_propose(view=7)
    assert record is not None
    assert record.configuration.leader == 2
    assert record.claimed_score == 3.0
    assert len(log) == 1


def test_sensor_skips_infeasible_results():
    app = SensorApp(0)
    sensor = ConfigSensor(
        0,
        app,
        search=lambda candidates, u, rng: None,
        score=lambda config: math.inf,
        candidate_provider=lambda: (frozenset(), 0),
    )
    assert sensor.search_and_propose() is None
    assert app.pending == 0
