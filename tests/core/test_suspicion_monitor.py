"""Tests for the SuspicionMonitor (§4.2.3: C, G, K, u, filtering, aging)."""

from repro.core.log import AppendOnlyLog
from repro.core.misbehavior import MisbehaviorMonitor
from repro.core.records import ComplaintRecord, SuspicionKind, SuspicionRecord
from repro.core.suspicion import SuspicionMonitor
from repro.crypto.signatures import KeyRegistry


def slow(reporter, suspect, round_id=1, phase=2, msg_type="write", view=0):
    return SuspicionRecord(
        reporter=reporter, suspect=suspect, kind=SuspicionKind.SLOW,
        round_id=round_id, msg_type=msg_type, phase=phase, view=view,
    )


def false(reporter, suspect, round_id=1):
    return SuspicionRecord(
        reporter=reporter, suspect=suspect, kind=SuspicionKind.FALSE,
        round_id=round_id, msg_type="reciprocation",
    )


def make_monitor(n=7, f=2, **kwargs):
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=n, f=f, **kwargs)
    return log, monitor


def test_no_suspicions_all_candidates():
    _, monitor = make_monitor()
    assert monitor.K == frozenset(range(7))
    assert monitor.u == 0


def test_two_way_suspicion_creates_edge_and_u():
    log, monitor = make_monitor()
    log.append(slow(1, 2))
    assert monitor.graph.has_edge(1, 2)
    # MIS keeps one of {1, 2}: u = 1.
    assert monitor.u == 1
    assert len(monitor.K) == 6


def test_star_attacker_excluded():
    """Many replicas suspecting one culprit excludes just the culprit."""
    log, monitor = make_monitor()
    for reporter in (1, 2, 3, 4):
        log.append(slow(reporter, 6, round_id=reporter, phase=1))
    assert 6 not in monitor.K
    assert monitor.K == frozenset({0, 1, 2, 3, 4, 5})
    assert monitor.u == 1


def test_unreciprocated_suspicion_becomes_crash():
    log, monitor = make_monitor(f=2)
    log.append(slow(1, 2, view=0))
    monitor.advance_view(1)
    assert 2 not in monitor.C
    monitor.advance_view(3)  # deadline = view + f + 1 = 3
    assert 2 in monitor.C
    assert not monitor.graph.has_edge(1, 2)
    assert 2 not in monitor.K
    assert monitor.u == 0  # crash, not misbehavior


def test_reciprocated_suspicion_stays_an_edge():
    log, monitor = make_monitor(f=2)
    log.append(slow(1, 2))
    log.append(false(2, 1))
    monitor.advance_view(5)
    assert 2 not in monitor.C
    assert monitor.graph.has_edge(1, 2)
    assert monitor.u == 1


def test_provably_faulty_removed_from_graph():
    registry = KeyRegistry(7)
    log = AppendOnlyLog()
    misbehavior = MisbehaviorMonitor(0, log, registry)
    monitor = SuspicionMonitor(0, log, n=7, f=2, misbehavior=misbehavior)
    log.append(slow(1, 2))
    # Replica 2 is then proven faulty: vertex leaves G, K excludes it.
    forged = registry.forge(2, "x")
    from repro.core.misbehavior import InvalidSignatureProof

    log.append(
        ComplaintRecord(
            reporter=1, accused=2, kind="invalid-signature",
            proof=InvalidSignatureProof(accused=2, payload="x", signature=forged),
        )
    )
    log.append(slow(3, 2))  # suspicions against F members are moot
    assert 2 not in monitor.K
    assert 2 not in monitor.graph
    assert monitor.u == 0  # the edge died with the vertex


# ----------------------------------------------------------------------
# Filtering (§4.2.3)
# ----------------------------------------------------------------------
def test_later_phase_suspicions_filtered_per_round():
    log, monitor = make_monitor()
    log.append(slow(1, 2, round_id=9, phase=1))
    log.append(slow(3, 4, round_id=9, phase=3))  # later phase, same round
    assert monitor.graph.has_edge(1, 2)
    assert not monitor.graph.has_edge(3, 4)


def test_same_phase_suspicions_all_effective():
    """Independent observations of the same failure (same phase) all
    count -- e.g. every child of a crashed node suspects it."""
    log, monitor = make_monitor()
    log.append(slow(1, 2, round_id=9, phase=2))
    log.append(slow(3, 2, round_id=9, phase=2))
    assert monitor.graph.has_edge(1, 2)
    assert monitor.graph.has_edge(2, 3)


def test_earlier_phase_retroactively_masks_later():
    """A Byzantine replica racing its later-phase suspicions into the
    log first gains nothing: once the earliest-phase suspicion of the
    round commits, later-phase ones stop counting (the OptiAware attack
    regression)."""
    log, monitor = make_monitor()
    # Attacker 2 floods phase-2 suspicions first.
    log.append(slow(2, 5, round_id=9, phase=2))
    log.append(slow(2, 6, round_id=9, phase=2))
    assert monitor.graph.has_edge(2, 5)
    # The legitimate phase-1 suspicion (propose was late) lands later...
    log.append(slow(4, 2, round_id=9, phase=1))
    # ...and masks the attacker's flood retroactively.
    assert monitor.graph.has_edge(2, 4)
    assert not monitor.graph.has_edge(2, 5)
    assert not monitor.graph.has_edge(2, 6)


def test_propose_suspicion_must_target_round_leader():
    """Structural check: propose-phase suspicions only make sense
    against the round's leader."""
    log, monitor = make_monitor()
    monitor.note_round_leader(4, leader=1)
    log.append(slow(2, 5, round_id=4, phase=1, msg_type="propose"))
    assert not monitor.graph.has_edge(2, 5)
    assert monitor.filtered_count == 1
    log.append(slow(2, 1, round_id=4, phase=1, msg_type="propose"))
    assert monitor.graph.has_edge(1, 2)


def test_leader_suspicion_filters_next_round_timestamp():
    log, monitor = make_monitor()
    monitor.note_round_leader(5, leader=1)
    log.append(slow(1, 3, round_id=5, phase=2))  # leader suspects in round 5
    log.append(
        slow(2, 1, round_id=6, phase=0, msg_type="proposal-timestamp")
    )
    assert not monitor.graph.has_edge(1, 2)
    assert monitor.filtered_count == 1


# ----------------------------------------------------------------------
# Aging and overflow
# ----------------------------------------------------------------------
def test_stable_window_ages_out_suspicions():
    log, monitor = make_monitor(stability_window=3)
    log.append(slow(1, 2, view=0))
    log.append(false(2, 1))
    assert monitor.u == 1
    monitor.advance_view(5)  # >= stability window with no new suspicions
    assert monitor.u == 0
    assert monitor.K == frozenset(range(7))


def test_overflow_evicts_until_candidates_sufficient():
    """Lemma 1: K always reaches n - f, evicting oldest suspicions."""
    log, monitor = make_monitor(n=5, f=1)
    # Clique of suspicions among 0..3 leaves MIS of ~1 + isolated 4 = 2
    # candidates < n - f = 4 -> old suspicions must be evicted.
    pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    for index, (a, b) in enumerate(pairs):
        log.append(slow(a, b, round_id=index, phase=1))
    assert len(monitor.K) >= 4


def test_candidate_lower_bound_random_graphs():
    """C1 on random suspicion patterns."""
    import random

    rng = random.Random(9)
    log, monitor = make_monitor(n=10, f=3)
    for round_id in range(40):
        a, b = rng.sample(range(10), 2)
        log.append(slow(a, b, round_id=round_id, phase=1))
    assert len(monitor.K) >= 10 - 3


def test_estimate_returns_k_and_u():
    log, monitor = make_monitor()
    log.append(slow(1, 2, phase=1))
    candidates, u = monitor.estimate()
    assert candidates == monitor.K
    assert u == monitor.u


def test_self_and_out_of_range_suspicions_ignored():
    log, monitor = make_monitor()
    log.append(slow(1, 1))
    log.append(slow(1, 99))
    assert monitor.u == 0
    assert monitor.K == frozenset(range(7))
