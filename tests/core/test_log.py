"""Tests for the append-only log."""

import pytest

from repro.core.log import AppendOnlyLog
from repro.core.records import LatencyVectorRecord, SuspicionKind, SuspicionRecord


def vector(sender=0, n=3):
    return LatencyVectorRecord(sender=sender, vector=tuple([0.01] * n))


def suspicion(reporter=0, suspect=1):
    return SuspicionRecord(
        reporter=reporter, suspect=suspect, kind=SuspicionKind.SLOW, round_id=1
    )


def test_append_assigns_sequential_seqs():
    log = AppendOnlyLog()
    entries = [log.append(vector(sender)) for sender in range(3)]
    assert [entry.seq for entry in entries] == [0, 1, 2]
    assert len(log) == 3
    assert log.last_seq == 2


def test_subscribers_notified_by_type():
    log = AppendOnlyLog()
    vectors, suspicions = [], []
    log.subscribe(LatencyVectorRecord, lambda entry: vectors.append(entry))
    log.subscribe(SuspicionRecord, lambda entry: suspicions.append(entry))
    log.append(vector())
    log.append(suspicion())
    assert len(vectors) == 1
    assert len(suspicions) == 1


def test_subscription_order_preserved():
    log = AppendOnlyLog()
    order = []
    log.subscribe(LatencyVectorRecord, lambda entry: order.append("first"))
    log.subscribe(LatencyVectorRecord, lambda entry: order.append("second"))
    log.append(vector())
    assert order == ["first", "second"]


def test_view_stamped_on_entries():
    log = AppendOnlyLog()
    log.append(vector())
    log.advance_view(3)
    entry = log.append(vector())
    assert log[0].view == 0
    assert entry.view == 3


def test_view_cannot_go_backwards():
    log = AppendOnlyLog()
    log.advance_view(2)
    with pytest.raises(ValueError):
        log.advance_view(1)


def test_entries_of_type_and_histogram():
    log = AppendOnlyLog()
    log.append(vector())
    log.append(suspicion())
    log.append(suspicion())
    assert len(log.entries_of_type(SuspicionRecord)) == 2
    assert log.type_histogram() == {
        "LatencyVectorRecord": 1,
        "SuspicionRecord": 2,
    }


def test_total_wire_size_sums_records():
    log = AppendOnlyLog()
    a = log.append(vector())
    b = log.append(suspicion())
    assert log.total_wire_size() == a.wire_size + b.wire_size


def test_entries_of_type_respects_subclasses_and_order():
    """The per-type index must serve superclass queries merged in commit
    order, exactly like the old full-log isinstance scan."""

    class Base:
        wire_size = 0

    class DerivedA(Base):
        pass

    class DerivedB(Base):
        pass

    log = AppendOnlyLog()
    first = log.append(DerivedA())
    log.append(vector())
    second = log.append(DerivedB())
    third = log.append(DerivedA())
    by_base = log.entries_of_type(Base)
    assert [entry.seq for entry in by_base] == [first.seq, second.seq, third.seq]
    assert [entry.seq for entry in log.entries_of_type(DerivedA)] == [0, 3]
    assert log.entries_of_type(int) == []


def test_subscriber_added_after_appends_sees_only_later_entries():
    """Subscribing must invalidate the precomputed dispatch lists so the
    new callback starts firing for already-seen record types."""
    log = AppendOnlyLog()
    log.append(vector())
    seen = []
    log.subscribe(LatencyVectorRecord, lambda entry: seen.append(entry.seq))
    log.append(vector())
    log.append(vector())
    assert seen == [1, 2]


def test_histogram_counts_via_index_match_entry_order():
    log = AppendOnlyLog()
    log.append(suspicion())
    log.append(vector())
    log.append(suspicion())
    # First-appearance order of type names, counts per type.
    assert list(log.type_histogram().items()) == [
        ("SuspicionRecord", 2),
        ("LatencyVectorRecord", 1),
    ]


def test_append_many_equivalent_to_sequential_appends():
    """Same seqs, views, dispatch order and accounting as a loop."""
    records = [vector(0), suspicion(0, 1), vector(1), suspicion(2, 0)]
    loop_log, batch_log = AppendOnlyLog(), AppendOnlyLog()
    loop_seen, batch_seen = [], []
    loop_log.subscribe(object, lambda entry: loop_seen.append(entry.seq))
    batch_log.subscribe(object, lambda entry: batch_seen.append(entry.seq))
    loop_log.advance_view(2)
    batch_log.advance_view(2)
    loop_entries = [loop_log.append(record) for record in records]
    batch_entries = batch_log.append_many(records)
    assert [e.seq for e in batch_entries] == [e.seq for e in loop_entries]
    assert [e.view for e in batch_entries] == [2, 2, 2, 2]
    assert batch_seen == loop_seen
    assert batch_log.total_wire_size() == loop_log.total_wire_size()
    assert batch_log.type_histogram() == loop_log.type_histogram()


def test_append_many_explicit_view_and_mid_burst_view_change():
    log = AppendOnlyLog()
    explicit = log.append_many([vector(), vector()], view=5)
    assert [e.view for e in explicit] == [5, 5]

    # A callback advancing the view mid-burst stamps later records with
    # the new view, exactly like sequential appends.
    log2 = AppendOnlyLog()
    log2.subscribe(
        LatencyVectorRecord,
        lambda entry: log2.advance_view(log2.current_view + 1),
    )
    burst = log2.append_many([vector(), vector(), vector()])
    assert [e.view for e in burst] == [0, 1, 2]


def test_append_many_subscriber_added_mid_burst_sees_later_entries():
    log = AppendOnlyLog()
    late_seen = []

    def first_callback(entry):
        if entry.seq == 0:
            log.subscribe(
                LatencyVectorRecord, lambda e: late_seen.append(e.seq)
            )

    log.subscribe(LatencyVectorRecord, first_callback)
    log.append_many([vector(), vector(), vector()])
    assert late_seen == [1, 2]


def test_wire_size_cached_on_entry():
    class Counting:
        reads = 0

        @property
        def wire_size(self):
            Counting.reads += 1
            return 7

    log = AppendOnlyLog()
    entry = log.append(Counting())  # append reads the record once
    baseline_reads = Counting.reads
    assert entry.wire_size == 7
    assert entry.wire_size == 7  # second read served from the cache
    assert Counting.reads == baseline_reads + 1
    assert log.total_wire_size() == 7


def test_same_order_gives_same_entries_on_two_logs():
    """Determinism underpinning monitor consistency (Table 1)."""
    records = [vector(0), suspicion(0, 1), vector(1), suspicion(2, 0)]
    log_a, log_b = AppendOnlyLog(), AppendOnlyLog()
    for record in records:
        log_a.append(record)
        log_b.append(record)
    assert [e.record for e in log_a] == [e.record for e in log_b]
    assert [e.seq for e in log_a] == [e.seq for e in log_b]
