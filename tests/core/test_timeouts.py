"""Tests for TR1-TR3 timeout derivation (Appendix C, Example C.1)."""

import math

import numpy as np
import pytest

from repro.core.timeouts import (
    PbftTimeouts,
    pbft_round_duration,
    quorum_formation_time,
    uniform_weights,
)


def square_latency(n: float = 4, value: float = 0.01) -> np.ndarray:
    matrix = np.full((n, n), value)
    np.fill_diagonal(matrix, 0.0)
    return matrix


# ----------------------------------------------------------------------
# Quorum formation
# ----------------------------------------------------------------------
def test_quorum_formation_takes_fastest_senders():
    arrivals = {0: 0.1, 1: 0.2, 2: 0.5, 3: 0.9}
    weights = {i: 1.0 for i in range(4)}
    assert quorum_formation_time(arrivals, weights, 3.0) == 0.5


def test_quorum_formation_weighted_smaller_quorum():
    arrivals = {0: 0.1, 1: 0.2, 2: 0.5}
    weights = {0: 2.0, 1: 2.0, 2: 1.0}
    # Weight 4 reached with just the two fast heavy senders.
    assert quorum_formation_time(arrivals, weights, 4.0) == 0.2


def test_quorum_formation_infeasible():
    arrivals = {0: 0.1}
    assert quorum_formation_time(arrivals, {0: 1.0}, 2.0) == math.inf


def test_quorum_formation_ignores_unreachable():
    arrivals = {0: 0.1, 1: math.inf, 2: 0.2}
    weights = {i: 1.0 for i in range(3)}
    assert quorum_formation_time(arrivals, weights, 2.0) == 0.2


# ----------------------------------------------------------------------
# TR1 / TR2 / TR3
# ----------------------------------------------------------------------
def test_tr1_propose_is_single_link():
    latency = square_latency()
    timeouts = PbftTimeouts(latency, leader=0, weights=uniform_weights(4), quorum_weight=3)
    assert timeouts.propose_arrival(1) == pytest.approx(0.01)
    assert timeouts.propose_arrival(0) == 0.0


def test_tr2_write_adds_link_to_propose():
    latency = square_latency()
    timeouts = PbftTimeouts(latency, leader=0, weights=uniform_weights(4), quorum_weight=3)
    assert timeouts.write_arrival(1, 2) == pytest.approx(0.02)
    # The leader's propose doubles as its write: one link only.
    assert timeouts.write_arrival(0, 2) == pytest.approx(0.01)


def test_tr3_round_duration_on_uniform_square():
    latency = square_latency(value=0.01)
    # propose 0.01, writes 0.02, accept-send at write-quorum, accept +1 link.
    duration = pbft_round_duration(latency, 0)
    assert duration == pytest.approx(0.03)


def test_round_duration_scales_with_latency():
    slow = pbft_round_duration(square_latency(value=0.05), 0)
    fast = pbft_round_duration(square_latency(value=0.01), 0)
    assert slow == pytest.approx(5 * fast)


def test_leader_choice_changes_round_duration(europe21_links):
    durations = {
        leader: pbft_round_duration(europe21_links, leader)
        for leader in range(europe21_links.shape[0])
    }
    assert max(durations.values()) > min(durations.values())


def test_expected_messages_cover_all_phases():
    latency = square_latency()
    timeouts = PbftTimeouts(latency, leader=0, weights=uniform_weights(4), quorum_weight=3)
    expected = timeouts.expected_messages(1)
    kinds = {(m.sender, m.msg_type) for m in expected}
    assert (0, "propose") in kinds
    assert (2, "write") in kinds
    assert (0, "accept") in kinds
    assert (1, "write") not in kinds  # own messages not expected


def test_expected_messages_monotone_in_phase():
    """TR2 chains: each message's d_m is at least its predecessor's."""
    latency = square_latency()
    timeouts = PbftTimeouts(latency, leader=0, weights=uniform_weights(4), quorum_weight=3)
    expected = {(m.msg_type, m.sender): m.d_m for m in timeouts.expected_messages(1)}
    assert expected[("write", 2)] >= expected[("propose", 0)]
    assert expected[("accept", 2)] >= expected[("write", 2)]


def test_optimized_weighted_round_beats_unweighted(europe21_links):
    """An *optimized* Wheat assignment beats plain PBFT (§5's rationale);
    an arbitrary assignment need not, so the search result is compared."""
    from repro.aware.search import exhaustive_weight_search
    from repro.aware.score import weight_config_round_duration

    n, f = 21, 6
    best = exhaustive_weight_search(europe21_links, n, f)
    weighted = weight_config_round_duration(europe21_links, best)
    unweighted = min(
        pbft_round_duration(europe21_links, leader) for leader in range(n)
    )
    assert weighted <= unweighted + 1e-12
