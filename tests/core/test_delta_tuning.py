"""Tests for history-based δ selection (§7.6 extension)."""

import random

import pytest

from repro.core.delta_tuning import (
    LatencyHistory,
    expected_false_suspicion_rate,
    quantile,
    recommend_delta,
)


def history_with_ratios(ratios):
    history = LatencyHistory()
    for index, ratio in enumerate(ratios):
        history.observe(0, 1 + index % 3, baseline=0.01, observed=0.01 * ratio)
    return history


def test_quantile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert quantile(values, 0.0) == 1.0
    assert quantile(values, 1.0) == 4.0
    assert quantile(values, 0.5) == pytest.approx(2.5)


def test_quantile_empty_raises():
    with pytest.raises(ValueError):
        quantile([], 0.5)


def test_recommended_delta_covers_benign_variation():
    rng = random.Random(1)
    ratios = [1.0 + 0.05 * rng.random() for _ in range(1000)]
    history = history_with_ratios(ratios)
    delta = recommend_delta(history)
    assert expected_false_suspicion_rate(history, delta) <= 0.001 + 1e-9
    assert delta < 1.10  # tight: little variation needs little headroom


def test_volatile_network_needs_larger_delta():
    calm = history_with_ratios([1.0, 1.01, 1.02] * 100)
    stormy = history_with_ratios([1.0, 1.2, 1.35] * 100)
    assert recommend_delta(stormy) > recommend_delta(calm)


def test_ceiling_caps_adversarial_budget():
    crazy = history_with_ratios([5.0] * 50)
    assert recommend_delta(crazy, ceiling=1.5) == 1.5


def test_floor_and_no_data_defaults():
    assert recommend_delta(LatencyHistory()) == 2.0  # conservative default
    tiny = history_with_ratios([0.9, 0.95])
    assert recommend_delta(tiny) >= 1.0


def test_invalid_samples_ignored():
    history = LatencyHistory()
    history.observe(0, 1, baseline=0.0, observed=0.01)
    history.observe(0, 1, baseline=0.01, observed=-1.0)
    assert history.sample_count == 0


def test_rate_monotone_in_delta():
    history = history_with_ratios([1.0, 1.1, 1.2, 1.3, 1.4])
    rates = [
        expected_false_suspicion_rate(history, delta)
        for delta in (1.05, 1.15, 1.25, 1.45)
    ]
    assert rates == sorted(rates, reverse=True)
    assert rates[-1] == 0.0
