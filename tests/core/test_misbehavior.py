"""Tests for misbehavior proofs and monitoring (§4.2.2)."""

from repro.core.log import AppendOnlyLog
from repro.core.misbehavior import (
    EquivocationProof,
    IncompleteAggregateProof,
    InvalidSignatureProof,
    MisbehaviorMonitor,
    MisbehaviorSensor,
)
from repro.core.records import ComplaintRecord
from repro.core.sensor import SensorApp
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import aggregate


def make_stack(n=4):
    registry = KeyRegistry(n)
    log = AppendOnlyLog()
    app = SensorApp(0, propose=lambda record: log.append(record))
    sensor = MisbehaviorSensor(0, app)
    monitor = MisbehaviorMonitor(0, log, registry)
    return registry, log, sensor, monitor


def equivocation(registry, accused=1):
    payload_a = ("propose", 5, "hash-a")
    payload_b = ("propose", 5, "hash-b")
    return EquivocationProof(
        accused=accused,
        view=0,
        round_id=5,
        payload_a=payload_a,
        sig_a=registry.sign(accused, payload_a),
        payload_b=payload_b,
        sig_b=registry.sign(accused, payload_b),
    )


def test_valid_equivocation_adds_accused_to_F():
    registry, _, sensor, monitor = make_stack()
    sensor.complain(1, "equivocation", equivocation(registry))
    assert monitor.F == {1}
    assert monitor.valid_complaints == 1


def test_equivocation_same_payload_invalid():
    registry, _, sensor, monitor = make_stack()
    payload = ("propose", 5, "same")
    proof = EquivocationProof(
        accused=1,
        view=0,
        round_id=5,
        payload_a=payload,
        sig_a=registry.sign(1, payload),
        payload_b=payload,
        sig_b=registry.sign(1, payload),
    )
    sensor.complain(1, "equivocation", proof)
    # Invalid complaint: the REPORTER becomes provably faulty.
    assert monitor.F == {0}
    assert monitor.invalid_complaints == 1


def test_invalid_signature_proof():
    registry, _, sensor, monitor = make_stack()
    forged = registry.forge(2, "payload")
    proof = InvalidSignatureProof(accused=2, payload="payload", signature=forged)
    sensor.complain(2, "invalid-signature", proof)
    assert 2 in monitor.F


def test_invalid_signature_proof_over_valid_sig_backfires():
    registry, _, sensor, monitor = make_stack()
    good = registry.sign(2, "payload")
    proof = InvalidSignatureProof(accused=2, payload="payload", signature=good)
    sensor.complain(2, "invalid-signature", proof)
    assert monitor.F == {0}  # reporter punished


def test_incomplete_aggregate_proof():
    registry, _, sensor, monitor = make_stack(n=6)
    # Intermediate 1 aggregates only child 2's vote; children {2,3,4}
    # expected, no suspicion for 3, 4 -> misbehavior.
    agg = aggregate(registry, "block", [1, 2])
    proof = IncompleteAggregateProof(
        accused=1, aggregate=agg, expected_children=frozenset({2, 3, 4})
    )
    sensor.complain(1, "incomplete-aggregate", proof)
    assert 1 in monitor.F


def test_complete_aggregate_is_not_misbehavior():
    registry, _, sensor, monitor = make_stack(n=6)
    agg = aggregate(registry, "block", [1, 2], suspected=[3, 4])
    proof = IncompleteAggregateProof(
        accused=1, aggregate=agg, expected_children=frozenset({2, 3, 4})
    )
    sensor.complain(1, "incomplete-aggregate", proof)
    assert monitor.F == {0}  # complaint was bogus


def test_one_complaint_per_accused():
    registry, log, sensor, _ = make_stack()
    assert sensor.complain(1, "equivocation", equivocation(registry)) is not None
    assert sensor.complain(1, "equivocation", equivocation(registry)) is None
    assert len(log.entries_of_type(ComplaintRecord)) == 1


def test_accused_mismatch_invalidates_complaint():
    registry, log, _, monitor = make_stack()
    proof = equivocation(registry, accused=1)
    log.append(ComplaintRecord(reporter=3, accused=2, kind="equivocation", proof=proof))
    assert monitor.F == {3}
