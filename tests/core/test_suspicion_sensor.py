"""Tests for the SuspicionSensor (§4.2.3 conditions (a)-(c))."""

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.core.sensor import SensorApp
from repro.core.suspicion import ExpectedMessage, SuspicionSensor


def make_sensor(replica=0, delta=1.0):
    log = AppendOnlyLog()
    app = SensorApp(replica, propose=lambda record: log.append(record))
    sensor = SuspicionSensor(replica, app, delta=delta)
    return log, sensor


def expected(sender, msg_type="write", phase=2, d_m=0.1):
    return ExpectedMessage(sender=sender, msg_type=msg_type, phase=phase, d_m=d_m)


def suspicions(log):
    return [entry.record for entry in log.entries_of_type(SuspicionRecord)]


# ----------------------------------------------------------------------
# Condition (b): missing / late messages
# ----------------------------------------------------------------------
def test_missing_message_raises_slow_after_deadline():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3)])
    raised = sensor.check_round(1, now=0.2)
    assert len(raised) == 1
    assert raised[0].suspect == 3
    assert raised[0].kind == SuspicionKind.SLOW


def test_on_time_message_prevents_suspicion():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3)])
    sensor.on_message(1, sender=3, msg_type="write", now=0.05)
    assert sensor.check_round(1, now=0.2) == []
    assert suspicions(log) == []


def test_late_arrival_still_raises_c2():
    """C2: a message past δ·d_m is suspected even if it arrives."""
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3)])
    sensor.on_message(1, sender=3, msg_type="write", now=0.5)  # > 0.1
    raised = suspicions(log)
    assert len(raised) == 1
    assert raised[0].suspect == 3


def test_delta_scales_deadline():
    log, sensor = make_sensor(delta=2.0)
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3, d_m=0.1)])
    sensor.on_message(1, sender=3, msg_type="write", now=0.15)  # within 2*0.1
    assert sensor.check_round(1, now=0.3) == []
    assert suspicions(log) == []


def test_check_round_idempotent():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3)])
    sensor.check_round(1, now=0.2)
    assert sensor.check_round(1, now=0.3) == []
    assert len(suspicions(log)) == 1


def test_causally_later_phase_not_raised():
    """One late write implies the accept is late too; only the earliest
    phase is suspected at the sensor."""
    log, sensor = make_sensor()
    sensor.begin_round(
        1,
        leader=5,
        proposal_timestamp=0.0,
        d_rnd=1.0,
        expected=[
            expected(3, msg_type="write", phase=2, d_m=0.1),
            expected(3, msg_type="accept", phase=3, d_m=0.2),
            expected(4, msg_type="accept", phase=3, d_m=0.2),
        ],
    )
    raised = sensor.check_round(1, now=1.0)
    assert [(r.suspect, r.msg_type) for r in raised] == [(3, "write")]


def test_one_slow_per_suspect_per_round():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=1.0,
                       expected=[expected(3)])
    # Late arrival already raised the suspicion; the round check must not
    # duplicate it.
    sensor.on_message(1, sender=3, msg_type="write", now=0.5)
    sensor.check_round(1, now=1.0)
    assert len(suspicions(log)) == 1
    # A later round may report the same suspect again (timestamp gap kept
    # inside δ·d_rnd so condition (a) stays quiet).
    sensor.begin_round(2, leader=5, proposal_timestamp=0.5, d_rnd=1.0,
                       expected=[expected(3)])
    sensor.check_round(2, now=1.0)
    assert len(suspicions(log)) == 2
    sensor.forgive(3)  # clears the dedup state entirely
    assert all(s.suspect == 3 for s in suspicions(log))


# ----------------------------------------------------------------------
# Condition (a): proposal timestamps
# ----------------------------------------------------------------------
def test_delayed_proposal_timestamp_suspects_leader():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=0.1, expected=[])
    sensor.begin_round(2, leader=5, proposal_timestamp=0.5, d_rnd=0.1, expected=[])
    raised = suspicions(log)
    assert len(raised) == 1
    assert raised[0].suspect == 5
    assert raised[0].msg_type == "proposal-timestamp"


def test_timely_proposal_timestamps_ok():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=0.1, expected=[])
    sensor.begin_round(2, leader=5, proposal_timestamp=0.09, d_rnd=0.1, expected=[])
    assert suspicions(log) == []


def test_leader_change_resets_timestamp_check():
    log, sensor = make_sensor()
    sensor.begin_round(1, leader=5, proposal_timestamp=0.0, d_rnd=0.1, expected=[])
    sensor.begin_round(2, leader=6, proposal_timestamp=5.0, d_rnd=0.1, expected=[])
    assert suspicions(log) == []


# ----------------------------------------------------------------------
# Condition (c): reciprocation
# ----------------------------------------------------------------------
def test_reciprocates_suspicion_against_self():
    log, sensor = make_sensor(replica=3)
    incoming = SuspicionRecord(
        reporter=7, suspect=3, kind=SuspicionKind.SLOW, round_id=4
    )
    sensor.on_suspicion_logged(incoming)
    raised = suspicions(log)
    assert len(raised) == 1
    assert raised[0].kind == SuspicionKind.FALSE
    assert raised[0].suspect == 7
    assert raised[0].reporter == 3


def test_no_reciprocation_for_others_or_self_reports():
    log, sensor = make_sensor(replica=3)
    sensor.on_suspicion_logged(
        SuspicionRecord(reporter=7, suspect=8, kind=SuspicionKind.SLOW, round_id=4)
    )
    sensor.on_suspicion_logged(
        SuspicionRecord(reporter=3, suspect=9, kind=SuspicionKind.SLOW, round_id=4)
    )
    assert suspicions(log) == []


def test_reciprocation_deduplicated():
    log, sensor = make_sensor(replica=3)
    incoming = SuspicionRecord(
        reporter=7, suspect=3, kind=SuspicionKind.SLOW, round_id=4
    )
    sensor.on_suspicion_logged(incoming)
    sensor.on_suspicion_logged(incoming)
    assert len(suspicions(log)) == 1
