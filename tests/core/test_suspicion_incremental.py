"""Incremental-vs-rebuild equivalence for the SuspicionMonitor.

The monitor maintains min-phase maps, effective-item contributions and
the suspicion graph as mutations (PR 5); these tests replay randomized
log interleavings -- slow suspicions, reciprocations ("forgives"),
misbehavior proofs, view changes, leader notes -- and assert the
incremental state equals a from-scratch rebuild at *every* step, via

* ``check_rebuild=True`` (the monitor's internal checked-reference mode,
  which raises on the first divergence), and
* an independent prefix replay: a fresh monitor fed the same committed
  prefix must land on the identical (C, K, u, G, active) state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import AppendOnlyLog
from repro.core.misbehavior import InvalidSignatureProof, MisbehaviorMonitor
from repro.core.records import ComplaintRecord, SuspicionKind, SuspicionRecord
from repro.core.suspicion import SuspicionMonitor
from repro.crypto.signatures import KeyRegistry
from repro.tree.candidates import TreeSuspicionMonitor

MSG_TYPES = ("write", "aggregate", "propose", "proposal-timestamp")


@st.composite
def op_streams(draw):
    """(n, f, ops): a deterministic interleaving of monitor inputs."""
    n = draw(st.integers(min_value=4, max_value=14))
    f = (n - 1) // 3
    count = draw(st.integers(min_value=0, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    ops = []
    view = 0
    for index in range(count):
        roll = rng.random()
        if roll < 0.55:
            a, b = rng.sample(range(n), 2)
            ops.append(
                (
                    "suspicion",
                    SuspicionRecord(
                        reporter=a,
                        suspect=b,
                        kind=SuspicionKind.SLOW,
                        round_id=rng.randrange(8),
                        msg_type=rng.choice(MSG_TYPES),
                        phase=rng.randrange(4),
                        view=view,
                    ),
                )
            )
        elif roll < 0.72:
            # A reciprocation / forgive of a random (possibly absent) pair.
            a, b = rng.sample(range(n), 2)
            ops.append(
                (
                    "suspicion",
                    SuspicionRecord(
                        reporter=a,
                        suspect=b,
                        kind=SuspicionKind.FALSE,
                        round_id=rng.randrange(8),
                        msg_type="reciprocation",
                        phase=rng.randrange(4),
                        view=view,
                    ),
                )
            )
        elif roll < 0.80:
            ops.append(("complaint", rng.randrange(n)))
        elif roll < 0.90:
            view += rng.randrange(1, 3)
            ops.append(("view", view))
        else:
            ops.append(("leader", rng.randrange(8), rng.randrange(n)))
    return n, f, ops


def build(monitor_cls, n, f, registry, **kwargs):
    log = AppendOnlyLog()
    misbehavior = MisbehaviorMonitor(0, log, registry)
    monitor = monitor_cls(0, log, n=n, f=f, misbehavior=misbehavior, **kwargs)
    return log, monitor


def apply_op(log, monitor, registry, op):
    if op[0] == "suspicion":
        log.append(op[1])
    elif op[0] == "complaint":
        accused = op[1]
        log.append(
            ComplaintRecord(
                reporter=(accused + 1) % monitor.n,
                accused=accused,
                kind="invalid-signature",
                proof=InvalidSignatureProof(
                    accused=accused,
                    payload=f"payload-{accused}",
                    signature=registry.forge(accused, f"payload-{accused}"),
                ),
            )
        )
    elif op[0] == "view":
        monitor.advance_view(op[1])
    else:
        monitor.note_round_leader(op[1], op[2])


def state_of(monitor):
    return (
        monitor.K,
        monitor.u,
        monitor.C,
        monitor.graph.vertices(),
        monitor.graph.edges(),
        monitor.active_suspicions(),
        monitor.filtered_count,
    )


@pytest.mark.parametrize("monitor_cls", [SuspicionMonitor, TreeSuspicionMonitor])
@given(op_streams())
@settings(max_examples=40, deadline=None)
def test_checked_mode_accepts_random_interleavings(monitor_cls, stream):
    """check_rebuild=True re-derives from scratch after every mutation
    and raises on divergence -- a pass IS the per-step equivalence."""
    n, f, ops = stream
    registry = KeyRegistry(n)
    log, monitor = build(monitor_cls, n, f, registry, check_rebuild=True)
    for op in ops:
        apply_op(log, monitor, registry, op)


@pytest.mark.parametrize("monitor_cls", [SuspicionMonitor, TreeSuspicionMonitor])
@given(op_streams())
@settings(max_examples=15, deadline=None)
def test_every_prefix_replay_matches(monitor_cls, stream):
    """After every step, a fresh monitor replaying the same prefix lands
    on the identical derived state (no hidden order dependence)."""
    n, f, ops = stream
    registry = KeyRegistry(n)
    log, monitor = build(monitor_cls, n, f, registry)
    for index, op in enumerate(ops):
        apply_op(log, monitor, registry, op)
        replay_log, replay_monitor = build(monitor_cls, n, f, registry)
        for replay_op in ops[: index + 1]:
            apply_op(replay_log, replay_monitor, registry, replay_op)
        assert state_of(replay_monitor) == state_of(monitor)


def test_checked_mode_detects_planted_divergence():
    """Corrupting the incremental registries must trip the checker (the
    divergence-detection twin of the optimizer's check_score tests)."""
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=7, f=2, check_rebuild=True)
    log.append(
        SuspicionRecord(
            reporter=1, suspect=2, kind=SuspicionKind.SLOW, round_id=1, phase=1
        )
    )
    monitor._edge_counts[(3, 4)] = 1  # plant a bogus effective edge
    monitor._dirty = True
    monitor._refresh()
    with pytest.raises(AssertionError):
        log.append(
            SuspicionRecord(
                reporter=1, suspect=3, kind=SuspicionKind.SLOW, round_id=2, phase=1
            )
        )


@pytest.mark.parametrize("monitor_cls", [SuspicionMonitor, TreeSuspicionMonitor])
@given(op_streams())
@settings(max_examples=20, deadline=None)
def test_rebuild_recovery_hatch_reconstructs_registries(monitor_cls, stream):
    """_rebuild() (the from-scratch recovery hatch) must reconstruct the
    incremental registries and derived state exactly -- even after they
    were corrupted."""
    n, f, ops = stream
    registry = KeyRegistry(n)
    log, monitor = build(monitor_cls, n, f, registry)
    for op in ops:
        apply_op(log, monitor, registry, op)
    before = state_of(monitor)
    # Trash every registry; _rebuild must restore them from the deque.
    monitor._round_phase_counts = {"garbage": True}
    monitor._round_min_phase = {}
    monitor._round_items = {}
    monitor._edge_counts = {(0, 1): 99}
    monitor._oneway_counts = {0: 99}
    monitor._rebuild()
    assert state_of(monitor) == before
    monitor._check_against_rebuild()  # registries consistent again


def test_eviction_order_preserved_under_overflow():
    """The deque-based overflow eviction removes oldest-first, exactly
    like the old list.pop(0)."""
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=5, f=1)
    pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    for index, (a, b) in enumerate(pairs):
        log.append(
            SuspicionRecord(
                reporter=a, suspect=b, kind=SuspicionKind.SLOW,
                round_id=index, phase=1,
            )
        )
    # Lemma 1 kept K at n - f by evicting the *oldest* suspicions; the
    # survivors must be a suffix of the original stream.
    survivors = monitor.active_suspicions()
    assert survivors == [tuple(p) for p in pairs[len(pairs) - len(survivors):]]
    assert len(monitor.K) >= 4


def test_aging_eviction_matches_reference_state():
    """Stability-window aging pops the oldest item and the incremental
    state tracks the from-scratch rebuild through it."""
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=7, f=2, stability_window=2,
                               check_rebuild=True)
    log.append(
        SuspicionRecord(reporter=1, suspect=2, kind=SuspicionKind.SLOW,
                        round_id=1, phase=1)
    )
    log.append(
        SuspicionRecord(reporter=3, suspect=4, kind=SuspicionKind.SLOW,
                        round_id=2, phase=1, view=0)
    )
    for view in range(1, 12):
        monitor.advance_view(view)
    assert monitor.active_suspicions() == []
    assert monitor.u == 0
