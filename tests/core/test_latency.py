"""Tests for the latency sensor and monitor (§4.2.1)."""

import math

from repro.core.latency import LatencyMonitor, LatencySensor, probe_all_peers
from repro.core.log import AppendOnlyLog
from repro.core.records import UNREACHABLE, LatencyVectorRecord
from repro.core.sensor import SensorApp


def make_pair(n=4, replica=0):
    log = AppendOnlyLog()
    app = SensorApp(replica, propose=lambda record: log.append(record))
    sensor = LatencySensor(replica, n, app)
    monitor = LatencyMonitor(replica, log, n)
    return log, sensor, monitor


def test_vector_marks_unmeasured_as_unreachable():
    _, sensor, _ = make_pair()
    sensor.observe_rtt(1, 0.020)
    vector = sensor.compile_vector()
    assert vector.vector[1] == 0.010  # RTT halved to link latency
    assert vector.vector[2] == UNREACHABLE
    assert vector.vector[0] == 0.0  # self


def test_monitor_builds_symmetric_matrix():
    log, sensor, monitor = make_pair()
    sensor.observe_rtt(1, 0.020)
    sensor.measure_and_record()
    assert monitor.latency(0, 1) == 0.010
    assert monitor.latency(1, 0) == 0.010


def test_symmetry_takes_max_of_directions():
    log, _, monitor = make_pair()
    log.append(LatencyVectorRecord(sender=0, vector=(0.0, 0.010, UNREACHABLE, UNREACHABLE)))
    log.append(LatencyVectorRecord(sender=1, vector=(0.030, 0.0, UNREACHABLE, UNREACHABLE)))
    assert monitor.latency(0, 1) == 0.030  # max(0.010, 0.030)


def test_unreachable_overrides_when_maximal():
    log, _, monitor = make_pair()
    log.append(LatencyVectorRecord(sender=0, vector=(0.0, 0.010, UNREACHABLE, UNREACHABLE)))
    log.append(
        LatencyVectorRecord(sender=1, vector=(UNREACHABLE, 0.0, UNREACHABLE, UNREACHABLE))
    )
    # One side says unreachable: max() keeps ∞, the conservative choice.
    assert math.isinf(monitor.latency(0, 1))


def test_malformed_rows_ignored():
    log, _, monitor = make_pair()
    log.append(LatencyVectorRecord(sender=9, vector=(0.0, 0.1, 0.1, 0.1)))  # bad id
    log.append(LatencyVectorRecord(sender=0, vector=(0.0, 0.1)))  # bad length
    assert monitor.vectors_seen == 0


def test_negative_latencies_skipped():
    log, _, monitor = make_pair()
    log.append(LatencyVectorRecord(sender=0, vector=(0.0, -5.0, 0.02, 0.02)))
    assert math.isinf(monitor.latency(0, 1))
    assert monitor.latency(0, 2) == 0.02


def test_is_complete_requires_all_pairs():
    log, _, monitor = make_pair(n=3)
    assert not monitor.is_complete()
    for sender in range(3):
        vector = tuple(0.0 if i == sender else 0.01 for i in range(3))
        log.append(LatencyVectorRecord(sender=sender, vector=vector))
    assert monitor.is_complete()
    assert monitor.reachable_peers(0) == [1, 2]


def test_probe_all_peers_marks_unresponsive():
    _, sensor, monitor = make_pair()
    probe_all_peers(
        sensor,
        rtt_provider=lambda a, b: 0.02,
        responsive=lambda peer: peer != 2,
    )
    vector = sensor.compile_vector()
    assert vector.vector[2] == UNREACHABLE
    assert vector.vector[1] == 0.01


def test_two_monitors_same_log_are_identical():
    log = AppendOnlyLog()
    monitor_a = LatencyMonitor(0, log, 3)
    monitor_b = LatencyMonitor(1, log, 3)
    log.append(LatencyVectorRecord(sender=0, vector=(0.0, 0.01, 0.03)))
    log.append(LatencyVectorRecord(sender=1, vector=(0.02, 0.0, UNREACHABLE)))
    assert (monitor_a.matrix == monitor_b.matrix).all()
