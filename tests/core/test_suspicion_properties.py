"""Property-based tests for the SuspicionMonitor's paper guarantees.

C1 (Lemma 1): at least n − f candidates are always available.
Consistency (Table 1): monitors fed the same log prefix agree exactly.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log import AppendOnlyLog
from repro.core.records import SuspicionKind, SuspicionRecord
from repro.core.suspicion import SuspicionMonitor


@st.composite
def suspicion_streams(draw):
    n = draw(st.integers(min_value=4, max_value=12))
    f = (n - 1) // 3
    count = draw(st.integers(min_value=0, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    records = []
    for index in range(count):
        a, b = rng.sample(range(n), 2)
        kind = SuspicionKind.FALSE if rng.random() < 0.3 else SuspicionKind.SLOW
        records.append(
            SuspicionRecord(
                reporter=a,
                suspect=b,
                kind=kind,
                round_id=rng.randrange(10),
                phase=rng.randrange(4),
                view=index // 5,
            )
        )
    return n, f, records


@given(suspicion_streams())
@settings(max_examples=60, deadline=None)
def test_c1_candidates_at_least_n_minus_f(stream):
    n, f, records = stream
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=n, f=f)
    for record in records:
        log.append(record)
    assert len(monitor.K) >= n - f
    assert monitor.u >= 0


@given(suspicion_streams())
@settings(max_examples=40, deadline=None)
def test_monitors_consistent_across_replicas(stream):
    """Two monitors (different replica ids) replaying the same log agree
    on K, u, C and G -- the consistency property of Table 1."""
    n, f, records = stream
    log_a, log_b = AppendOnlyLog(), AppendOnlyLog()
    monitor_a = SuspicionMonitor(0, log_a, n=n, f=f)
    monitor_b = SuspicionMonitor(n - 1, log_b, n=n, f=f)
    for record in records:
        log_a.append(record)
        log_b.append(record)
    assert monitor_a.K == monitor_b.K
    assert monitor_a.u == monitor_b.u
    assert monitor_a.C == monitor_b.C
    assert monitor_a.graph.edges() == monitor_b.graph.edges()


@given(suspicion_streams(), st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_view_advance_never_underflows_candidates(stream, views):
    n, f, records = stream
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=n, f=f, stability_window=3)
    for index, record in enumerate(records):
        log.append(record)
        if index % 3 == 0:
            monitor.advance_view(monitor.current_view + 1)
    for _ in range(views):
        monitor.advance_view(monitor.current_view + 1)
    assert len(monitor.K) >= n - f
    # Aged-out state converges back to the full candidate set eventually.
    for _ in range(200):
        monitor.advance_view(monitor.current_view + 1)
    assert monitor.u == 0


@given(suspicion_streams())
@settings(max_examples=40, deadline=None)
def test_candidates_disjoint_from_crashed(stream):
    n, f, records = stream
    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=n, f=f)
    for record in records:
        log.append(record)
        monitor.advance_view(monitor.current_view + 1)
    assert not (monitor.K & monitor.C)
