"""Tests for the per-replica pipeline wiring (Figs. 1-3)."""

from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import SuspicionKind, SuspicionRecord


def make_pipeline(replica=0, n=7, f=2):
    return OptiLogPipeline(replica, PipelineSettings(n=n, f=f))


def test_components_instantiated_and_share_log():
    pipeline = make_pipeline()
    assert pipeline.latency_monitor.log is pipeline.log
    assert pipeline.suspicion_monitor.log is pipeline.log
    assert pipeline.misbehavior_monitor.log is pipeline.log


def test_reciprocation_wiring_condition_c():
    """A committed suspicion against this replica triggers ⟨False⟩."""
    pipeline = make_pipeline(replica=3)
    incoming = SuspicionRecord(
        reporter=5, suspect=3, kind=SuspicionKind.SLOW, round_id=2
    )
    pipeline.log.append(incoming)
    outgoing = pipeline.app.drain()
    assert len(outgoing) == 1
    assert outgoing[0].kind == SuspicionKind.FALSE
    assert outgoing[0].suspect == 5


def test_no_reciprocation_for_other_targets():
    pipeline = make_pipeline(replica=3)
    pipeline.log.append(
        SuspicionRecord(reporter=5, suspect=6, kind=SuspicionKind.SLOW, round_id=2)
    )
    assert pipeline.app.drain() == []


def test_candidates_track_suspicions():
    pipeline = make_pipeline(replica=0)
    assert len(pipeline.candidates) == 7
    pipeline.log.append(
        SuspicionRecord(reporter=1, suspect=2, kind=SuspicionKind.SLOW, round_id=1)
    )
    assert pipeline.u == 1
    assert len(pipeline.candidates) == 6


def test_advance_view_propagates():
    pipeline = make_pipeline()
    pipeline.log.append(
        SuspicionRecord(
            reporter=1, suspect=2, kind=SuspicionKind.SLOW, round_id=1, view=0
        )
    )
    pipeline.advance_view(5)  # past deadline f+1=3: unreciprocated -> crash
    assert 2 in pipeline.suspicion_monitor.C
    assert pipeline.log.current_view == 5


def test_attach_config_chains_candidate_updates():
    from repro.aware.weights import WeightConfiguration

    pipeline = make_pipeline()

    def search(candidates, u, rng):
        leader = min(candidates)
        vmax = frozenset(sorted(set(range(7)) - {leader})[:4])
        return WeightConfiguration(n=7, f=2, leader=leader, vmax_replicas=vmax)

    pipeline.attach_config(
        search=search,
        score=lambda config: float(config.leader),
        validator=lambda config: True,
    )
    record = pipeline.config_sensor.search_and_propose()
    pipeline.log.append(record)
    assert pipeline.config_monitor.current.leader == 0
    # Suspecting the leader invalidates the configuration via the chained
    # listener (recheck on suspicion-monitor updates).
    pipeline.log.append(
        SuspicionRecord(reporter=3, suspect=0, kind=SuspicionKind.SLOW, round_id=1)
    )
    assert not pipeline.config_monitor.current_is_valid()


def test_deterministic_pipelines_agree():
    """Two replicas' pipelines fed the same records agree on (K, u)."""
    a = make_pipeline(replica=0)
    b = make_pipeline(replica=6)
    records = [
        SuspicionRecord(reporter=1, suspect=2, kind=SuspicionKind.SLOW, round_id=1),
        SuspicionRecord(reporter=2, suspect=1, kind=SuspicionKind.FALSE, round_id=1),
        SuspicionRecord(reporter=3, suspect=4, kind=SuspicionKind.SLOW, round_id=2),
    ]
    for record in records:
        a.log.append(record)
        b.log.append(record)
    assert a.candidates == b.candidates
    assert a.u == b.u
