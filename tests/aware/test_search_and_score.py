"""Tests for Aware's score function and configuration search."""

import math
import random

import numpy as np
import pytest

from repro.aware.score import aware_score, weight_config_round_duration
from repro.aware.search import annealed_weight_search, exhaustive_weight_search
from repro.aware.weights import WeightConfiguration


def test_score_infeasible_outside_candidates(europe21_links):
    config = WeightConfiguration(
        n=21, f=6, leader=0, vmax_replicas=frozenset(range(1, 13))
    )
    candidates = frozenset(range(21)) - {0}
    assert aware_score(europe21_links, config, candidates) == math.inf
    assert aware_score(europe21_links, config) < math.inf


def test_exhaustive_search_returns_best_leader(europe21_links):
    best = exhaustive_weight_search(europe21_links, 21, 6)
    assert best is not None
    best_score = weight_config_round_duration(europe21_links, best)
    # No other leader with the same greedy Vmax strategy does better.
    for leader in range(21):
        other = WeightConfiguration(
            n=21, f=6, leader=leader, vmax_replicas=best.vmax_replicas
        )
        assert best_score <= weight_config_round_duration(europe21_links, other) + 1e-12


def test_exhaustive_search_respects_candidates(europe21_links):
    candidates = frozenset(range(13))
    best = exhaustive_weight_search(europe21_links, 21, 6, candidates=candidates)
    assert best.special_replicas() <= candidates


def test_exhaustive_search_too_few_candidates(europe21_links):
    assert exhaustive_weight_search(
        europe21_links, 21, 6, candidates=frozenset(range(5))
    ) is None


def test_exhaustive_search_deterministic(europe21_links):
    a = exhaustive_weight_search(europe21_links, 21, 6)
    b = exhaustive_weight_search(europe21_links, 21, 6)
    assert a == b


def test_annealed_search_feasible_and_candidate_respecting(europe21_links):
    candidates = frozenset(range(2, 20))
    result = annealed_weight_search(
        europe21_links, 21, 6, candidates=candidates, rng=random.Random(1)
    )
    assert result is not None
    assert result.special_replicas() <= candidates


def test_annealed_close_to_exhaustive(europe21_links):
    exhaustive = exhaustive_weight_search(europe21_links, 21, 6)
    annealed = annealed_weight_search(europe21_links, 21, 6, rng=random.Random(3))
    score_exhaustive = weight_config_round_duration(europe21_links, exhaustive)
    score_annealed = weight_config_round_duration(europe21_links, annealed)
    assert score_annealed <= 1.5 * score_exhaustive


def test_optimized_beats_static_configuration(europe21_links):
    """The Fig. 7 effect: optimization beats the static default config."""
    static = WeightConfiguration(
        n=21, f=6, leader=0, vmax_replicas=frozenset(range(12))
    )
    optimized = exhaustive_weight_search(europe21_links, 21, 6)
    assert weight_config_round_duration(europe21_links, optimized) < (
        weight_config_round_duration(europe21_links, static)
    )
