"""Vectorized/incremental equivalence for the Aware/OptiAware search layer.

Three layers, each pinned bit-exactly against its scalar reference:

* :func:`quorum_formation_times` (the vectorized column scan) vs the
  per-dict :func:`quorum_formation_time` loop, including ties and
  unreachable quorums;
* ``PbftTimeouts.round_duration`` / ``weight_config_round_duration`` vs
  their ``*_scalar`` twins (fig7's simulations consume these values);
* the annealed/exhaustive searches vs the full-scoring reference path.
"""

import math
import random

import numpy as np
import pytest

from repro.aware.score import (
    weight_config_round_duration,
    weight_config_round_duration_scalar,
)
from repro.aware.search import (
    _centrality_order,
    annealed_weight_search,
    exhaustive_weight_search,
)
from repro.aware.weights import WeightConfiguration, WheatParameters
from repro.core.timeouts import (
    PbftTimeouts,
    quorum_formation_time,
    quorum_formation_times,
    uniform_weights,
    weighted_round_duration,
)
from repro.net.deployments import random_world_deployment
from repro.optimize.annealing import AnnealingSchedule


def latency_for(n: int, seed: int = 0):
    deployment = random_world_deployment(n, random.Random(seed + n))
    return deployment.latency.matrix_seconds() / 2.0


def test_quorum_formation_times_bit_equals_scalar():
    rng = np.random.default_rng(7)
    for _ in range(20):
        senders, receivers = 17, 9
        arrivals = rng.uniform(0.0, 1.0, size=(senders, receivers))
        arrivals[rng.uniform(size=arrivals.shape) < 0.1] = math.inf
        # Inject exact ties so the (time, sender) tiebreak is exercised.
        arrivals[3] = arrivals[5]
        weights = rng.uniform(0.5, 2.0, size=senders)
        threshold = float(rng.uniform(1.0, weights.sum()))
        vectorized = quorum_formation_times(arrivals, weights, threshold)
        for column in range(receivers):
            scalar = quorum_formation_time(
                {s: float(arrivals[s, column]) for s in range(senders)},
                {s: float(weights[s]) for s in range(senders)},
                threshold,
            )
            assert vectorized[column] == scalar


def test_quorum_formation_times_unreachable_threshold():
    arrivals = np.array([[0.1], [0.2]])
    weights = np.array([1.0, 1.0])
    assert quorum_formation_times(arrivals, weights, 5.0)[0] == math.inf


@pytest.mark.parametrize("n", [21, 57])
def test_round_duration_bit_equals_scalar(n):
    latency = latency_for(n)
    f = (n - 1) // 3
    params = WheatParameters(n, f)
    rng = random.Random(n)
    for _ in range(5):
        leader = rng.randrange(n)
        vmax = frozenset(rng.sample(range(n), params.vmax_count))
        configuration = WeightConfiguration(
            n=n, f=f, leader=leader, vmax_replicas=vmax
        )
        timeouts = PbftTimeouts(
            latency,
            leader=leader,
            weights=configuration.weights(),
            quorum_weight=configuration.quorum_weight,
        )
        scalar = timeouts.round_duration_scalar()
        assert timeouts.round_duration() == scalar
        assert weight_config_round_duration(latency, configuration) == scalar
        assert weight_config_round_duration_scalar(latency, configuration) == scalar
        assert weighted_round_duration(
            latency, leader, configuration.weight_vector(), configuration.quorum_weight
        ) == scalar


def test_round_duration_uniform_weights_bit_equals_scalar():
    n = 21
    latency = latency_for(n)
    timeouts = PbftTimeouts(
        latency, leader=3, weights=uniform_weights(n), quorum_weight=13
    )
    assert timeouts.round_duration() == timeouts.round_duration_scalar()


def test_accept_send_times_match_scalar_quorum_scan():
    n = 21
    latency = latency_for(n)
    weights = uniform_weights(n)
    timeouts = PbftTimeouts(latency, leader=3, weights=weights, quorum_weight=13)
    for replica in range(n):
        arrivals = {
            writer: timeouts.write_arrival(writer, replica) for writer in range(n)
        }
        assert timeouts.accept_send_time(replica) == quorum_formation_time(
            arrivals, weights, 13
        )


def test_centrality_order_matches_scalar_reference():
    def scalar_order(latency, members):
        def mean_latency(replica):
            others = [latency[replica, other] for other in members if other != replica]
            return float(np.mean(others)) if others else 0.0

        return sorted(members, key=lambda replica: (mean_latency(replica), replica))

    for n, seed in ((21, 0), (57, 1)):
        latency = latency_for(n, seed)
        members = sorted(random.Random(seed).sample(range(n), n - 4))
        assert _centrality_order(latency, members) == scalar_order(latency, members)
    # Degenerate pools.
    latency = latency_for(21)
    assert _centrality_order(latency, [5]) == [5]
    assert _centrality_order(latency, []) == []


def test_weight_vector_matches_weights_dict():
    configuration = WeightConfiguration(
        n=21, f=6, leader=0, vmax_replicas=frozenset(range(3, 15))
    )
    vector = configuration.weight_vector()
    weights = configuration.weights()
    for replica in range(21):
        assert vector[replica] == weights[replica]


@pytest.mark.parametrize("n", [21, 57])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_annealed_search_incremental_matches_full(n, seed):
    latency = latency_for(n)
    f = (n - 1) // 3
    schedule = AnnealingSchedule(iterations=300, initial_temperature=0.05)
    fast = annealed_weight_search(
        latency, n, f, rng=random.Random(seed), schedule=schedule
    )
    slow = annealed_weight_search(
        latency, n, f, rng=random.Random(seed), schedule=schedule, incremental=False
    )
    assert fast == slow


def test_annealed_search_incremental_matches_full_restricted():
    n, f = 57, 18
    latency = latency_for(n)
    candidates = frozenset(range(1, n - 2))
    schedule = AnnealingSchedule(iterations=300, initial_temperature=0.05)
    fast = annealed_weight_search(
        latency, n, f, candidates=candidates, rng=random.Random(4), schedule=schedule
    )
    slow = annealed_weight_search(
        latency,
        n,
        f,
        candidates=candidates,
        rng=random.Random(4),
        schedule=schedule,
        incremental=False,
    )
    assert fast == slow
    assert fast.special_replicas() <= candidates


def test_annealed_search_tight_candidate_pool():
    """Pool == Vmax count: the only mutations are leader moves and the
    'outside empty' no-op; both engines must agree."""
    n, f = 21, 6
    latency = latency_for(n)
    candidates = frozenset(range(12))  # exactly 2f candidates
    schedule = AnnealingSchedule(iterations=120, initial_temperature=0.05)
    fast = annealed_weight_search(
        latency, n, f, candidates=candidates, rng=random.Random(8), schedule=schedule
    )
    slow = annealed_weight_search(
        latency,
        n,
        f,
        candidates=candidates,
        rng=random.Random(8),
        schedule=schedule,
        incremental=False,
    )
    assert fast == slow
    assert fast.vmax_replicas == candidates


def test_exhaustive_search_hoisted_vmax_unchanged():
    """The hoisted leader-independent Vmax set must reproduce the
    reference behaviour: same greedy set for every leader, best leader
    selected on score with first-wins ties."""
    n, f = 21, 6
    latency = latency_for(n)
    best = exhaustive_weight_search(latency, n, f)
    params = WheatParameters(n, f)
    ordered = _centrality_order(latency, list(range(n)))
    assert best.vmax_replicas == frozenset(ordered[: params.vmax_count])
    expected_scores = {
        leader: weight_config_round_duration_scalar(
            latency,
            WeightConfiguration(
                n=n, f=f, leader=leader, vmax_replicas=best.vmax_replicas
            ),
        )
        for leader in range(n)
    }
    assert best.leader == min(expected_scores, key=lambda l: (expected_scores[l], l))
