"""Tests for Wheat's weighting scheme, including quorum intersection."""

import itertools

import pytest

from repro.aware.weights import WeightConfiguration, WheatParameters


def test_parameters_for_minimal_system():
    params = WheatParameters(n=4, f=1)
    assert params.delta_replicas == 0
    assert params.vmax == 1.0  # no spare replicas: plain PBFT
    assert params.quorum_weight == 3


def test_parameters_with_spares():
    params = WheatParameters(n=21, f=6)
    assert params.delta_replicas == 2
    assert params.vmax == pytest.approx(1 + 2 / 6)
    assert params.vmax_count == 12
    assert params.quorum_weight == 2 * (6 + 2) + 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WheatParameters(n=6, f=2)
    with pytest.raises(ValueError):
        WheatParameters(n=4, f=0)


def test_configuration_validates_vmax_count():
    with pytest.raises(ValueError):
        WeightConfiguration(n=7, f=2, leader=0, vmax_replicas=frozenset({1, 2}))
    # n=8, f=2 has one spare replica (Δ=1): Vmax is genuinely heavier.
    config = WeightConfiguration(
        n=8, f=2, leader=0, vmax_replicas=frozenset({1, 2, 3, 4})
    )
    assert config.weight_of(1) > config.weight_of(5)
    # At n=3f+1 (Δ=0), weights degenerate to uniform, as in Wheat.
    flat = WeightConfiguration(
        n=7, f=2, leader=0, vmax_replicas=frozenset({1, 2, 3, 4})
    )
    assert flat.weight_of(1) == flat.weight_of(5)


def test_special_replicas_leader_plus_vmax():
    config = WeightConfiguration(
        n=7, f=2, leader=6, vmax_replicas=frozenset({1, 2, 3, 4})
    )
    assert config.special_replicas() == {6, 1, 2, 3, 4}
    assert config.participants() == frozenset(range(7))


def quorums(config):
    """All minimal-by-inclusion replica sets reaching quorum weight."""
    n = config.n
    weights = config.weights()
    result = []
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(n), size):
            if sum(weights[r] for r in subset) >= config.quorum_weight:
                if not any(set(q) <= set(subset) for q in result):
                    result.append(subset)
    return result


@pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (6, 1), (7, 2)])
def test_quorum_intersection_safety(n, f):
    """Any two weighted quorums intersect in at least f+1 replicas'
    weight beyond what faulty replicas can contribute -- concretely, any
    two quorums share at least one replica outside every f-subset."""
    config = WeightConfiguration(
        n=n, f=f, leader=0, vmax_replicas=frozenset(range(2 * f))
    )
    all_quorums = quorums(config)
    assert all_quorums, "no quorum is reachable"
    for qa, qb in itertools.combinations(all_quorums, 2):
        common = set(qa) & set(qb)
        assert common, f"disjoint quorums {qa} and {qb}"
        # Intersection cannot be covered by any set of f replicas.
        for faulty in itertools.combinations(range(n), f):
            assert not common <= set(faulty), (
                f"quorums {qa}, {qb} intersect only in faulty {faulty}"
            )


def test_fast_quorum_smaller_with_weights():
    """With n > 3f+1, the 2f Vmax replicas + 1 form a quorum -- fewer
    replicas than the unweighted majority quorum (the Wheat win)."""
    n, f = 21, 6
    config = WeightConfiguration(
        n=n, f=f, leader=0, vmax_replicas=frozenset(range(12))
    )
    weights = config.weights()
    fast = list(range(12)) + [12]
    assert sum(weights[r] for r in fast) >= config.quorum_weight
    assert len(fast) == 13
    unweighted_quorum = -(-(n + f + 1) // 2)  # ceil
    assert len(fast) < unweighted_quorum == 14


def test_wire_size_reasonable():
    config = WeightConfiguration(
        n=7, f=2, leader=0, vmax_replicas=frozenset({1, 2, 3, 4})
    )
    assert 0 < config.wire_size < 200
