"""Tests for the OptiAware integration (§5)."""

import math

from repro.aware.optiaware import OptiAware
from repro.core.records import SuspicionKind, SuspicionRecord


def feed_latency(stack: OptiAware, links) -> None:
    from repro.core.records import LatencyVectorRecord

    n = stack.n
    for sender in range(n):
        vector = tuple(float(links[sender, peer]) for peer in range(n))
        stack.pipeline.log.append(LatencyVectorRecord(sender=sender, vector=vector))


def test_search_and_reconfigure_flow(europe21_links):
    stack = OptiAware(0, 21, 6)
    feed_latency(stack, europe21_links)
    record = stack.pipeline.config_sensor.search_and_propose()
    assert record is not None
    stack.pipeline.log.append(record)
    assert stack.current_configuration is not None
    assert stack.current_configuration == record.configuration


def test_suspected_leader_excluded_from_search(europe21_links):
    stack = OptiAware(0, 21, 6)
    feed_latency(stack, europe21_links)
    first = stack.pipeline.config_sensor.search_and_propose()
    stack.pipeline.log.append(first)
    leader = stack.current_configuration.leader
    # Distinct rounds so every suspicion is retained (first-per-round).
    for round_id, reporter in enumerate(r for r in range(21) if r != leader):
        stack.pipeline.log.append(
            SuspicionRecord(
                reporter=reporter, suspect=leader, kind=SuspicionKind.SLOW,
                round_id=round_id,
            )
        )
    assert leader not in stack.candidates
    replacement = stack.pipeline.config_sensor.search_and_propose()
    assert replacement.configuration.leader != leader
    assert leader not in replacement.configuration.special_replicas()


def test_plain_aware_ignores_suspicions(europe21_links):
    stack = OptiAware(0, 21, 6, use_suspicions=False)
    feed_latency(stack, europe21_links)
    first = stack.pipeline.config_sensor.search_and_propose()
    stack.pipeline.log.append(first)
    leader = stack.current_configuration.leader
    for round_id, reporter in enumerate(r for r in range(21) if r != leader):
        stack.pipeline.log.append(
            SuspicionRecord(
                reporter=reporter, suspect=leader, kind=SuspicionKind.SLOW,
                round_id=round_id,
            )
        )
    # Aware's search pool is all replicas: the attacker can stay leader.
    replacement = stack.pipeline.config_sensor.search_and_propose()
    assert replacement.configuration.leader == leader


def test_expected_messages_and_round_duration(europe21_links):
    stack = OptiAware(1, 21, 6)
    feed_latency(stack, europe21_links)
    config = stack.default_configuration()
    expected, d_rnd = stack.expected_messages(config)
    assert 0 < d_rnd < math.inf
    # The quorum-based d_rnd ignores the slowest stragglers, so it sits
    # between the propose delay and the slowest accept delay.
    propose_dm = min(m.d_m for m in expected if m.msg_type == "propose")
    slowest_accept = max(m.d_m for m in expected if m.msg_type == "accept")
    assert propose_dm <= d_rnd <= slowest_accept + 1e-9
    senders = {m.sender for m in expected}
    assert 1 not in senders  # own messages never expected


def test_score_rejects_foreign_configuration_type(europe21_links):
    from repro.tree.topology import TreeConfiguration

    stack = OptiAware(0, 21, 6)
    feed_latency(stack, europe21_links)
    tree = TreeConfiguration.from_layout(range(21))
    assert stack._score(tree) == math.inf
    assert not stack._validate(tree)
