"""Tests for independent-set computation, including hypothesis checks."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.graphs import Graph
from repro.optimize.maxindset import (
    greedy_independent_set,
    independent_set_of_size,
    is_independent_set,
    maximum_independent_set,
)


def star(center: int, leaves) -> Graph:
    graph = Graph()
    for leaf in leaves:
        graph.add_edge(center, leaf)
    return graph


def test_empty_graph():
    assert maximum_independent_set(Graph()) == frozenset()


def test_isolated_vertices_all_selected():
    graph = Graph(vertices=[1, 2, 3])
    assert maximum_independent_set(graph) == {1, 2, 3}


def test_star_excludes_center():
    graph = star(0, range(1, 6))
    assert maximum_independent_set(graph) == {1, 2, 3, 4, 5}


def test_triangle_keeps_one():
    graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
    result = maximum_independent_set(graph)
    assert len(result) == 1
    assert result == {0}  # deterministic lexicographic tie-break


def test_path_graph_alternating():
    graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
    result = maximum_independent_set(graph)
    assert result == {0, 2, 4}


def test_greedy_is_maximal_independent():
    rng = random.Random(3)
    graph = Graph(vertices=range(30))
    for _ in range(60):
        a, b = rng.sample(range(30), 2)
        graph.add_edge(a, b)
    greedy = greedy_independent_set(graph)
    assert is_independent_set(graph, greedy)
    # Maximality: every vertex outside is adjacent to a chosen one.
    for vertex in graph.vertices():
        if vertex not in greedy:
            assert any(graph.has_edge(vertex, chosen) for chosen in greedy)


def test_independent_set_of_size_respects_bound():
    graph = star(0, range(1, 5))
    assert independent_set_of_size(graph, 4) is not None
    assert independent_set_of_size(graph, 5) is None


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), max_size=30)) if pairs else []
    return Graph(vertices=range(n), edges=edges)


@given(random_graphs())
@settings(max_examples=60, deadline=None)
def test_exact_mis_is_independent_and_not_smaller_than_greedy(graph):
    exact = maximum_independent_set(graph)
    greedy = greedy_independent_set(graph)
    assert is_independent_set(graph, exact)
    assert is_independent_set(graph, greedy)
    assert len(exact) >= len(greedy)


@given(random_graphs())
@settings(max_examples=40, deadline=None)
def test_exact_mis_deterministic(graph):
    assert maximum_independent_set(graph) == maximum_independent_set(graph)
