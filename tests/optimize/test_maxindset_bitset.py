"""Bitset MIS solvers pinned bit-for-bit to the set-based references.

The production :func:`maximum_independent_set` / \
:func:`greedy_independent_set` run on int-bitmask adjacency (PR 5); the
pre-bitset implementations are kept as ``*_reference`` twins and these
tests assert exact equality -- same set, including all deterministic
tie-breaks -- across random graph families, plus the mask-level API and
the adjacency-bitmask memoization.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.graphs import Graph
from repro.optimize.maxindset import (
    greedy_independent_set,
    greedy_independent_set_masks,
    greedy_independent_set_reference,
    is_independent_set,
    maximum_independent_set,
    maximum_independent_set_masks,
    maximum_independent_set_reference,
)


def er_graph(n, p, rng, vertex_offset=0):
    graph = Graph(vertices=(v + vertex_offset for v in range(n)))
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                graph.add_edge(a + vertex_offset, b + vertex_offset)
    return graph


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=16))
    pairs = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = draw(st.lists(st.sampled_from(pairs), max_size=40)) if pairs else []
    return Graph(vertices=range(n), edges=edges)


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_exact_bitset_equals_reference(graph):
    assert maximum_independent_set(graph) == maximum_independent_set_reference(
        graph
    )


@given(random_graphs())
@settings(max_examples=80, deadline=None)
def test_greedy_bitset_equals_reference(graph):
    assert greedy_independent_set(graph) == greedy_independent_set_reference(
        graph
    )


def test_equivalence_across_densities_and_sizes():
    """Sweep sparse (component-structured) through dense graphs: the
    component-wise greedy and the pruned Bron-Kerbosch must stay equal
    to the references everywhere."""
    rng = random.Random(7)
    for n in (1, 2, 5, 13, 24, 33, 48):
        for p in (0.02, 0.1, 0.3, 0.5, 0.9):
            graph = er_graph(n, p, rng)
            greedy = greedy_independent_set(graph)
            assert greedy == greedy_independent_set_reference(graph), (n, p)
            assert is_independent_set(graph, greedy)
            if n <= 24:
                exact = maximum_independent_set(graph)
                assert exact == maximum_independent_set_reference(graph), (n, p)
                assert is_independent_set(graph, exact)
                assert len(exact) >= len(greedy)


def test_noncontiguous_vertex_ids():
    """Bit index order is the *sorted vertex* order, so arbitrary ids
    (the monitor excludes crashed/faulty vertices) must round-trip."""
    rng = random.Random(3)
    graph = er_graph(12, 0.4, rng, vertex_offset=100)
    graph.add_vertex(7)  # a small id sorting before the offset block
    assert maximum_independent_set(graph) == maximum_independent_set_reference(
        graph
    )
    assert greedy_independent_set(graph) == greedy_independent_set_reference(
        graph
    )


def test_mask_level_api_matches_graph_level():
    rng = random.Random(11)
    graph = er_graph(18, 0.3, rng)
    vertices, masks = graph.adjacency_bitmasks()
    assert maximum_independent_set_masks(vertices, masks) == (
        maximum_independent_set(graph)
    )
    assert greedy_independent_set_masks(vertices, masks) == (
        greedy_independent_set(graph)
    )


def test_adjacency_bitmasks_shape_and_restriction():
    graph = Graph(edges=[(0, 1), (1, 2), (5, 0)])
    graph.add_vertex(9)
    vertices, masks = graph.adjacency_bitmasks()
    assert vertices == [0, 1, 2, 5, 9]
    index = {v: i for i, v in enumerate(vertices)}
    assert masks[index[0]] == (1 << index[1]) | (1 << index[5])
    assert masks[index[9]] == 0
    # Induced restriction drops edges leaving the kept set.
    kept, kept_masks = graph.adjacency_bitmasks(keep=[0, 1, 9])
    assert kept == [0, 1, 9]
    assert kept_masks == [0b010, 0b001, 0]


def test_adjacency_bitmasks_memo_invalidated_on_mutation():
    graph = Graph(edges=[(0, 1)])
    first = graph.adjacency_bitmasks()
    assert graph.adjacency_bitmasks() is first  # memo hit
    graph.add_edge(1, 2)
    vertices, masks = graph.adjacency_bitmasks()
    assert vertices == [0, 1, 2]
    assert masks == [0b010, 0b101, 0b010]
    graph.remove_edge(0, 1)
    _, masks = graph.adjacency_bitmasks()
    assert masks == [0, 0b100, 0b010]
    graph.remove_vertex(2)
    assert graph.adjacency_bitmasks() == ([0, 1], [0, 0])
    graph.add_edges([(0, 1), (0, 3)])
    vertices, masks = graph.adjacency_bitmasks()
    assert vertices == [0, 1, 3]
    assert masks[0] == 0b110
