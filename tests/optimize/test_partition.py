"""Tests for collaborative (partitioned) configuration search."""

import random

import pytest

from repro.aware.search import exhaustive_weight_search
from repro.aware.score import weight_config_round_duration
from repro.optimize.partition import (
    partition_candidates,
    scatter_search,
    slice_for_replica,
)


def test_partitions_cover_and_are_disjoint():
    candidates = frozenset(range(10))
    slices = partition_candidates(candidates, 3)
    union = frozenset().union(*slices)
    assert union == candidates
    total = sum(len(chunk) for chunk in slices)
    assert total == 10
    assert max(len(c) for c in slices) - min(len(c) for c in slices) <= 1


def test_partitions_deterministic_across_replicas():
    candidates = frozenset({9, 3, 7, 1, 5})
    assert partition_candidates(candidates, 2) == partition_candidates(
        candidates, 2
    )


def test_slice_for_replica_wraps():
    candidates = frozenset(range(6))
    assert slice_for_replica(candidates, 3, 0) == slice_for_replica(
        candidates, 3, 3
    )


def test_invalid_parts_rejected():
    with pytest.raises(ValueError):
        partition_candidates(frozenset({1}), 0)


def test_scatter_search_finds_global_best_leader(europe21_links):
    """Sliced Aware searches: some slice's winner equals the global one."""
    n, f = 21, 6
    candidates = frozenset(range(n))

    def sliced(chunk, full, rng):
        # Restrict the LEADER to the slice; Vmax may use any candidate.
        best, best_score = None, float("inf")
        for leader in sorted(chunk):
            config = exhaustive_weight_search(
                europe21_links, n, f, candidates=full
            )
            config = type(config)(
                n=n, f=f, leader=leader, vmax_replicas=config.vmax_replicas
            )
            score = weight_config_round_duration(europe21_links, config)
            if score < best_score:
                best, best_score = config, score
        return best

    winners = scatter_search(candidates, 4, sliced, random.Random(0))
    assert len(winners) == 4
    global_best = exhaustive_weight_search(europe21_links, n, f)
    global_score = weight_config_round_duration(europe21_links, global_best)
    best_of_winners = min(
        weight_config_round_duration(europe21_links, w) for w in winners
    )
    assert best_of_winners <= global_score * 1.001


def test_empty_slices_skipped():
    winners = scatter_search(
        frozenset({1}), 4, lambda chunk, full, rng: max(chunk), random.Random(0)
    )
    assert winners == [1]
