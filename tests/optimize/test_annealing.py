"""Tests for the simulated-annealing engine."""

import random

from repro.optimize.annealing import AnnealingSchedule, anneal


def quadratic_score(x: float) -> float:
    return (x - 3.0) ** 2


def step_mutate(x: float, rng: random.Random) -> float:
    return x + rng.uniform(-0.5, 0.5)


def test_anneal_minimises_quadratic():
    result = anneal(
        10.0,
        quadratic_score,
        step_mutate,
        random.Random(1),
        AnnealingSchedule(iterations=5000, initial_temperature=1.0),
    )
    assert abs(result.best_state - 3.0) < 0.5
    assert result.best_score < result.initial_score


def test_anneal_deterministic_for_seed():
    schedule = AnnealingSchedule(iterations=500)
    a = anneal(10.0, quadratic_score, step_mutate, random.Random(7), schedule)
    b = anneal(10.0, quadratic_score, step_mutate, random.Random(7), schedule)
    assert a.best_state == b.best_state
    assert a.best_score == b.best_score


def test_infeasible_states_never_accepted():
    def score(x):
        return float("inf") if x > 0 else -x

    def mutate(x, rng):
        return x + rng.uniform(0.0, 1.0)  # pushes towards infeasible

    result = anneal(
        -5.0, score, mutate, random.Random(2), AnnealingSchedule(iterations=200)
    )
    assert result.best_score != float("inf")
    assert result.best_state <= 0


def test_convergence_flag_set_when_cooled():
    schedule = AnnealingSchedule(
        iterations=10_000, initial_temperature=1.0, cooling=0.5, min_temperature=0.1
    )
    result = anneal(0.0, quadratic_score, step_mutate, random.Random(3), schedule)
    assert result.converged
    assert result.iterations_used < 10_000


def test_budget_respected():
    schedule = AnnealingSchedule(iterations=17, cooling=1.0)
    result = anneal(0.0, quadratic_score, step_mutate, random.Random(4), schedule)
    assert result.iterations_used == 17


def test_for_search_time_scales_iterations():
    short = AnnealingSchedule.for_search_time(0.25)
    long = AnnealingSchedule.for_search_time(4.0)
    assert long.iterations == 16 * short.iterations


def test_improvement_metric():
    result = anneal(
        10.0,
        quadratic_score,
        step_mutate,
        random.Random(5),
        AnnealingSchedule(iterations=3000),
    )
    assert 0.0 < result.improvement <= 1.0
