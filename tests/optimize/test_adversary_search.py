"""Adversary synthesis: engine contract, determinism, jobs identity."""

import dataclasses
import json
import random

import pytest

from repro.experiments.attack import ensure_baselines, make_arena
from repro.faults.genome import AdversaryBudget
from repro.optimize import AttackSearchEngine, attack_search
from repro.optimize.adversary import DEFAULT_SCHEDULE
from repro.optimize.annealing import anneal_incremental

BUDGET = AdversaryBudget(max_faulty=6)


@pytest.fixture(scope="module")
def arena():
    arena = make_arena("pbft", duration=2.0, seeds=(0,))
    ensure_baselines(arena)
    return arena


def _schedule(iterations):
    return dataclasses.replace(DEFAULT_SCHEDULE, iterations=iterations)


def test_engine_scores_are_negated_degradation(arena):
    engine = AttackSearchEngine(arena, BUDGET, "latency")
    score = engine.initial_score()
    assert score < 0.0  # finite degradation >= some positive ratio
    genome, evaluation = engine.snapshot()
    assert evaluation["degradation"] == pytest.approx(-score)
    assert engine.evaluations == 1
    assert engine.scenario_runs == len(arena.seeds)


def test_engine_caches_revisited_genomes(arena):
    engine = AttackSearchEngine(arena, BUDGET, "latency")
    engine.initial_score()
    rng = random.Random(5)
    mutation = engine.propose(rng)
    first = engine.delta_score(mutation)
    evals_after_first = engine.evaluations
    assert engine.delta_score(mutation) == first
    assert engine.evaluations == evals_after_first  # cache hit, no rerun


def test_annealed_engine_never_accepts_invalid_states(arena):
    engine = AttackSearchEngine(arena, BUDGET, "latency")
    result = anneal_incremental(engine, random.Random(2), _schedule(12))
    best_genome, best_evaluation = result.best_state
    assert best_evaluation["degradation"] is not None
    assert result.best_score < float("inf")
    specs_victims = best_evaluation["genome"]["victims"]
    assert 0 not in specs_victims


def test_attack_search_is_deterministic(arena):
    kwargs = dict(
        objective="latency", seed=7, restarts=2, schedule=_schedule(4)
    )
    first = attack_search(arena, BUDGET, **kwargs)
    second = attack_search(arena, BUDGET, **kwargs)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_attack_search_jobs_byte_identity_chain_parallel(arena):
    # restarts > 1: the pool shards chains.
    kwargs = dict(
        objective="latency", seed=0, restarts=2, schedule=_schedule(4)
    )
    serial = attack_search(arena, BUDGET, jobs=1, **kwargs)
    pooled = attack_search(arena, BUDGET, jobs=2, **kwargs)
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)


def test_attack_search_jobs_byte_identity_seed_parallel():
    # restarts == 1: the pool shards per-seed evaluations instead.
    arena = make_arena("pbft", duration=2.0, seeds=(0, 1))
    ensure_baselines(arena)
    kwargs = dict(
        objective="latency", seed=0, restarts=1, schedule=_schedule(3)
    )
    serial = attack_search(arena, BUDGET, jobs=1, **kwargs)
    pooled = attack_search(arena, BUDGET, jobs=2, **kwargs)
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)


def test_attack_search_report_shape(arena):
    report = attack_search(
        arena, BUDGET, objective="latency", seed=1, restarts=2,
        schedule=_schedule(4),
    )
    assert report["arena"] == "pbft"
    assert report["budget"]["max_faulty"] == 6
    assert len(report["chains"]) == 2
    assert report["scenario_runs"] == sum(
        chain["scenario_runs"] for chain in report["chains"]
    )
    best = report["best"]
    assert best["degradation"] == max(
        chain["best_degradation"] for chain in report["chains"]
    )
    assert best["evaluation"]["per_seed"]
    assert "liveness" not in best  # per-seed entries carry recovery detail
    for entry in best["evaluation"]["per_seed"]:
        assert "recovered" in entry and "timed_out" in entry
    # Chains start from *different* seed-genome families (restart
    # diversity), visible in their initial degradations or genomes.
    assert report["restarts"] == 2


def test_attack_search_rejects_bad_restarts(arena):
    with pytest.raises(ValueError, match="restarts"):
        attack_search(arena, BUDGET, restarts=0)
