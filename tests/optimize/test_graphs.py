"""Tests for the deterministic graph type."""

import pytest

from repro.optimize.graphs import Graph, ordered_edge, triangles_through_edge


def test_ordered_edge_canonical():
    assert ordered_edge(3, 1) == (1, 3)
    assert ordered_edge(1, 3) == (1, 3)
    with pytest.raises(ValueError):
        ordered_edge(2, 2)


def test_add_edge_creates_vertices():
    graph = Graph()
    graph.add_edge(5, 2)
    assert graph.vertices() == [2, 5]
    assert graph.has_edge(2, 5)
    assert graph.has_edge(5, 2)


def test_edges_sorted_and_unique():
    graph = Graph(edges=[(3, 1), (1, 3), (2, 1)])
    assert graph.edges() == [(1, 2), (1, 3)]
    assert graph.edge_count() == 2


def test_remove_vertex_removes_incident_edges():
    graph = Graph(edges=[(1, 2), (2, 3)])
    graph.remove_vertex(2)
    assert graph.edges() == []
    assert 2 not in graph


def test_remove_edge_keeps_vertices():
    graph = Graph(edges=[(1, 2)])
    graph.remove_edge(1, 2)
    assert graph.vertices() == [1, 2]
    assert not graph.has_edge(1, 2)


def test_subgraph_filters_both_ends():
    graph = Graph(edges=[(1, 2), (2, 3), (3, 4)])
    sub = graph.subgraph([2, 3])
    assert sub.vertices() == [2, 3]
    assert sub.edges() == [(2, 3)]


def test_complement_inverts_adjacency():
    graph = Graph(vertices=[1, 2, 3], edges=[(1, 2)])
    comp = graph.complement()
    assert comp.edges() == [(1, 3), (2, 3)]


def test_degree_and_neighbors_sorted():
    graph = Graph(edges=[(5, 1), (5, 3), (5, 2)])
    assert graph.neighbors(5) == [1, 2, 3]
    assert graph.degree(5) == 3
    assert graph.degree(1) == 1


def test_triangles_through_edge():
    graph = Graph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    assert triangles_through_edge(graph, 1, 2) == {3}
    assert triangles_through_edge(graph, 3, 4) == frozenset()


def test_copy_is_independent():
    graph = Graph(edges=[(1, 2)])
    clone = graph.copy()
    clone.add_edge(2, 3)
    assert not graph.has_edge(2, 3)
