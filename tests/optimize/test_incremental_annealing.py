"""The incremental annealing protocol vs the full-scoring reference.

A toy combinatorial problem (pick a subset of fixed size minimising the
sum of its values) exercised through both paths: the incremental engine
must reproduce the full path's accept/reject sequence, best state and
score exactly, and the checked-reference mode must catch an engine whose
deltas drift.
"""

import math
import random

import pytest

from repro.optimize.annealing import (
    AnnealingSchedule,
    IncrementalSearch,
    anneal,
    anneal_incremental,
)

VALUES = [3.0, 1.5, 4.25, 0.5, 2.75, 6.0, 0.25, 5.5, 1.0, 3.5]
SUBSET_SIZE = 4


def full_score(subset: frozenset) -> float:
    return sum(VALUES[i] for i in sorted(subset))


def full_mutate(subset: frozenset, rng: random.Random) -> frozenset:
    inside = sorted(subset)
    outside = [i for i in range(len(VALUES)) if i not in subset]
    if not outside:
        return subset
    removed = rng.choice(inside)
    added = rng.choice(outside)
    return (subset - {removed}) | {added}


class SubsetEngine(IncrementalSearch):
    """Incremental twin of (full_score, full_mutate)."""

    def __init__(self, initial: frozenset, skew: float = 0.0):
        self.members = sorted(initial)
        self.score = full_score(initial)
        self.skew = skew  # deliberate delta error for the checked mode

    def initial_score(self) -> float:
        return self.score

    def propose(self, rng: random.Random):
        outside = [i for i in range(len(VALUES)) if i not in set(self.members)]
        if not outside:
            return None
        removed = rng.choice(self.members)
        added = rng.choice(outside)
        return (removed, added)

    def delta_score(self, mutation) -> float:
        removed, added = mutation
        # Recompute as the full path would: sum over the sorted candidate
        # subset, so float accumulation order matches exactly.
        candidate = (set(self.members) - {removed}) | {added}
        return full_score(frozenset(candidate)) + self.skew

    def apply(self, mutation) -> None:
        removed, added = mutation
        members = set(self.members)
        members.discard(removed)
        members.add(added)
        self.members = sorted(members)
        self.score = full_score(frozenset(members))

    def revert(self, mutation) -> None:
        pass  # purely-evaluating engine: nothing to undo

    def snapshot(self) -> frozenset:
        return frozenset(self.members)


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_incremental_matches_full_path(seed):
    initial = frozenset(range(SUBSET_SIZE))
    schedule = AnnealingSchedule(iterations=400, initial_temperature=1.0)
    full = anneal(initial, full_score, full_mutate, random.Random(seed), schedule)
    incremental = anneal_incremental(
        SubsetEngine(initial), random.Random(seed), schedule
    )
    assert incremental.best_state == full.best_state
    assert incremental.best_score == full.best_score
    assert incremental.initial_score == full.initial_score
    assert incremental.accepted == full.accepted
    assert incremental.iterations_used == full.iterations_used
    assert incremental.converged == full.converged


def test_incremental_finds_optimum():
    initial = frozenset(range(SUBSET_SIZE))
    result = anneal_incremental(
        SubsetEngine(initial),
        random.Random(3),
        AnnealingSchedule(iterations=2000, initial_temperature=1.0),
    )
    optimum = frozenset(
        sorted(range(len(VALUES)), key=lambda i: VALUES[i])[:SUBSET_SIZE]
    )
    assert result.best_state == optimum
    assert result.best_score == full_score(optimum)


def test_checked_reference_mode_passes_for_honest_engine():
    result = anneal_incremental(
        SubsetEngine(frozenset(range(SUBSET_SIZE))),
        random.Random(5),
        AnnealingSchedule(iterations=200, initial_temperature=1.0),
        check_score=full_score,
    )
    assert result.accepted > 0


def test_checked_reference_mode_catches_drifting_deltas():
    engine = SubsetEngine(frozenset(range(SUBSET_SIZE)), skew=1e-9)
    with pytest.raises(AssertionError, match="diverged"):
        anneal_incremental(
            engine,
            random.Random(5),
            AnnealingSchedule(iterations=200, initial_temperature=1.0),
            check_score=full_score,
        )


def test_no_op_mutation_counts_as_accepted():
    """When propose returns None (mutation falls through), the full path
    re-scores an identical candidate and accepts it; the incremental
    path must count the iteration the same way."""

    class Stuck(IncrementalSearch):
        def initial_score(self):
            return 1.0

        def propose(self, rng):
            rng.random()  # keep the stream moving as a real engine would
            return None

        def delta_score(self, mutation):  # pragma: no cover
            raise AssertionError("must not be called for None mutations")

        def apply(self, mutation):  # pragma: no cover
            raise AssertionError

        def revert(self, mutation):  # pragma: no cover
            raise AssertionError

        def snapshot(self):
            return "stuck"

    result = anneal_incremental(
        Stuck(), random.Random(0), AnnealingSchedule(iterations=50)
    )
    assert result.accepted == 50
    assert result.best_score == 1.0
    assert not math.isinf(result.best_score)
