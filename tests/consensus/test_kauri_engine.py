"""Tests for the Kauri tree engine."""

import random

import pytest

from repro.consensus.kauri import KauriCluster
from repro.faults.delay import DeltaDelayAttack
from repro.tree.topology import TreeConfiguration


def make_cluster(europe21, depth=1, seed=1, tree_seed=3, **kwargs):
    layout = list(range(21))
    random.Random(tree_seed).shuffle(layout)
    tree = TreeConfiguration.from_layout(layout)
    return KauriCluster(europe21, tree, pipeline_depth=depth, seed=seed, **kwargs)


def test_tree_commits_blocks(europe21):
    cluster = make_cluster(europe21)
    metrics = cluster.run(5.0)
    assert metrics.total_requests() > 0


def test_pipelining_multiplies_throughput(europe21):
    single = make_cluster(europe21, depth=1).run(10.0)
    piped = make_cluster(europe21, depth=3).run(10.0)
    ratio = piped.throughput(10.0) / single.throughput(10.0)
    assert 2.0 < ratio < 4.0


def test_tree_latency_above_star(europe21):
    """Four tree hops cost more than the star's two (§7.4's trade-off)."""
    from repro.consensus.hotstuff import HotStuffCluster

    star = HotStuffCluster(europe21, seed=1).run(10.0)
    tree = make_cluster(europe21, depth=1).run(10.0)
    assert tree.mean_latency() > star.mean_latency()


def test_aggregates_flow_through_intermediates(europe21):
    cluster = make_cluster(europe21)
    cluster.run(3.0)
    root = cluster.root_replica
    assert root.committed_height > 0
    # Every vote the root counted came via its intermediates or itself.
    for height, votes in root.root_votes.items():
        assert votes <= set(range(21))


def test_missing_child_votes_become_suspicions(europe21):
    """§6.3: aggregates must carry suspicions for missing votes."""
    cluster = make_cluster(europe21)
    victim = cluster.tree.children[cluster.tree.intermediates[0]][0]
    cluster.network.set_down(victim)
    cluster.run(5.0)
    parent = cluster.replicas[cluster.tree.parent[victim]]
    suspected = {child for _h, child in parent.aggregation_suspicions}
    assert victim in suspected
    # Consensus still lives: q = n - f needs only 15 of 21 votes.
    assert cluster.root_replica.metrics.total_requests() > 0


def test_delta_delay_attack_slows_but_never_suspected(europe21):
    """Delaying every intermediate guarantees the critical path slows;
    fewer attackers may hide in quorum slack (which is Fig. 11's point
    about picking δ)."""
    clean = make_cluster(europe21, depth=1).run(10.0)
    attacked_cluster = make_cluster(europe21, depth=1)
    attackers = list(attacked_cluster.tree.intermediates)
    attacked_cluster.network.add_interceptor(
        DeltaDelayAttack(attackers=attackers, delta=1.4)
    )
    attacked = attacked_cluster.run(10.0)
    assert attacked.throughput(10.0) < clean.throughput(10.0)
    assert attacked.mean_latency() > clean.mean_latency()


def test_install_tree_reconfigures_roles(europe21):
    cluster = make_cluster(europe21)
    cluster.run(2.0)
    layout = list(range(21))
    random.Random(9).shuffle(layout)
    new_tree = TreeConfiguration.from_layout(layout)
    next_height = max(replica.next_height for replica in cluster.replicas)
    for replica in cluster.replicas:
        replica.next_height = next_height
        replica.committed_height = max(replica.committed_height, next_height - 1)
    cluster.install_tree(new_tree)
    cluster.resume()
    cluster.sim.run(until=cluster.sim.now + 3.0)
    cluster.pause()
    new_root = cluster.replicas[new_tree.root]
    assert new_root.committed_height >= next_height
    assert new_root.is_root


def test_tree_change_does_not_recommit_requests(europe21):
    """A new root must not re-propose requests the old root already put
    in flight: committed payload stays bounded by requests sent."""
    import random

    from repro.tree.kauri_reconfig import KauriReconfigurer
    from repro.workloads import OpenLoopWorkload

    reconfigurer = KauriReconfigurer(europe21.n, rng=random.Random(1))
    cluster = KauriCluster(
        europe21, reconfigurer.tree_for_bin(0), pipeline_depth=1, seed=1
    )
    workload = OpenLoopWorkload(rate=50.0)
    cluster.attach_workload(workload)
    cluster.sim.schedule_at(
        5.0, lambda: cluster.install_tree(reconfigurer.tree_for_bin(1))
    )
    cluster.run(10.0)
    total_committed = sum(
        event.payload_count
        for replica in cluster.replicas
        for event in replica.metrics.commits
    )
    assert workload.sent > 0
    assert total_committed <= workload.sent


def test_tree_change_does_not_starve_closed_loop_client(europe21):
    """Requests in flight when the tree changes must be recovered by the
    new root, or a closed-loop client (one outstanding request) would
    deadlock for the rest of the run."""
    import random

    from repro.tree.kauri_reconfig import KauriReconfigurer
    from repro.workloads import ClosedLoopWorkload

    reconfigurer = KauriReconfigurer(europe21.n, rng=random.Random(2))
    cluster = KauriCluster(
        europe21, reconfigurer.tree_for_bin(0), pipeline_depth=1, seed=2
    )
    workload = ClosedLoopWorkload()
    cluster.attach_workload(workload)
    completed_at_switch = {}

    def switch():
        completed_at_switch["n"] = workload.clients[0].completed
        cluster.install_tree(reconfigurer.tree_for_bin(1))

    cluster.sim.schedule_at(5.0, switch)
    cluster.run(12.0)
    assert workload.clients[0].completed > completed_at_switch["n"] + 5
