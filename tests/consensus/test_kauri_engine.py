"""Tests for the Kauri tree engine."""

import random

import pytest

from repro.consensus.kauri import KauriCluster
from repro.faults.delay import DeltaDelayAttack
from repro.tree.topology import TreeConfiguration


def make_cluster(europe21, depth=1, seed=1, tree_seed=3, **kwargs):
    layout = list(range(21))
    random.Random(tree_seed).shuffle(layout)
    tree = TreeConfiguration.from_layout(layout)
    return KauriCluster(europe21, tree, pipeline_depth=depth, seed=seed, **kwargs)


def test_tree_commits_blocks(europe21):
    cluster = make_cluster(europe21)
    metrics = cluster.run(5.0)
    assert metrics.total_requests() > 0


def test_pipelining_multiplies_throughput(europe21):
    single = make_cluster(europe21, depth=1).run(10.0)
    piped = make_cluster(europe21, depth=3).run(10.0)
    ratio = piped.throughput(10.0) / single.throughput(10.0)
    assert 2.0 < ratio < 4.0


def test_tree_latency_above_star(europe21):
    """Four tree hops cost more than the star's two (§7.4's trade-off)."""
    from repro.consensus.hotstuff import HotStuffCluster

    star = HotStuffCluster(europe21, seed=1).run(10.0)
    tree = make_cluster(europe21, depth=1).run(10.0)
    assert tree.mean_latency() > star.mean_latency()


def test_aggregates_flow_through_intermediates(europe21):
    cluster = make_cluster(europe21)
    cluster.run(3.0)
    root = cluster.root_replica
    assert root.committed_height > 0
    # Every vote the root counted came via its intermediates or itself.
    for height, votes in root.root_votes.items():
        assert votes <= set(range(21))


def test_missing_child_votes_become_suspicions(europe21):
    """§6.3: aggregates must carry suspicions for missing votes."""
    cluster = make_cluster(europe21)
    victim = cluster.tree.children[cluster.tree.intermediates[0]][0]
    cluster.network.set_down(victim)
    cluster.run(5.0)
    parent = cluster.replicas[cluster.tree.parent[victim]]
    suspected = {child for _h, child in parent.aggregation_suspicions}
    assert victim in suspected
    # Consensus still lives: q = n - f needs only 15 of 21 votes.
    assert cluster.root_replica.metrics.total_requests() > 0


def test_delta_delay_attack_slows_but_never_suspected(europe21):
    """Delaying every intermediate guarantees the critical path slows;
    fewer attackers may hide in quorum slack (which is Fig. 11's point
    about picking δ)."""
    clean = make_cluster(europe21, depth=1).run(10.0)
    attacked_cluster = make_cluster(europe21, depth=1)
    attackers = list(attacked_cluster.tree.intermediates)
    attacked_cluster.network.add_interceptor(
        DeltaDelayAttack(attackers=attackers, delta=1.4)
    )
    attacked = attacked_cluster.run(10.0)
    assert attacked.throughput(10.0) < clean.throughput(10.0)
    assert attacked.mean_latency() > clean.mean_latency()


def test_install_tree_reconfigures_roles(europe21):
    cluster = make_cluster(europe21)
    cluster.run(2.0)
    layout = list(range(21))
    random.Random(9).shuffle(layout)
    new_tree = TreeConfiguration.from_layout(layout)
    next_height = max(replica.next_height for replica in cluster.replicas)
    for replica in cluster.replicas:
        replica.next_height = next_height
        replica.committed_height = max(replica.committed_height, next_height - 1)
    cluster.install_tree(new_tree)
    cluster.resume()
    cluster.sim.run(until=cluster.sim.now + 3.0)
    cluster.pause()
    new_root = cluster.replicas[new_tree.root]
    assert new_root.committed_height >= next_height
    assert new_root.is_root
