"""Tests for the PBFT engine and its Aware/OptiAware modes."""

import pytest

from repro.consensus.pbft import PbftCluster
from repro.faults.delay import DelayAttack


def test_static_cluster_serves_client(europe21):
    cluster = PbftCluster(europe21, mode="static", seed=1)
    cluster.run(10.0)
    assert len(cluster.client.latencies) > 50
    latencies = [latency for _t, latency in cluster.client.latencies]
    assert max(latencies) < 0.2  # Europe-scale round trips


def test_client_latency_series_buckets(europe21):
    cluster = PbftCluster(europe21, mode="static", seed=1)
    cluster.run(5.0)
    series = cluster.client.latency_series(5.0)
    assert series
    assert all(value > 0 for _t, value in series)


def test_replicas_commit_identical_sequences(europe21):
    cluster = PbftCluster(europe21, mode="static", seed=2)
    cluster.run(5.0)
    reference = None
    for replica in cluster.replicas:
        blocks = [
            replica.preprepares[seq].block.hash
            for seq in sorted(replica.executed)
        ]
        if reference is None:
            reference = blocks
        else:
            prefix = min(len(reference), len(blocks))
            assert blocks[:prefix] == reference[:prefix]


def test_aware_mode_optimizes_configuration(europe21):
    cluster = PbftCluster(europe21, mode="aware", seed=1)
    cluster.schedule_measurements(
        probe_at=1.0, publish_at=3.0, first_search_at=6.0,
        search_period=30.0, horizon=12.0,
    )
    cluster.run(12.0)
    assert cluster.replicas[0].reconfigure_times  # optimized at ~6 s
    leaders = {replica.config.leader for replica in cluster.replicas}
    assert len(leaders) == 1  # all replicas agree on the new leader


def test_optiaware_detects_delay_attack(europe21):
    cluster = PbftCluster(europe21, mode="optiaware", seed=1, delta=1.25)
    cluster.schedule_measurements(
        probe_at=1.0, publish_at=3.0, first_search_at=6.0,
        search_period=6.0, horizon=30.0,
    )

    def launch():
        attack = DelayAttack(
            attacker=cluster.current_leader,
            message_types=("PrePrepare",),
            extra_delay=0.8,
            start=10.0,
            now_fn=lambda: cluster.sim.now,
        )
        cluster.network.add_interceptor(attack)
        cluster.attacker = cluster.current_leader

    cluster.sim.schedule_at(10.0, launch)
    cluster.run(30.0)
    pipeline = cluster.replicas[1].optilog.pipeline
    assert cluster.attacker not in pipeline.candidates
    assert cluster.current_leader != cluster.attacker
    # Latency recovered at the end of the run.
    tail = [lat for t, lat in cluster.client.latencies if t > 25.0]
    assert tail and sum(tail) / len(tail) < 0.2


def test_no_false_suspicions_without_attack(europe21):
    cluster = PbftCluster(europe21, mode="optiaware", seed=1, delta=1.25)
    cluster.schedule_measurements(
        probe_at=1.0, publish_at=3.0, first_search_at=6.0,
        search_period=30.0, horizon=15.0,
    )
    cluster.run(15.0)
    pipeline = cluster.replicas[0].optilog.pipeline
    assert pipeline.u == 0
    assert len(pipeline.candidates) == 21


def test_weighted_quorum_used_in_aware_mode(europe21):
    cluster = PbftCluster(europe21, mode="aware", seed=1)
    replica = cluster.replicas[0]
    assert replica.config.quorum_weight == 2 * (6 + 2) + 1
    cluster_static = PbftCluster(europe21, mode="static", seed=1)
    assert cluster_static.replicas[0]._quorum_weight == 14.0  # ⌈(n+f+1)/2⌉
