"""Tests for the chained HotStuff engine."""

import pytest

from repro.consensus.hotstuff import HotStuffCluster


def test_fixed_leader_commits_blocks(europe21):
    cluster = HotStuffCluster(europe21, leader_mode="fixed", fixed_leader=0, seed=1)
    metrics = cluster.run(5.0)
    assert metrics.total_requests() > 0
    assert metrics.commits[0].height == 1
    # Heights commit in order, gap-free.
    heights = [event.height for event in metrics.commits]
    assert heights == list(range(1, len(heights) + 1))


def test_latency_is_three_chain(europe21):
    """Commit latency ≈ 3 rounds (the 3-chain rule)."""
    cluster = HotStuffCluster(europe21, leader_mode="fixed", fixed_leader=0,
                              seed=1, jitter=0.0)
    metrics = cluster.run(10.0)
    mean_latency = metrics.mean_latency()
    # One round = leader->replica->leader over the quorum boundary.
    round_estimate = mean_latency / 3.0
    assert 0.005 < round_estimate < 0.05


def test_round_robin_rotates_proposers(europe21):
    cluster = HotStuffCluster(europe21, leader_mode="rr", seed=1)
    cluster.run(5.0)
    proposers = {
        block.proposer
        for replica in cluster.replicas
        for block in replica.block_at_height.values()
    }
    assert len(proposers) > 5


def test_throughput_reflects_block_payload(europe21):
    cluster = HotStuffCluster(europe21, payload_per_block=500, seed=1)
    metrics = cluster.run(5.0)
    assert metrics.total_requests() == 500 * len(metrics.commits)


def test_farther_deployment_slower(europe21, global73):
    fast = HotStuffCluster(europe21, seed=1).run(5.0)
    slow = HotStuffCluster(global73, seed=1).run(5.0)
    assert slow.mean_latency() > fast.mean_latency()


def test_safety_no_conflicting_commits(europe21):
    """No two replicas commit different blocks at the same height."""
    cluster = HotStuffCluster(europe21, leader_mode="rr", seed=3)
    cluster.run(5.0)
    by_height = {}
    for replica in cluster.replicas:
        for event in replica.metrics.commits:
            block = replica.block_at_height.get(event.height)
            if block is None:
                continue
            existing = by_height.setdefault(event.height, block.hash)
            assert existing == block.hash, f"fork at height {event.height}"
