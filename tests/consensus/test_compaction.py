"""Replica compaction: O(1) state without observable effect.

``compact(keep)`` prunes per-sequence/height bookkeeping the protocol
can no longer read and swaps the committed/claimed-request generations.
The contract: a run that compacts aggressively at every slice boundary
produces **byte-identical** metrics to one that never compacts, and the
pruned maps actually stay bounded as the run grows.
"""

import json

import pytest

from repro.experiments.runner import Scenario, prepare_scenario, run_scenario

_PROTOCOLS = ["pbft", "hotstuff-rr", "kauri"]


def _scenario(protocol, duration=12.0, seed=2):
    return Scenario(
        protocol=protocol,
        deployment="wonderproxy-4",
        workload="open-loop",
        workload_params=dict(rate=200.0, clients=2),
        duration=duration,
        seed=seed,
    )


def _run_with_compaction(scenario, every=2.0, keep=8):
    result = prepare_scenario(scenario)
    result.cluster.begin()
    sim = result.cluster.sim
    while sim.now < scenario.duration:
        sim.run(until=min(scenario.duration, sim.now + every))
        result.cluster.compact(keep)
    result.run_metrics = result.cluster.finish()
    return result


@pytest.mark.parametrize("protocol", _PROTOCOLS)
def test_compaction_does_not_change_metrics(protocol):
    scenario = _scenario(protocol)
    plain = run_scenario(scenario).to_json()
    compacted = _run_with_compaction(scenario).to_json()
    assert compacted == plain


@pytest.mark.parametrize("protocol", _PROTOCOLS)
def test_compaction_bounds_per_sequence_state(protocol):
    scenario = _scenario(protocol)
    compacted = _run_with_compaction(scenario, keep=8)
    plain = run_scenario(scenario)

    def footprint(cluster):
        total = 0
        for replica in cluster.replicas:
            for attr in (
                "preprepares", "executed", "prepare_weight", "commit_weight",
                "block_at_height", "blocks", "votes", "collections",
                "root_votes", "qc_heights",
            ):
                state = getattr(replica, attr, None)
                if state is not None:
                    total += len(state)
        return total

    bounded = footprint(compacted.cluster)
    unbounded = footprint(plain.cluster)
    # The compacted run's bookkeeping must be a small fraction of the
    # run-length-proportional state the plain run accumulated.
    assert unbounded > 0
    assert bounded < unbounded / 3, (bounded, unbounded)


@pytest.mark.parametrize("protocol", _PROTOCOLS)
def test_compaction_is_idempotent_and_cheap_when_idle(protocol):
    scenario = _scenario(protocol, duration=4.0)
    result = _run_with_compaction(scenario, every=1.0, keep=8)
    # Compacting again after the run must be a no-op on metrics state.
    before = result.to_json()
    result.cluster.compact(8)
    result.cluster.compact(8)
    assert result.to_json() == before


def test_compaction_with_faults_still_invariant():
    from repro.experiments.runner import FaultSpec

    scenario = Scenario(
        protocol="pbft",
        deployment="wonderproxy-4",
        workload="open-loop",
        workload_params=dict(rate=200.0, clients=2),
        duration=12.0,
        seed=4,
        faults=[FaultSpec(kind="crash", start=3.0, end=7.0, attacker=2)],
    )
    plain = run_scenario(scenario).to_json()
    compacted = _run_with_compaction(scenario).to_json()
    assert compacted == plain


def test_generational_gc_requires_interval_above_inflight_horizon():
    # keep=0 would let the two-generation request GC forget keys while
    # duplicates are still in flight; the runner's floor of the commit
    # frontier makes keep>=1 safe.  Document the boundary: aggressive
    # keep values still match the plain run.
    scenario = _scenario("pbft", duration=8.0)
    plain = run_scenario(scenario).to_json()
    assert _run_with_compaction(scenario, every=1.0, keep=1).to_json() == plain
