"""Bulk tally fast paths in the columnar batch handlers.

Wide same-class columns (a round's full vote or ack fanout) take a
set-reduction / ``np.cumsum`` fast path instead of the per-row loop.
The contract is exact equivalence: for any column, the fast path must
leave the replica in the same state, consume the same number of rows
and fire the same quorum action at the same ``sim.now`` as the loop.
These tests run both paths on identically-prepared replicas (the loop
is selected by raising ``_BATCH_TALLY_MIN``) and diff the state.
"""

import random

import pytest

import repro.consensus.hotstuff as hotstuff
import repro.consensus.kauri as kauri
import repro.consensus.pbft as pbft
from repro.consensus.messages import Commit, Prepare, Vote
from repro.net.deployments import random_world_deployment

N = 48


@pytest.fixture
def deployment():
    return random_world_deployment(N, random.Random(7), hierarchical=True)


def both_paths(monkeypatch, build, run):
    """Run ``run`` against a fresh replica with the loop and the fast
    path; return both outcomes."""
    outcomes = []
    for threshold in (1 << 30, 2):
        monkeypatch.setattr(hotstuff, "_BATCH_TALLY_MIN", threshold)
        monkeypatch.setattr(pbft, "_BATCH_TALLY_MIN", threshold)
        monkeypatch.setattr(kauri, "_BATCH_TALLY_MIN", threshold)
        replica = build()
        outcomes.append(run(replica))
    return outcomes


# ----------------------------------------------------------------------
# HotStuff votes
# ----------------------------------------------------------------------
def make_hotstuff(deployment):
    cluster = hotstuff.HotStuffCluster(
        deployment, leader_mode="rr", plane="columnar"
    )
    replica = cluster.replicas[1]  # leader for height 1 proposals = votes for 0
    replica.running = True
    return replica


def hotstuff_state(replica):
    return (
        {h: frozenset(v) for h, v in replica.votes.items()},
        frozenset(replica.qc_heights),
        replica.committed_height,
        replica.sim.now,
    )


def vote_column(height, senders):
    votes = tuple(Vote(height, "h", s) for s in senders)
    times = tuple(0.1 + k * 1e-6 for k in range(len(senders)))
    return tuple(senders), votes, times


def test_hotstuff_subquorum_column_matches_loop(monkeypatch, deployment):
    def run(replica):
        srcs, votes, times = vote_column(0, list(range(replica.quorum - 3)))
        consumed = replica.handle_VoteBatch(srcs, votes, times)
        return consumed, hotstuff_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_hotstuff(deployment), run)
    assert fast == loop


def test_hotstuff_crossing_without_block_matches_loop(monkeypatch, deployment):
    # Quorum crosses but the block is unknown: the loop keeps scanning
    # (every later row re-checks); state must match exactly.
    def run(replica):
        srcs, votes, times = vote_column(0, list(range(N - 1)))
        consumed = replica.handle_VoteBatch(srcs, votes, times)
        return consumed, hotstuff_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_hotstuff(deployment), run)
    assert fast == loop


def test_hotstuff_post_qc_column_matches_loop(monkeypatch, deployment):
    def run(replica):
        replica.qc_heights.add(0)
        srcs, votes, times = vote_column(0, list(range(N - 1)))
        consumed = replica.handle_VoteBatch(srcs, votes, times)
        return consumed, hotstuff_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_hotstuff(deployment), run)
    assert fast == loop


def test_hotstuff_duplicate_voters_fall_back(monkeypatch, deployment):
    # A column with repeated senders cannot use the sliced crossing.
    def run(replica):
        senders = [k % 20 for k in range(40)]
        srcs, votes, times = vote_column(0, senders)
        consumed = replica.handle_VoteBatch(srcs, votes, times)
        return consumed, hotstuff_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_hotstuff(deployment), run)
    assert fast == loop


def test_hotstuff_mixed_heights_fall_back(monkeypatch, deployment):
    def run(replica):
        votes = tuple(
            Vote(k % 2, "h", k) for k in range(40)
        )
        times = tuple(0.1 + k * 1e-6 for k in range(40))
        consumed = replica.handle_VoteBatch(tuple(range(40)), votes, times)
        return consumed, hotstuff_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_hotstuff(deployment), run)
    assert fast == loop


# ----------------------------------------------------------------------
# PBFT acks
# ----------------------------------------------------------------------
def make_pbft(deployment, mode="static"):
    cluster = pbft.PbftCluster(deployment, mode=mode, plane="columnar")
    replica = cluster.replicas[1]
    replica.running = True
    return replica


def pbft_state(replica):
    # Sender accumulators are int bitmasks; ints compare by value, so a
    # plain dict copy captures them exactly.
    return (
        dict(replica.prepare_senders),
        dict(replica.prepare_weight),
        dict(replica.commit_senders),
        dict(replica.commit_weight),
        frozenset(replica.sent_commit),
        frozenset(replica.executed),
        replica.sim.now,
    )


def ack_column(cls, seq, senders):
    messages = tuple(cls(0, seq, "h", s) for s in senders)
    times = tuple(0.2 + k * 1e-6 for k in range(len(senders)))
    return tuple(senders), messages, times


@pytest.mark.parametrize("mode", ["static", "aware"])
def test_pbft_prepare_column_without_preprepare(monkeypatch, deployment, mode):
    # No PrePrepare yet: every row accumulates, nothing fires.
    def run(replica):
        srcs, messages, times = ack_column(Prepare, 5, list(range(2, N)))
        consumed = replica.handle_PrepareBatch(srcs, messages, times)
        return consumed, pbft_state(replica)

    loop, fast = both_paths(
        monkeypatch, lambda: make_pbft(deployment, mode), run
    )
    assert fast == loop


@pytest.mark.parametrize("mode", ["static", "aware"])
def test_pbft_prepare_crossing_matches_loop(monkeypatch, deployment, mode):
    # With the PrePrepare known, the quorum-crossing row broadcasts our
    # Commit and yields; consumed counts and weights must match.
    from repro.consensus.messages import Block, PrePrepare

    def run(replica):
        block = Block(
            height=5,
            proposer=replica.leader,
            parent="p",
            payload_count=1,
            timestamp=0.0,
        )
        replica.preprepares[5] = PrePrepare(
            view=0, seq=5, block=block, timestamp=0.0
        )
        srcs, messages, times = ack_column(Prepare, 5, list(range(2, N)))
        # Match the block hash so the commit can actually fire.
        messages = tuple(
            Prepare(0, 5, block.hash, s) for s in range(2, N)
        )
        consumed = replica.handle_PrepareBatch(srcs, messages, times)
        return consumed, pbft_state(replica)

    loop, fast = both_paths(
        monkeypatch, lambda: make_pbft(deployment, mode), run
    )
    assert fast == loop
    assert 0 < loop[0] < N - 2  # genuinely yielded at the crossing row


def test_pbft_duplicate_senders_fall_back(monkeypatch, deployment):
    def run(replica):
        senders = [2 + (k % 10) for k in range(30)]
        srcs, messages, times = ack_column(Prepare, 5, senders)
        consumed = replica.handle_PrepareBatch(srcs, messages, times)
        return consumed, pbft_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_pbft(deployment), run)
    assert fast == loop


def test_pbft_commit_column_matches_loop(monkeypatch, deployment):
    def run(replica):
        srcs, messages, times = ack_column(Commit, 5, list(range(2, N)))
        consumed = replica.handle_CommitBatch(srcs, messages, times)
        return consumed, pbft_state(replica)

    loop, fast = both_paths(monkeypatch, lambda: make_pbft(deployment), run)
    assert fast == loop


def test_pbft_optiaware_still_shadows_batch_handlers(deployment):
    replica = make_pbft(deployment, mode="optiaware")
    assert replica.handle_PrepareBatch is None
    assert replica.handle_CommitBatch is None


# ----------------------------------------------------------------------
# Kauri child votes
# ----------------------------------------------------------------------
def make_kauri(deployment):
    from repro.tree.topology import TreeConfiguration

    layout = list(range(N))
    random.Random(3).shuffle(layout)
    tree = TreeConfiguration.from_layout(layout)
    cluster = kauri.KauriCluster(deployment, tree, plane="columnar")
    # Pick a real intermediate from the installed tree.
    node = tree.intermediates[0]
    replica = cluster.replicas[node]
    replica.running = True
    return replica


def test_kauri_child_vote_column_matches_loop(monkeypatch, deployment):
    from repro.consensus.kauri import _Collection
    from repro.consensus.messages import Block

    def run(replica):
        block = Block(
            height=3, proposer=replica.tree.root, parent="p",
            payload_count=1, timestamp=0.0,
        )
        replica.collections[3] = _Collection(block)
        children = list(replica._my_children)
        votes = tuple(Vote(3, block.hash, c) for c in children)
        times = tuple(0.3 + k * 1e-6 for k in range(len(children)))
        consumed = replica.handle_VoteBatch(tuple(children), votes, times)
        collection = replica.collections.get(3)
        return consumed, frozenset(collection.votes), collection.sent

    loop, fast = both_paths(monkeypatch, lambda: make_kauri(deployment), run)
    assert fast == loop
