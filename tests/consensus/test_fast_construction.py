"""Arity pins for the ``tuple.__new__`` fast-construction sites.

The hottest allocations (votes, commit events, signatures) bypass the
NamedTuple ``__new__`` wrapper via ``tuple.__new__(cls, (...))``, which
skips arity checking.  These tests freeze the field layouts so adding a
field to one of the classes fails HERE, pointing at the construction
sites that must be updated (hotstuff.py, kauri.py, base.py,
signatures.py), instead of surfacing as a malformed tuple at a distant
receiver.
"""

from repro.consensus.base import CommitEvent
from repro.consensus.messages import Vote
from repro.crypto.signatures import Signature


def test_vote_field_layout_matches_fast_construction_sites():
    assert Vote._fields == ("height", "block_hash", "sender")
    fast = tuple.__new__(Vote, (3, "h", 7))
    assert fast == Vote(height=3, block_hash="h", sender=7)
    assert (fast.height, fast.block_hash, fast.sender) == (3, "h", 7)


def test_commit_event_field_layout_matches_fast_construction_sites():
    assert CommitEvent._fields == (
        "height", "commit_time", "propose_time", "payload_count",
    )
    fast = tuple.__new__(CommitEvent, (5, 2.0, 1.0, 100))
    assert fast == CommitEvent(5, 2.0, 1.0, 100)
    assert fast.latency == 1.0


def test_signature_field_layout_matches_fast_construction_sites():
    assert Signature._fields == ("signer", "digest")
    fast = tuple.__new__(Signature, (2, b"\x01" * 32))
    assert fast == Signature(signer=2, digest=b"\x01" * 32)
    assert fast.wire_size == 64
