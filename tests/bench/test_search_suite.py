"""The ``repro bench --search`` suite: shape, smoke fields, baseline."""

from repro.bench.search import (
    SEARCH_BASELINE,
    format_search_table,
    run_search_suite,
)


def test_quick_search_suite_runs_and_embeds_baseline():
    report = run_search_suite(quick=True)
    assert report["suite"] == "search"
    assert report["quick"] is True
    entries = {record["id"]: record for record in report["entries"]}
    # The quick subset keeps the headline large-n score entry and the
    # fast annealing entries.
    assert "tree-score/n211" in entries
    assert "sa-tree/n57" in entries
    for record in entries.values():
        assert record["wall_seconds"] >= 0.0
        rate = (
            record.get("evals_per_sec")
            or record.get("iterations_per_sec")
            or record.get("leaders_per_sec")
        )
        assert rate > 0.0
        baseline = SEARCH_BASELINE["entries"].get(record["id"])
        if baseline is not None:
            assert record["baseline"] == baseline
            assert record["speedup"] > 0.0


def test_search_results_are_deterministic_smoke_checks():
    """The simulated outcomes (scores, chosen leaders) are fixed by the
    suite seeds -- and must match the recorded pre-refactor behaviour,
    which is the bench-level search-equivalence pin."""
    report = run_search_suite(quick=True)
    for record in report["entries"]:
        baseline = SEARCH_BASELINE["entries"].get(record["id"])
        if baseline is None:
            continue
        for field in ("best_score", "score_checksum", "leader", "accepted"):
            if field in baseline:
                assert record[field] == baseline[field], (record["id"], field)


def test_format_search_table_lists_all_entries():
    report = run_search_suite(quick=True)
    table = format_search_table(report)
    for record in report["entries"]:
        assert record["id"] in table
