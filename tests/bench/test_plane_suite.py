"""The ``repro bench --plane`` suite: shape, equivalence, baseline."""

from repro.bench.plane import (
    SUITE,
    format_plane_table,
    run_plane_suite,
)
from repro.bench.plane_baseline import PLANE_BASELINE
from repro.bench.rebaseline import _pin, _specs


def test_quick_plane_suite_is_equivalent_everywhere():
    report = run_plane_suite(quick=True)
    assert report["suite"] == "plane"
    assert report["quick"] is True
    entries = {record["id"]: record for record in report["entries"]}
    assert set(entries) == {entry.id for entry in SUITE}
    for record in entries.values():
        # The hard acceptance bar: every entry, both planes, identical
        # state traces and delivery counts.
        assert record["trace_equal"] is True, record["id"]
        assert record["deliveries_match"] is True, record["id"]
        assert record["deliveries"] > 0
        assert record["heap_events_columnar"] <= record["heap_events_object"]


def test_steady_entries_meet_event_reduction_bar():
    report = run_plane_suite(quick=True)
    entries = {record["id"]: record for record in report["entries"]}
    # Even at quick scale (n=16, 1 sim-second) the steady-state drain
    # collapses far past the >= 3x acceptance criterion.
    for entry_id in ("hotstuff/n128/steady", "kauri/n128/steady"):
        assert entries[entry_id]["event_reduction"] >= 3.0, entry_id


def test_faulted_entry_falls_back_to_object_path():
    report = run_plane_suite(quick=True)
    entries = {record["id"]: record for record in report["entries"]}
    fallback = entries["fallback/faulted"]
    assert fallback["fallback_active"] is True
    # The fallback runs the literal object path: same heap events.
    assert fallback["heap_events_columnar"] == fallback["heap_events_object"]
    assert fallback["event_reduction"] == 1.0


def test_format_plane_table_lists_all_entries():
    report = run_plane_suite(quick=True)
    table = format_plane_table(report)
    for record in report["entries"]:
        assert record["id"] in table
    assert "DIVERGE" not in table


def test_recorded_baseline_covers_the_suite():
    entries = PLANE_BASELINE["entries"]
    assert set(entries) == {entry.id for entry in SUITE}
    spec = _specs()["plane"]
    for entry_id, record in entries.items():
        # Rebaseline pins exactly the object-plane keys.
        assert set(record) <= set(spec.keys), entry_id
        assert record["heap_events_object"] > 0
        assert record["wall_seconds_object"] > 0.0


def test_pin_selects_keys():
    record = {"id": "x", "a": 1, "b": 2, "baseline": {}, "speedup": 2.0}
    assert _pin(record, ("a", "missing")) == {"a": 1}
    assert _pin(record, None) == {"a": 1, "b": 2}
