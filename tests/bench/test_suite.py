"""Tests for the ``repro bench`` subsystem."""

import json

import pytest

from repro.bench import SUITE, BenchEntry, format_table, run_entry, run_suite, write_report
from repro.bench.baseline import BASELINE


def tiny_entry() -> BenchEntry:
    return BenchEntry(
        id="hotstuff/n4",
        engine="hotstuff",
        protocol="hotstuff-rr",
        n=4,
        workload="saturated",
        duration=2.0,
    )


def test_suite_shape_is_fixed():
    """The trajectory only works if the suite stays comparable run-to-run."""
    ids = [entry.id for entry in SUITE]
    assert len(ids) == len(set(ids)) == 12
    for engine in ("pbft", "hotstuff", "kauri"):
        for n in (4, 32, 128, 256):
            assert f"{engine}/n{n}" in ids


def test_run_entry_reports_measurements_and_baseline():
    record = run_entry(tiny_entry(), repeats=1)
    for key in (
        "id", "events", "wall_seconds", "events_per_sec", "throughput_rps",
        "committed_blocks", "messages_sent", "messages_multicast",
        "peak_queue_depth", "sim_duration",
    ):
        assert key in record
    assert record["events"] > 0
    assert record["peak_queue_depth"] > 0
    assert record["messages_multicast"] > 0
    # The suite id exists in the recorded baseline, so the full-mode
    # record embeds it and reports a speedup ratio.
    assert "hotstuff/n4" in BASELINE["entries"]
    assert record["baseline"] == BASELINE["entries"]["hotstuff/n4"]
    assert record["speedup_events_per_sec"] > 0


def test_quick_mode_restricts_and_caps(monkeypatch):
    ran = []

    def fake_run_entry(entry, quick=False, repeats=3):
        ran.append((entry.id, quick))
        return {"id": entry.id, "n": entry.n}

    import repro.bench.suite as suite_mod

    monkeypatch.setattr(suite_mod, "run_entry", fake_run_entry)
    report = suite_mod.run_suite(quick=True)
    assert report["quick"] is True
    assert all(quick for _eid, quick in ran)
    assert {eid for eid, _ in ran} == {
        entry.id for entry in SUITE if entry.n <= 32
    }


def test_run_suite_rejects_unknown_entry():
    with pytest.raises(ValueError, match="unknown bench entries"):
        run_suite(only=["nope/n1"])


def test_quick_mode_still_runs_explicitly_requested_large_entries(monkeypatch):
    """--quick --entry hotstuff/n128 must run the entry (duration-capped),
    not silently emit an empty report."""
    ran = []

    def fake_run_entry(entry, quick=False, repeats=3):
        ran.append((entry.id, quick))
        return {"id": entry.id, "n": entry.n}

    import repro.bench.suite as suite_mod

    monkeypatch.setattr(suite_mod, "run_entry", fake_run_entry)
    report = suite_mod.run_suite(quick=True, only=["hotstuff/n128"])
    assert ran == [("hotstuff/n128", True)]
    assert len(report["entries"]) == 1


def test_report_round_trips_to_json(tmp_path):
    record = run_entry(tiny_entry(), repeats=1)
    report = {
        "bench_version": 1,
        "quick": False,
        "baseline_note": BASELINE.get("note", ""),
        "entries": [record],
    }
    path = tmp_path / "BENCH_test.json"
    write_report(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["entries"][0]["id"] == "hotstuff/n4"
    assert "speedup" in format_table(loaded) or "entry" in format_table(loaded)


def test_simulated_outcome_is_deterministic_across_repeats():
    """Repeats only differ in wall clock; the simulation itself is seeded."""
    first = run_entry(tiny_entry(), repeats=1)
    second = run_entry(tiny_entry(), repeats=1)
    for key in ("events", "committed_blocks", "messages_sent", "throughput_rps",
                "peak_queue_depth"):
        assert first[key] == second[key]
