"""Scale-suite machinery: subprocess isolation, bounds, report shape.

The real suite entries (n >= 512) are minutes each, so these tests run
the same harness on tiny synthetic entries -- the subprocess spawn,
timeout enforcement, RSS capture and report/ table plumbing are exactly
the code the big entries use.
"""

import pytest

import repro.bench.scale as scale
from repro.bench.all import host_section
from repro.bench.scale import (
    SUITE,
    ScaleEntry,
    format_scale_table,
    run_entry,
    run_scale_suite,
)

TINY = ScaleEntry(
    id="hotstuff/tiny",
    engine="hotstuff",
    protocol="hotstuff-rr",
    n=8,
    workload="saturated",
    duration=3.0,
)


def test_suite_covers_three_engines_at_three_sizes():
    assert {entry.engine for entry in SUITE} == {"hotstuff", "kauri", "pbft"}
    assert {entry.n for entry in SUITE} == {512, 1024, 4096}
    assert len(SUITE) == 9


def test_unknown_entry_rejected():
    with pytest.raises(ValueError, match="unknown scale entries"):
        run_scale_suite(only=["nope/n8"])


def test_run_entry_reports_from_a_fresh_subprocess():
    record = run_entry(TINY)
    assert record["status"] == "ok"
    assert record["deployment"] == "world-8"
    assert record["deliveries"] > 0
    assert record["committed_blocks"] > 0
    assert record["peak_rss_mb"] > 0
    assert record["wall_seconds"] > 0


def test_run_entry_dense_uses_wonderproxy_path():
    record = run_entry(TINY, dense=True)
    assert record["status"] == "ok"
    assert record["deployment"] == "wonderproxy-8"


def test_timeout_is_parent_enforced(monkeypatch):
    monkeypatch.setitem(scale._TIMEOUTS, "hotstuff", 0.05)
    record = run_entry(TINY)
    assert record["status"] == "timeout"
    assert "deliveries" not in record


def test_format_table_handles_partial_records():
    report = {
        "entries": [
            {
                "id": "pbft/n512",
                "n": 512,
                "status": "ok",
                "build_seconds": 1.0,
                "run_seconds": 2.0,
                "deliveries": 1000,
                "deliveries_per_sec": 500.0,
                "peak_rss_mb": 150.0,
                "speedup_deliveries_per_sec": 7.5,
                "rss_vs_dense": 0.4,
            },
            {"id": "pbft/n4096", "n": 4096, "status": "timeout"},
        ]
    }
    table = format_scale_table(report)
    assert "pbft/n512" in table and "7.50x" in table
    assert "timeout" in table


def test_host_section_isolates_scale_rss():
    suites = {
        "scale": {
            "entries": [
                {"id": "pbft/n512", "peak_rss_mb": 150.0},
                {"id": "pbft/n4096", "status": "timeout"},
            ]
        },
        "plane": {"entries": []},
    }
    section = host_section(suites)
    assert section["scale_entry_peak_rss_mb"] == {"pbft/n512": 150.0}
    assert section["bench_process_peak_rss_mb"] > 0
