"""Scale-suite machinery: subprocess isolation, bounds, report shape.

The real suite entries (n >= 512) are minutes each, so these tests run
the same harness on tiny synthetic entries -- the subprocess spawn,
timeout enforcement, RSS capture and report/ table plumbing are exactly
the code the big entries use.
"""

import pytest

import repro.bench.scale as scale
from repro.bench.all import host_section
from repro.bench.scale import (
    SUITE,
    ScaleEntry,
    format_scale_table,
    run_entry,
    run_scale_suite,
)

TINY = ScaleEntry(
    id="hotstuff/tiny",
    engine="hotstuff",
    protocol="hotstuff-rr",
    n=8,
    workload="saturated",
    duration=3.0,
)


def test_suite_covers_three_engines_at_three_sizes():
    assert {entry.engine for entry in SUITE} == {"hotstuff", "kauri", "pbft"}
    assert {entry.n for entry in SUITE} == {512, 1024, 4096, 8192}
    assert len(SUITE) == 12
    # The original nine ids survive unchanged -- SCALE_BASELINE joins on
    # them -- plus the open-loop flood pair and the n=8192 probe.
    ids = [entry.id for entry in SUITE]
    for engine in ("hotstuff", "kauri", "pbft"):
        for n in (512, 1024, 4096):
            assert f"{engine}/n{n}" in ids
    assert "pbft-open/n1024" in ids
    assert "pbft-open/n4096" in ids
    probe = next(entry for entry in SUITE if entry.id == "pbft/n8192")
    assert probe.plane == "columnar-fast"


def test_check_suite_is_jitter_free_check_fast():
    for entry in scale.CHECK_SUITE:
        assert entry.plane == "check-fast"
        assert entry.jitter == 0.0


def test_entry_timeouts_key_on_id_then_engine():
    assert next(e for e in SUITE if e.id == "pbft/n8192").timeout == 900.0
    assert next(e for e in SUITE if e.id == "pbft/n512").timeout == 420.0
    assert TINY.timeout == scale._DEFAULT_TIMEOUT


def test_unknown_entry_rejected():
    with pytest.raises(ValueError, match="unknown scale entries"):
        run_scale_suite(only=["nope/n8"])


def test_run_entry_reports_from_a_fresh_subprocess():
    record = run_entry(TINY)
    assert record["status"] == "ok"
    assert record["deployment"] == "world-8"
    assert record["deliveries"] > 0
    assert record["committed_blocks"] > 0
    assert record["peak_rss_mb"] > 0
    assert record["wall_seconds"] > 0


def test_run_entry_plane_override_runs_the_fast_spine():
    record = run_entry(TINY, plane="columnar-fast")
    assert record["status"] == "ok"
    assert record["plane"] == "columnar-fast"
    assert record["deliveries"] > 0
    assert record["committed_blocks"] > 0


def test_run_entry_check_fast_worker_reports_the_verdict():
    entry = ScaleEntry(
        id="pbft/tiny-check",
        engine="pbft",
        protocol="pbft",
        n=8,
        workload="open-loop",
        duration=1.0,
        plane="check-fast",
        jitter=0.0,
        workload_params=(("rate", 50.0), ("clients", 2)),
    )
    record = run_entry(entry)
    assert record["status"] == "ok"
    assert record["check"] == "passed"
    assert record["deliveries"] > 0


def test_run_entry_dense_uses_wonderproxy_path():
    record = run_entry(TINY, dense=True)
    assert record["status"] == "ok"
    assert record["deployment"] == "wonderproxy-8"


def test_timeout_is_parent_enforced(monkeypatch):
    monkeypatch.setitem(scale._TIMEOUTS, "hotstuff", 0.05)
    record = run_entry(TINY)
    assert record["status"] == "timeout"
    assert "deliveries" not in record


def test_format_table_handles_partial_records():
    report = {
        "entries": [
            {
                "id": "pbft/n512",
                "n": 512,
                "status": "ok",
                "build_seconds": 1.0,
                "run_seconds": 2.0,
                "deliveries": 1000,
                "deliveries_per_sec": 500.0,
                "peak_rss_mb": 150.0,
                "speedup_deliveries_per_sec": 7.5,
                "rss_vs_dense": 0.4,
            },
            {"id": "pbft/n4096", "n": 4096, "status": "timeout"},
        ]
    }
    table = format_scale_table(report)
    assert "pbft/n512" in table and "7.50x" in table
    assert "timeout" in table


def test_host_section_isolates_scale_rss():
    suites = {
        "scale": {
            "entries": [
                {"id": "pbft/n512", "peak_rss_mb": 150.0},
                {"id": "pbft/n4096", "status": "timeout"},
            ]
        },
        "plane": {"entries": []},
    }
    section = host_section(suites)
    assert section["scale_entry_peak_rss_mb"] == {"pbft/n512": 150.0}
    assert section["bench_process_peak_rss_mb"] > 0
