"""Smoke tests for the ``repro bench --metrics`` suite."""

import json

from repro.bench.metrics import (
    _QUICK_SKIP,
    _bench_hist_add,
    _bench_sketch_merge,
    _bench_sketch_observe,
    commit_stream,
    format_metrics_table,
    run_metrics_suite,
    value_stream,
    write_metrics_report,
)
from repro.bench.metrics_baseline import METRICS_BASELINE


def test_streams_are_deterministic():
    assert value_stream("uniform", 100, seed=5) == value_stream(
        "uniform", 100, seed=5
    )
    assert value_stream("heavy-tail", 100, seed=5) != value_stream(
        "heavy-tail", 100, seed=6
    )
    assert commit_stream(50, seed=7) == commit_stream(50, seed=7)
    times = [t for t, _, _ in commit_stream(50, seed=7)]
    assert times == sorted(times)


def test_entries_report_rates_and_smoke_fields():
    record = _bench_hist_add("heavy-tail", repeats=1)
    assert record["values"] > 0
    assert record["values_per_sec"] > 0
    assert record["bin_checksum"] > 0

    observe = _bench_sketch_observe(repeats=1)
    assert observe["requests"] == observe["commits"] * 1000

    merge = _bench_sketch_merge(repeats=1)
    assert merge["blocks"] == merge["shards"] * 2000


def test_quick_suite_runs_and_formats(tmp_path):
    report = run_metrics_suite(quick=True)
    ids = [rec["id"] for rec in report["entries"]]
    assert "hist-add/uniform" in ids
    assert not set(ids) & _QUICK_SKIP
    assert report["suite"] == "metrics"

    table = format_metrics_table(report)
    assert "hist-add/uniform" in table

    path = tmp_path / "report.json"
    write_metrics_report(report, str(path))
    assert json.loads(path.read_text())["suite"] == "metrics"


def test_baseline_is_recorded_and_attached():
    # The recorded baseline must cover the full suite so every entry
    # carries a speedup ratio on non-quick runs.
    entries = METRICS_BASELINE["entries"]
    assert set(entries) == {
        "hist-add/uniform",
        "hist-add/heavy-tail",
        "sketch-observe",
        "sketch-merge/k64",
        "sketch-quantile",
        "state-roundtrip",
        "windows-series",
    }
    report = run_metrics_suite(quick=True)
    for rec in report["entries"]:
        assert "baseline" in rec
        assert "speedup" in rec


def test_smoke_fields_match_recorded_baseline():
    # The deterministic fields double as a behaviour check: a change to
    # the sketch math shows up as a checksum drift against the baseline.
    record = _bench_hist_add("uniform", repeats=1)
    baseline = METRICS_BASELINE["entries"]["hist-add/uniform"]
    assert record["bin_checksum"] == baseline["bin_checksum"]
