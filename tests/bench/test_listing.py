"""``repro bench --list``: the bench-suite registry surface.

The listing must enumerate every registered suite with its CLI flag and
entry ids (so ``--entry`` targets are discoverable), and unknown suite
names must fail loudly naming the known suites -- at both the library
and CLI layer.
"""

import subprocess
import sys

import pytest

from repro.bench.listing import SUITE_FLAGS, format_suite_listing, suite_entries


def _repro(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )


def test_registry_covers_every_flagged_suite():
    registry = suite_entries()
    assert set(registry) == set(SUITE_FLAGS)
    for name, ids in registry.items():
        assert ids, name
        assert len(ids) == len(set(ids)), name


def test_scale_listing_carries_the_new_entries():
    ids = suite_entries()["scale"]
    assert "pbft/n8192" in ids
    assert "pbft-open/n4096" in ids


def test_listing_renders_flags_and_entry_ids():
    text = format_suite_listing()
    for name, flag in SUITE_FLAGS.items():
        assert name in text
        assert flag in text
    assert "  pbft/n4096" in text


def test_listing_filters_to_requested_suites():
    text = format_suite_listing(["scale"])
    assert text.startswith("scale")
    assert "simulator" not in text


def test_unknown_suite_is_loud_and_names_the_registry():
    with pytest.raises(ValueError) as excinfo:
        format_suite_listing(["scale", "bogus"])
    message = str(excinfo.value)
    assert "bogus" in message
    for name in SUITE_FLAGS:
        assert name in message


def test_cli_list_prints_the_registry():
    proc = _repro("bench", "--list")
    assert proc.returncode == 0
    for name in SUITE_FLAGS:
        assert name in proc.stdout
    assert "pbft/n8192" in proc.stdout


def test_cli_unknown_suite_exits_loud():
    proc = _repro("bench", "--list", "bogus")
    assert proc.returncode != 0
    assert "bogus" in proc.stderr
    assert "scale" in proc.stderr
