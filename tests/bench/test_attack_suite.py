"""The ``repro bench --attack`` suite: shape, pins, beats-reference."""

import pytest

from repro.bench.attack import (
    ATTACK_BASELINE,
    _QUICK_SKIP,
    format_attack_table,
    run_attack_suite,
    write_attack_report,
)


@pytest.fixture(scope="module")
def report():
    return run_attack_suite(quick=True)


def test_quick_attack_suite_runs_and_embeds_baseline(report):
    assert report["suite"] == "attack"
    assert report["quick"] is True
    entries = {record["id"]: record for record in report["entries"]}
    assert set(entries) == {"attack-eval/pbft", "attack-search/pbft-quick"}
    assert not set(entries) & _QUICK_SKIP
    for record in entries.values():
        assert record["wall_seconds"] >= 0.0
        assert record["runs_per_sec"] > 0.0
        baseline = ATTACK_BASELINE["entries"].get(record["id"])
        if baseline is not None:
            assert record["baseline"] == baseline
            assert record["speedup"] > 0.0


def test_attack_outcomes_match_recorded_behaviour_pins(report):
    """The simulated outcomes (per-kind degradations, the synthesized
    search result) are fixed by the suite seeds -- a behaviour-changing
    commit must rebaseline, not silently drift."""
    entries = {record["id"]: record for record in report["entries"]}

    evaluated = entries["attack-eval/pbft"]
    baseline_eval = ATTACK_BASELINE["entries"]["attack-eval/pbft"]
    assert evaluated["degradations"] == baseline_eval["degradations"]

    search = entries["attack-search/pbft-quick"]
    baseline_search = ATTACK_BASELINE["entries"]["attack-search/pbft-quick"]
    for field in (
        "synthesized_degradation",
        "best_label",
        "best_reference",
        "references",
        "scenario_runs",
    ):
        assert search[field] == baseline_search[field], field


def test_quick_search_beats_the_best_hand_authored_reference(report):
    # The PR's acceptance criterion, checked at CI size: the synthesized
    # attack strictly exceeds the strongest registry scenario evaluated
    # on the same arena and objective.
    search = next(
        record
        for record in report["entries"]
        if record["id"] == "attack-search/pbft-quick"
    )
    assert search["beats_reference"] is True
    assert search["synthesized_degradation"] > search["best_reference"]
    assert search["best_reference"] == max(search["references"].values())


def test_format_attack_table_lists_all_entries(report):
    table = format_attack_table(report)
    for record in report["entries"]:
        assert record["id"] in table
    assert "yes" in table  # beats_reference rendered


def test_full_suite_baseline_records_both_headline_wins():
    # The recorded full-suite baseline is itself evidence: both the
    # latency headline and the suspicion objective beat their references
    # at record time.  (The full searches are too slow for tier-1; the
    # recorded entries stand in for them.)
    entries = ATTACK_BASELINE["entries"]
    assert entries["attack-search/pbft-f6"]["beats_reference"] is True
    assert entries["attack-search/optiaware-suspicion"]["beats_reference"] is True
    assert entries["attack-search/optiaware-suspicion"]["objective"] == "suspicion"


def test_write_attack_report_round_trips(report, tmp_path):
    import json

    path = tmp_path / "attack.json"
    write_attack_report(report, str(path))
    assert json.loads(path.read_text())["suite"] == "attack"
