"""Smoke tests for the ``repro bench --pipeline`` suite."""

import json

from repro.bench.pipeline import (
    _QUICK_SKIP,
    _bench_log_append,
    _bench_mis,
    _bench_suspicion_entries,
    format_pipeline_table,
    log_record_stream,
    mis_graph_pool,
    run_pipeline_suite,
    suspicion_workload,
    write_pipeline_report,
)
from repro.bench.pipeline_baseline import PIPELINE_BASELINE


def test_suspicion_workload_deterministic():
    first = suspicion_workload(31, 200, seed=11)
    second = suspicion_workload(31, 200, seed=11)
    assert first == second
    assert first != suspicion_workload(31, 200, seed=12)
    tags = {op[0] for op in first}
    assert tags == {"record", "view", "leader"}


def test_log_stream_and_graph_pool_deterministic():
    assert log_record_stream(50, seed=3) == log_record_stream(50, seed=3)
    pool_a = mis_graph_pool(10, 3, seed=23)
    pool_b = mis_graph_pool(10, 3, seed=23)
    assert [g.edges() for g in pool_a] == [g.edges() for g in pool_b]


def test_entry_smoke_fields_match_recorded_baseline():
    """The deterministic fields double as behaviour pins: a fresh replay
    must reproduce the recorded pre-refactor state exactly."""
    baseline = PIPELINE_BASELINE["entries"]["suspicion-entries/n31"]
    record = _bench_suspicion_entries(31, repeats=1)
    for field in ("ops", "candidates", "candidate_sum", "u", "crashed",
                  "edges", "filtered", "active"):
        assert record[field] == baseline[field], field

    mis_baseline = PIPELINE_BASELINE["entries"]["mis-exact/n26"]
    mis_record = _bench_mis("exact", 26, mis_baseline["graphs"], repeats=1)
    assert mis_record["candidate_checksum"] == mis_baseline["candidate_checksum"]

    log_baseline = PIPELINE_BASELINE["entries"]["log-append/plain"]
    log_record = _bench_log_append("plain", repeats=1)
    assert log_record["total_wire_size"] == log_baseline["total_wire_size"]
    assert log_record["histogram"] == log_baseline["histogram"]


def test_batched_entry_uses_append_many_and_matches_plain():
    batched = _bench_log_append("batched", repeats=1)
    plain = _bench_log_append("plain", repeats=1)
    assert batched["total_wire_size"] == plain["total_wire_size"]
    assert batched["histogram"] == plain["histogram"]


def test_quick_suite_report_shape(tmp_path):
    report = run_pipeline_suite(quick=True)
    assert report["suite"] == "pipeline"
    assert report["quick"] is True
    ids = [record["id"] for record in report["entries"]]
    assert "suspicion-entries/n100" in ids
    assert not set(ids) & _QUICK_SKIP
    # Baseline embedding + speedup ratio on entries with recorded rates.
    by_id = {record["id"]: record for record in report["entries"]}
    assert "baseline" in by_id["suspicion-entries/n100"]
    assert by_id["suspicion-entries/n100"]["speedup"] > 0
    table = format_pipeline_table(report)
    assert "suspicion-entries/n100" in table
    path = tmp_path / "report.json"
    write_pipeline_report(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["entries"] == report["entries"]
