"""The unified ``repro bench --rebaseline <suite>`` writer."""

import importlib

import pytest

from repro.bench.rebaseline import _specs, known_suites, rebaseline


def test_known_suites_cover_every_baseline_module():
    assert known_suites() == (
        "attack",
        "metrics",
        "pipeline",
        "plane",
        "scale",
        "search",
        "simulator",
    )


def test_unknown_suite_is_rejected():
    with pytest.raises(ValueError, match="unknown bench suite"):
        rebaseline("rowwise")


def test_specs_point_at_real_modules_and_variables():
    for spec in _specs().values():
        module_name = f"repro.bench.{spec.baseline_file[:-3]}"
        module = importlib.import_module(module_name)
        baseline = getattr(module, spec.variable)
        assert set(baseline) == {"note", "entries"}, spec.name
        # Every recorded entry carries only keys the spec would pin, so
        # a rebaseline run reproduces the module's shape exactly.
        if spec.keys is not None:
            for entry_id, record in baseline["entries"].items():
                assert set(record) <= set(spec.keys), (spec.name, entry_id)
