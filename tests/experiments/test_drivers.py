"""Smoke tests for every figure driver, at reduced scale.

These validate that each driver runs end-to-end and that the *shape* of
its result matches the paper's qualitative claim; the full-scale numbers
live in the benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import fig8, fig9, fig10, fig11, fig12, fig13, fig14
from repro.experiments.tables import format_table


def test_format_table_alignment():
    table = format_table(["a", "b"], [[1, 2.5], ["xx", float("inf")]], title="t")
    lines = table.splitlines()
    assert lines[0] == "t"
    assert "inf" in table


def test_fig8_time_grows_with_n():
    rows = fig8.run(sizes=(4, 10, 16), graphs_per_size=10, seed=1)
    assert rows[0].mean_time_ms < rows[-1].mean_time_ms
    assert all(row.mean_candidates >= 1 for row in rows)


def test_fig8_reports_percentiles_and_stable_candidates():
    rows = fig8.run(sizes=(10, 30), graphs_per_size=8, seed=3)
    for row in rows:
        # Percentiles of per-solve samples bracket sensibly.
        assert 0.0 <= row.p50_time_ms <= row.p95_time_ms
        assert row.mean_time_ms > 0.0
    # Deterministic fields are a pure function of the seed (wall times
    # are not): a second run reproduces them exactly.
    again = fig8.run(sizes=(10, 30), graphs_per_size=8, seed=3)
    assert [(r.n, r.mean_candidates, r.solver) for r in rows] == [
        (r.n, r.mean_candidates, r.solver) for r in again
    ]


def test_fig8_vectorized_generator_matches_scalar_loop():
    """The numpy path must consume rng.random() in the historical
    upper-triangle order -- same seed, same graph."""
    import random as random_mod

    from repro.optimize.graphs import Graph

    def scalar_reference(n, p, rng):
        graph = Graph(vertices=range(n))
        for a in range(n):
            for b in range(a + 1, n):
                if rng.random() < p:
                    graph.add_edge(a, b)
        return graph

    for n in (2, 9, 23):
        vectorized = fig8.random_suspicion_graph(
            n, 0.4, random_mod.Random(n)
        )
        reference = scalar_reference(n, 0.4, random_mod.Random(n))
        assert vectorized.vertices() == reference.vertices()
        assert vectorized.edges() == reference.edges()


def test_fig9_single_cell_runs():
    cell = fig9.run_cell("Europe21", "HotStuff-fixed", duration=3.0, seed=1)
    assert cell.throughput > 0
    assert cell.latency > 0


def test_fig9_optitree_beats_kauri_europe():
    kauri = fig9.run_cell(
        "Europe21", "Kauri (pipeline)", duration=5.0, seed=1,
        search_iterations=2000,
    )
    opti = fig9.run_cell(
        "Europe21", "OptiTree", duration=5.0, seed=1, search_iterations=2000
    )
    assert opti.throughput > kauri.throughput
    assert opti.latency < kauri.latency


def test_fig10_optitree_stays_flat_longer():
    rows = fig10.run(runs=1, max_reconfigs=8, seed=3, sa_iterations=800)
    assert rows[0].optitree <= rows[0].kauri * 1.1
    # OptiTree's final score stays within 2x its initial; Kauri's random
    # trees are consistently worse than OptiTree.
    assert rows[-1].optitree < rows[-1].kauri


def test_fig11_delay_attack_reduces_throughput():
    baseline = fig11.run_cell(0, None, duration=5.0, seed=1, search_iterations=1500)
    attacked = fig11.run_cell(3, 1.4, duration=5.0, seed=1, search_iterations=1500)
    assert attacked.throughput < baseline.throughput
    assert attacked.latency > baseline.latency


def test_fig12_longer_search_never_worse():
    rows = fig12.run(
        sizes=(57,), search_times=(0.25, 4.0), runs=3, seed=2,
        iterations_per_second=2000,
    )
    short = next(r for r in rows if r.search_time == 0.25)
    long = next(r for r in rows if r.search_time == 4.0)
    assert long.mean_score <= short.mean_score * 1.02


def test_fig13_overhead_matches_paper_magnitudes():
    cells = fig13.run()
    extra = fig13.overhead_summary(cells, n=80)
    # Paper: ~270 B for latency+suspicions, ~4.5 KB with proofs.
    assert 150 <= extra["Suspicion+lv"] <= 500
    assert 3000 <= extra["Misbehavior+lv"] <= 6000


def test_fig14_overprovisioning_costs_latency():
    rows = fig14.run(sizes=(91,), u_fractions=(0.05, 0.30), runs=2, seed=1,
                     sa_iterations=1200)
    assert fig14.degradation(rows, 91) > 0.05
