"""Deterministic checkpoint/resume: bit-identity and loud failures.

The contract under test: a run sliced at a checkpoint boundary, saved,
reloaded (in this process or another) and driven to completion produces
**byte-identical** metrics JSON to the uninterrupted run -- per
protocol, and with live fault machinery in flight.  And every way a
checkpoint file can be wrong (truncation, corruption, bad magic, bad
version, a different scenario) fails loudly with
:class:`CheckpointError`, never with a silently different simulation.
"""

import json
import math
import os

import pytest

from repro.experiments.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.experiments.runner import (
    FaultSpec,
    MeasurementPolicy,
    Scenario,
    prepare_scenario,
    run_scenario,
)

_DURATION = 6.0
_CUT = 3.0


def _scenario(protocol, faults=(), **overrides):
    base = dict(
        protocol=protocol,
        deployment="wonderproxy-4",
        workload="open-loop",
        workload_params=dict(rate=120.0, clients=2),
        duration=_DURATION,
        seed=5,
        faults=list(faults),
    )
    base.update(overrides)
    return Scenario(**base)


def _run_sliced_with_checkpoint(scenario, path):
    """Drive to the cut, checkpoint, reload from disk, finish."""
    result = prepare_scenario(scenario)
    result.cluster.begin()
    result.cluster.sim.run(until=_CUT)
    save_checkpoint(path, result)

    restored = load_checkpoint(path, expected_scenario=scenario)
    restored.cluster.sim.run(until=scenario.duration)
    restored.run_metrics = restored.cluster.finish()
    return restored


@pytest.mark.parametrize("protocol", ["pbft", "hotstuff-rr", "kauri"])
def test_resume_is_bit_identical_per_protocol(protocol, tmp_path):
    scenario = _scenario(protocol)
    baseline = run_scenario(scenario).to_json()
    restored = _run_sliced_with_checkpoint(
        scenario, str(tmp_path / f"{protocol}.ckpt")
    )
    assert restored.to_json() == baseline


def test_resume_is_bit_identical_with_faults_in_flight(tmp_path):
    # A crash that is down *at the cut* and a delay attack that outlives
    # it: the fault drivers and their scheduled revivals must survive
    # the pickle round-trip.
    faults = [
        FaultSpec(kind="crash", start=1.0, end=4.5, attacker=2),
        FaultSpec(kind="delay", start=0.5, end=5.5, attacker=1,
                  extra_delay=0.05),
    ]
    scenario = _scenario("pbft", faults=faults)
    baseline = run_scenario(scenario).to_json()
    restored = _run_sliced_with_checkpoint(scenario, str(tmp_path / "f.ckpt"))
    assert restored.to_json() == baseline


def test_resume_is_bit_identical_with_streaming_metrics(tmp_path):
    scenario = _scenario(
        "pbft", measurements=MeasurementPolicy(metrics="sketch")
    )
    baseline = run_scenario(scenario).to_json()
    restored = _run_sliced_with_checkpoint(scenario, str(tmp_path / "s.ckpt"))
    assert restored.to_json() == baseline


def test_checkpoint_at_multiple_cuts_reaches_the_same_end(tmp_path):
    # Checkpointing every slice (and resuming only from the last file)
    # must not perturb the run: save_checkpoint is observation-free.
    scenario = _scenario("hotstuff-rr")
    baseline = run_scenario(scenario).to_json()

    path = str(tmp_path / "multi.ckpt")
    result = prepare_scenario(scenario)
    result.cluster.begin()
    for cut in (1.5, 3.0, 4.5):
        result.cluster.sim.run(until=cut)
        save_checkpoint(path, result)
    restored = load_checkpoint(path, expected_scenario=scenario)
    restored.cluster.sim.run(until=scenario.duration)
    restored.run_metrics = restored.cluster.finish()
    assert restored.to_json() == baseline


# ----------------------------------------------------------------------
# Header metadata
# ----------------------------------------------------------------------
def test_header_records_scenario_and_progress(tmp_path):
    scenario = _scenario("pbft")
    path = str(tmp_path / "h.ckpt")
    result = prepare_scenario(scenario)
    result.cluster.begin()
    result.cluster.sim.run(until=_CUT)
    header = save_checkpoint(path, result, extra={"shard": 3})
    assert header == read_header(path)
    assert header["scenario"] == json.loads(json.dumps(scenario.describe()))
    assert header["sim_now"] == _CUT
    assert header["extra"] == {"shard": 3}
    assert header["events_processed"] > 0
    assert header["pending_events"] > 0


# ----------------------------------------------------------------------
# Failure modes: every bad file is a loud CheckpointError
# ----------------------------------------------------------------------
@pytest.fixture()
def saved_checkpoint(tmp_path):
    scenario = _scenario("pbft")
    path = str(tmp_path / "good.ckpt")
    result = prepare_scenario(scenario)
    result.cluster.begin()
    result.cluster.sim.run(until=_CUT)
    save_checkpoint(path, result)
    return scenario, path


def test_truncated_checkpoint_fails_loudly(saved_checkpoint):
    scenario, path = saved_checkpoint
    blob = open(path, "rb").read()
    for cut in (0, 4, 9, 13, len(blob) // 2, len(blob) - 1):
        with open(path, "wb") as handle:
            handle.write(blob[:cut])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, expected_scenario=scenario)


def test_corrupted_payload_fails_loudly(saved_checkpoint):
    scenario, path = saved_checkpoint
    blob = bytearray(open(path, "rb").read())
    blob[-20] ^= 0xFF  # flip a byte deep in the pickle payload
    with open(path, "wb") as handle:
        handle.write(blob)
    with pytest.raises(CheckpointError, match="sha256|checksum|payload"):
        load_checkpoint(path, expected_scenario=scenario)


def test_bad_magic_fails_loudly(saved_checkpoint):
    scenario, path = saved_checkpoint
    blob = bytearray(open(path, "rb").read())
    blob[0] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint(path, expected_scenario=scenario)


def test_unknown_format_version_fails_loudly(saved_checkpoint):
    scenario, path = saved_checkpoint
    blob = bytearray(open(path, "rb").read())
    blob[8:10] = (99).to_bytes(2, "little")
    with open(path, "wb") as handle:
        handle.write(blob)
    with pytest.raises(CheckpointError, match="v99 unsupported"):
        load_checkpoint(path, expected_scenario=scenario)


def test_trailing_garbage_fails_loudly(saved_checkpoint):
    scenario, path = saved_checkpoint
    with open(path, "ab") as handle:
        handle.write(b"junk")
    with pytest.raises(CheckpointError, match="trailing"):
        load_checkpoint(path, expected_scenario=scenario)


def test_wrong_scenario_is_rejected_with_differing_fields(saved_checkpoint):
    _, path = saved_checkpoint
    other = _scenario("pbft", seed=6)
    with pytest.raises(CheckpointError, match="seed"):
        load_checkpoint(path, expected_scenario=other)
    renamed = _scenario("hotstuff-rr")
    with pytest.raises(CheckpointError):
        load_checkpoint(path, expected_scenario=renamed)


def test_save_is_atomic_no_tmp_left_behind(saved_checkpoint, tmp_path):
    _, path = saved_checkpoint
    leftovers = [
        name for name in os.listdir(os.path.dirname(path)) if ".tmp." in name
    ]
    assert leftovers == []


def test_missing_file_raises_oserror(tmp_path):
    with pytest.raises((CheckpointError, OSError)):
        load_checkpoint(str(tmp_path / "absent.ckpt"))
