"""MeasurementPolicy metrics modes: exact, sketch, check.

``exact`` is the seed behaviour.  ``check`` dual-writes and must be
byte-identical to ``exact`` while verifying the sketch inside its bound.
``sketch`` answers from O(1) state: totals exact, quantiles within the
documented relative error of the exact run.
"""

import json

import pytest

from repro.experiments.runner import (
    METRICS_MODES,
    MeasurementPolicy,
    Scenario,
    run_scenario,
)
from repro.metrics import MetricsSketch


def _scenario(mode=None, **overrides):
    base = dict(
        protocol="pbft",
        deployment="wonderproxy-4",
        workload="open-loop",
        workload_params=dict(rate=150.0, clients=2),
        duration=8.0,
        seed=9,
    )
    if mode is not None:
        base["measurements"] = MeasurementPolicy(metrics=mode)
    base.update(overrides)
    return Scenario(**base)


def test_modes_registry_and_validation():
    assert METRICS_MODES == ("exact", "sketch", "check")
    with pytest.raises(ValueError, match="unknown metrics mode"):
        MeasurementPolicy(metrics="approximate")
    with pytest.raises(ValueError, match="window"):
        MeasurementPolicy(window=0.0)
    with pytest.raises(ValueError, match="bins_per_decade"):
        MeasurementPolicy(bins_per_decade=0)


def test_check_mode_is_byte_identical_to_exact():
    exact = run_scenario(_scenario()).to_json()
    checked_result = run_scenario(_scenario("check"))
    checked = json.loads(checked_result.to_json())
    reference = json.loads(exact)
    # The scenario identity differs (measurements policy is part of the
    # describe()); everything measured must match byte for byte.
    checked.pop("scenario", None)
    reference.pop("scenario", None)
    assert json.dumps(checked, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    )


def test_sketch_mode_matches_exact_within_bound():
    exact = run_scenario(_scenario())
    sketch = run_scenario(_scenario("sketch"))

    assert sketch.run_metrics.streaming is True
    assert (
        sketch.run_metrics.total_requests() == exact.run_metrics.total_requests()
    )
    assert (
        sketch.run_metrics.committed_blocks()
        == exact.run_metrics.committed_blocks()
    )

    bound = sketch.run_metrics.sketch.error_bound()
    exact_summary = exact.run_metrics.latency_summary()
    sketch_summary = sketch.run_metrics.latency_summary()
    for key in ("p50", "p90", "p99"):
        relative = abs(sketch_summary[key] - exact_summary[key]) / exact_summary[key]
        assert relative <= bound, (key, relative, bound)
    assert sketch_summary["mean"] == pytest.approx(
        exact_summary["mean"], rel=1e-9
    )


def test_sketch_mode_is_deterministic():
    first = run_scenario(_scenario("sketch")).to_json()
    second = run_scenario(_scenario("sketch")).to_json()
    assert first == second


def test_sketch_mode_keeps_no_per_request_state():
    result = run_scenario(_scenario("sketch"))
    # The streaming twin holds one sketch, not a commit list.
    assert not hasattr(result.run_metrics, "commits")
    assert isinstance(result.run_metrics.sketch, MetricsSketch)
    # Clients stream too: their latency lists stay empty.
    for client in result.workload.clients:
        assert client.latencies == []


def test_policy_window_and_bins_flow_into_the_sketch():
    scenario = _scenario(
        measurements=MeasurementPolicy(metrics="sketch", window=2.0,
                                       bins_per_decade=40),
    )
    result = run_scenario(scenario)
    sketch = result.run_metrics.sketch
    assert sketch.windows.window == 2.0
    assert sketch.hist.bins_per_decade == 40
    # Series answer only at the recorded granularity.
    assert result.run_metrics.throughput_series(8.0, bucket=2.0)
    with pytest.raises(ValueError, match="window"):
        result.run_metrics.throughput_series(8.0, bucket=1.0)
