"""The scenario registry and its CLI surface.

One registry, three consumers: ``repro scenario --list``, the
unknown-name error, and the adversary-synthesis arenas.  The UX tests
here pin that all three read the same table.
"""

import subprocess
import sys

import pytest

from repro.experiments.attack import ARENA_SOURCES
from repro.experiments.scenarios import (
    ADVERSARIAL_SCENARIOS,
    format_scenario_registry,
    make_scenario,
)


def _repro(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd="/root/repo",
    )


def test_registry_lines_are_sorted_and_described():
    lines = format_scenario_registry().splitlines()
    names = [line.split()[0] for line in lines]
    assert names == sorted(ADVERSARIAL_SCENARIOS)
    for line, name in zip(lines, names):
        description = ADVERSARIAL_SCENARIOS[name][1]
        assert description in line


def test_unknown_name_error_carries_the_registry():
    with pytest.raises(ValueError) as excinfo:
        make_scenario("bogus")
    message = str(excinfo.value)
    assert "unknown scenario 'bogus'" in message
    for name in ADVERSARIAL_SCENARIOS:
        assert name in message


def test_attack_arenas_name_only_registered_scenarios():
    for name, (base, references, _duration) in ARENA_SOURCES.items():
        assert base in ADVERSARIAL_SCENARIOS, name
        for reference in references:
            assert reference in ADVERSARIAL_SCENARIOS, name


def test_cli_list_prints_the_registry():
    proc = _repro("scenario", "--list")
    assert proc.returncode == 0
    assert "available scenarios:" in proc.stdout
    for name in ADVERSARIAL_SCENARIOS:
        assert name in proc.stdout


def test_cli_unknown_name_exits_loud_with_registry():
    proc = _repro("scenario", "does-not-exist")
    assert proc.returncode != 0
    for name in sorted(ADVERSARIAL_SCENARIOS):
        assert name in proc.stderr


def test_cli_missing_name_suggests_list():
    proc = _repro("scenario")
    assert proc.returncode != 0
    assert "--list" in proc.stderr
    assert "partition-heal" in proc.stderr
