"""The campaign plane: slicing, sharding, kill/resume, merged sketches.

A campaign is only trustworthy if the orchestration around the
simulator is invisible: sharding across a process pool, checkpointing
every slice, being killed and resumed -- none of it may change a single
byte of the deterministic report sections.
"""

import json

import pytest

from repro.experiments.campaign import (
    CampaignSpec,
    campaign_to_json,
    run_campaign,
    run_campaign_shard,
)
from repro.experiments.parallel import derive_sweep_seed
from repro.experiments.runner import MeasurementPolicy, Scenario

#: Fields of a shard summary that legitimately depend on *how* the shard
#: was driven (resume point, slice count, which process measured RSS) --
#: everything else must be byte-identical.
_DRIVE_DEPENDENT = ("resumed_from", "slices_run", "peak_rss_kb")


def _scenario(**overrides):
    base = dict(
        protocol="pbft",
        deployment="wonderproxy-4",
        workload="open-loop",
        workload_params=dict(rate=800.0, clients=2),
        duration=1e9,  # campaigns stop on the request target, not time
        seed=3,
    )
    base.update(overrides)
    return Scenario(**base)


def _spec(**overrides):
    base = dict(
        scenario=_scenario(),
        requests=3000,
        checkpoint_every=2.0,
        shards=2,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def _point(spec, shard=0, **overrides):
    point = {
        "shard": shard,
        "scenario": spec.shard_scenario(shard),
        "target": spec.shard_target(shard),
        "checkpoint_every": spec.checkpoint_every,
        "compact_keep": spec.compact_keep,
        "max_slices": spec.max_slices,
        "checkpoint_path": spec.shard_checkpoint_path(shard),
    }
    point.update(overrides)
    return point


def _strip(summary):
    return {k: v for k, v in summary.items() if k not in _DRIVE_DEPENDENT}


# ----------------------------------------------------------------------
# Spec shape
# ----------------------------------------------------------------------
def test_spec_validates_inputs():
    with pytest.raises(ValueError, match="request target"):
        _spec(requests=0)
    with pytest.raises(ValueError, match="checkpoint_every"):
        _spec(checkpoint_every=0.0)
    with pytest.raises(ValueError, match="shards"):
        _spec(shards=0)


def test_shard_targets_split_with_remainder_up_front():
    spec = _spec(requests=10, shards=3)
    targets = [spec.shard_target(shard) for shard in range(3)]
    assert targets == [4, 3, 3]
    assert sum(targets) == 10


def test_shard_scenarios_get_derived_seeds_and_sketch_metrics():
    spec = _spec()
    shard0 = spec.shard_scenario(0)
    shard1 = spec.shard_scenario(1)
    assert shard0.seed == derive_sweep_seed(3, "campaign-shard-0")
    assert shard1.seed == derive_sweep_seed(3, "campaign-shard-1")
    assert shard0.seed != shard1.seed
    # Campaigns default to the O(1)-memory measurement plane.
    assert shard0.measurements.metrics == "sketch"
    assert shard0.name.endswith("/shard0")


def test_explicit_measurement_policy_is_honoured():
    spec = _spec(scenario=_scenario(measurements=MeasurementPolicy(metrics="check")))
    assert spec.shard_scenario(0).measurements.metrics == "check"


# ----------------------------------------------------------------------
# End-to-end report
# ----------------------------------------------------------------------
def test_campaign_reaches_target_and_merges_shards():
    report = run_campaign(_spec())
    merged = report["merged"]
    shards = report["shards"]
    assert len(shards) == 2
    assert merged["committed_requests"] >= report["campaign"]["requests"]
    assert merged["committed_requests"] == sum(
        s["committed_requests"] for s in shards
    )
    # The merged latency summaries come from folded shard sketches.
    assert set(merged["commit_latency"]) == {"mean", "p50", "p90", "p99"}
    assert set(merged["client_latency"]) == {"mean", "p50", "p90", "p99"}
    for summary in shards:
        assert summary["committed_requests"] >= summary["requests_target"]
        assert "underrun" not in summary
        # Sketch states are folded then dropped from the report.
        assert "commit_sketch" not in summary
        assert "peak_rss_kb" not in summary
    assert report["host"]["peak_rss_kb"] > 0
    assert len(report["host"]["shard_peak_rss_kb"]) == 2
    # The whole report is JSON-serialisable as produced.
    json.loads(campaign_to_json(report))


def test_campaign_jobs_identity_outside_host_section():
    serial = run_campaign(_spec(), jobs=1)
    pooled = run_campaign(_spec(), jobs=2)
    serial.pop("host")
    pooled.pop("host")
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)


def test_campaign_underrun_is_loud_not_silent():
    # One slice of a tiny run cannot reach the target: the summary says so.
    spec = _spec(shards=1, max_slices=1)
    summary = run_campaign_shard(_point(spec))
    assert summary["underrun"] is True
    assert summary["committed_requests"] < summary["requests_target"]


# ----------------------------------------------------------------------
# Kill / resume
# ----------------------------------------------------------------------
def test_killed_shard_resumes_bit_identically(tmp_path):
    spec = _spec(shards=1, checkpoint_dir=str(tmp_path))

    # The uninterrupted reference (no checkpoint file involved).
    baseline = run_campaign_shard(_point(spec, checkpoint_path=None))

    # "Kill" after one slice: the checkpoint file is all that survives.
    partial = run_campaign_shard(_point(spec, max_slices=1))
    assert partial["underrun"] is True

    resumed = run_campaign_shard(_point(spec))
    assert resumed["resumed_from"] == spec.checkpoint_every
    assert "underrun" not in resumed
    assert _strip(resumed) == _strip(baseline)


def test_synthesized_faults_resume_bit_identically(tmp_path):
    # A campaign slice carrying a *synthesized* fault schedule (compiled
    # from an AttackGenome, not hand-authored) must checkpoint/resume
    # exactly like a fault-free one: kill after one slice, resume, and
    # land byte-identical to the uninterrupted run.
    from repro.faults.genome import (
        AdversaryBudget,
        ArenaProfile,
        AttackGenome,
        AttackMove,
        compile_genome,
    )

    genome = AttackGenome(
        victims=(2, 3),
        moves=(
            AttackMove(kind="stealth", start=0, end=32),
            AttackMove(kind="crash", start=8, end=20, victim=1),
        ),
    )
    faults = compile_genome(
        genome,
        AdversaryBudget(max_faulty=2),
        ArenaProfile(n=4, family="pbft", duration=6.0),
    )
    spec = _spec(
        scenario=_scenario(faults=faults),
        shards=1,
        checkpoint_dir=str(tmp_path),
    )

    baseline = run_campaign_shard(_point(spec, checkpoint_path=None))

    partial = run_campaign_shard(_point(spec, max_slices=1))
    assert partial["underrun"] is True

    resumed = run_campaign_shard(_point(spec))
    assert resumed["resumed_from"] == spec.checkpoint_every
    assert _strip(resumed) == _strip(baseline)


def test_resumed_campaign_report_matches_uninterrupted(tmp_path):
    # Same thing one level up: a full run_campaign killed mid-flight
    # (max_slices=1) and re-invoked lands on the uninterrupted report.
    uninterrupted = run_campaign(_spec())
    interrupted_spec = _spec(
        checkpoint_dir=str(tmp_path), max_slices=1
    )
    run_campaign(interrupted_spec)  # dies underrun, leaves checkpoints
    final = run_campaign(_spec(checkpoint_dir=str(tmp_path)))

    assert (
        json.dumps(uninterrupted["merged"], sort_keys=True)
        == json.dumps(final["merged"], sort_keys=True)
    )
    for before, after in zip(uninterrupted["shards"], final["shards"]):
        assert after["resumed_from"] == interrupted_spec.checkpoint_every
        assert _strip(after) == _strip(before)


def test_lazy_delay_provider_slice_resumes_bit_identically(tmp_path, monkeypatch):
    # The n=4096 memory diet swaps the eager nested-list delay provider
    # for the matrix-backed _LazyOneWay past EAGER_ROWS_MAX_N; its
    # __getstate__ drops the row LRU, which a resumed slice rebuilds on
    # demand.  Force every deployment onto the lazy provider and pin
    # that a killed campaign slice still resumes byte-identical to the
    # uninterrupted run -- the checkpoint gap would otherwise only show
    # at n > 512, far outside test budgets.
    from repro.net import latency_model
    from repro.net.latency_model import _LazyOneWay

    monkeypatch.setattr(latency_model, "EAGER_ROWS_MAX_N", 0)
    spec = _spec(shards=1, checkpoint_dir=str(tmp_path))
    assert isinstance(
        spec.shard_scenario(0), Scenario
    )  # sanity: scenario construction untouched by the patch

    baseline = run_campaign_shard(_point(spec, checkpoint_path=None))

    partial = run_campaign_shard(_point(spec, max_slices=1))
    assert partial["underrun"] is True

    resumed = run_campaign_shard(_point(spec))
    assert resumed["resumed_from"] == spec.checkpoint_every
    assert _strip(resumed) == _strip(baseline)

    # The patched threshold really did route through the lazy provider.
    from repro.experiments.runner import resolve_deployment

    assert isinstance(resolve_deployment("wonderproxy-4").one_way, _LazyOneWay)
