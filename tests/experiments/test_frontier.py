"""Robustness frontiers: axes, budgets, point/reference shape."""

import dataclasses
import json

import pytest

from repro.experiments.frontier import (
    FRONTIER_AXES,
    budget_at,
    format_frontier_table,
    run_frontier,
    write_frontier,
)
from repro.experiments.parallel import derive_sweep_seed
from repro.faults.genome import AdversaryBudget
from repro.optimize.adversary import DEFAULT_SCHEDULE

_QUICK = dict(
    duration=2.0,
    seeds=(0,),
    levels=(1, 3),
    restarts=1,
    schedule=dataclasses.replace(DEFAULT_SCHEDULE, iterations=3),
)


def test_budget_at_dials_one_axis():
    assert budget_at("faulty", 6).max_faulty == 6
    assert budget_at("delta", 1.5).delta == 1.5
    # Other axes keep the base values.
    base = AdversaryBudget(max_moves=2)
    assert budget_at("faulty", 1, base).max_moves == 2
    with pytest.raises(ValueError, match="unknown frontier axis"):
        budget_at("bandwidth", 3)


def test_unknown_axis_is_loud():
    with pytest.raises(ValueError, match="unknown frontier axis"):
        run_frontier(axis="bandwidth")


def test_default_levels_come_from_the_axis_table():
    assert FRONTIER_AXES["faulty"] == (1, 3, 6)
    assert FRONTIER_AXES["delta"] == (1.0, 1.25, 1.5)


@pytest.fixture(scope="module")
def report():
    return run_frontier("pbft", "latency", axis="faulty", seed=0, **_QUICK)


def test_frontier_points_and_references_shape(report):
    assert report["axis"] == "faulty"
    assert report["levels"] == [1, 3]
    assert [point["level"] for point in report["points"]] == [1, 3]
    for point in report["points"]:
        assert point["budget"]["max_faulty"] == point["level"]
        assert point["degradation"] >= 1.0
        assert point["label"].startswith("genome ")
    # Hand-authored scenarios ride along as reference rows.
    names = [ref["name"] for ref in report["references"]]
    assert names == ["partition-heal", "lossy-wan"]
    assert report["best_reference"] == max(
        ref["degradation"] for ref in report["references"]
    )
    assert report["scenario_runs"] == sum(
        point["scenario_runs"] for point in report["points"]
    )


def test_frontier_jobs_byte_identity(report):
    pooled = run_frontier(
        "pbft", "latency", axis="faulty", seed=0, jobs=2, **_QUICK
    )
    assert json.dumps(pooled, sort_keys=True) == json.dumps(
        report, sort_keys=True
    )


def test_frontier_point_seeds_are_level_local(report):
    # Each point derives its search seed from the axis label, so the
    # f=1 point of a (1, 3) sweep equals the f=1 point of a (1,) sweep.
    assert derive_sweep_seed(0, "frontier-faulty-1") != derive_sweep_seed(
        0, "frontier-faulty-3"
    )
    solo = run_frontier("pbft", "latency", axis="faulty", seed=0, **{
        **_QUICK, "levels": (1,)
    })
    assert json.dumps(solo["points"][0], sort_keys=True) == json.dumps(
        report["points"][0], sort_keys=True
    )


def test_frontier_table_and_json_round_trip(report, tmp_path):
    table = format_frontier_table(report)
    assert "robustness frontier" in table
    assert "hand-authored reference points:" in table
    assert "faulty=1" in table
    path = tmp_path / "frontier.json"
    write_frontier(report, str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(report, sort_keys=True)
    )
