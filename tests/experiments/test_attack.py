"""The attack objective: arenas, baselines, censoring, references."""

import json

import pytest

from repro.experiments.attack import (
    ARENA_SOURCES,
    best_reference_degradation,
    ensure_baselines,
    evaluate_attack,
    evaluate_genome,
    make_arena,
    reference_attacks,
)
from repro.experiments.runner import FaultSpec
from repro.faults.genome import AdversaryBudget, AttackGenome, AttackMove

#: One small arena shared by the module: n=21 pbft at a short duration.
DURATION = 3.0


@pytest.fixture(scope="module")
def arena():
    arena = make_arena("pbft", duration=DURATION, seeds=(0, 1))
    ensure_baselines(arena)
    return arena


def test_unknown_arena_is_loud():
    with pytest.raises(ValueError, match="unknown arena"):
        make_arena("paxos")


def test_arena_bases_strip_faults_and_fill_baselines(arena):
    assert arena.base.faults == []
    assert arena.profile.n == 21
    assert set(arena.baselines) == {0, 1}
    for stats in arena.baselines.values():
        assert stats["blocks"] > 0
        assert stats["mean_latency"] > 0
    assert arena.max_events == arena.max_events_factor * max(
        int(stats["events"]) for stats in arena.baselines.values()
    )


def test_harmless_attack_scores_near_unity(arena):
    # An empty schedule is the baseline run itself: degradation 1.0.
    result = evaluate_attack(arena, [], (), "latency")
    assert result["degradation"] == pytest.approx(1.0)
    for entry in result["per_seed"]:
        assert entry["recovered"] is True
        assert entry["timed_out"] is False
        assert entry["committed_ratio"] == pytest.approx(1.0)


def test_liveness_kill_scores_finite_and_reports_degradation(arena):
    # Partition the cluster below quorum for the whole run: nothing can
    # commit, yet the censored metric stays finite and the per-seed
    # entries say exactly what happened (graceful degradation, not a
    # hang or a div-zero).
    groups = (tuple(range(1, 8)), (0,) + tuple(range(8, 21)))
    spec = FaultSpec(
        kind="partition", start=0.0, end=DURATION, params={"groups": groups}
    )
    result = evaluate_attack(arena, [spec], groups[0], "latency")
    assert result["degradation"] > 1.0
    assert result["degradation"] < float("inf")
    for entry in result["per_seed"]:
        assert entry["blocks"] < entry["baseline_blocks"]
        assert entry["censored_latency"] <= DURATION


def test_worst_of_seeds_is_the_minimum(arena):
    spec = FaultSpec(
        kind="loss",
        start=0.0,
        end=DURATION,
        params={"rate": 0.05, "senders": (18, 19, 20)},
    )
    result = evaluate_attack(arena, [spec], (18, 19, 20), "latency")
    per_seed = [entry["degradation"] for entry in result["per_seed"]]
    assert result["degradation"] == min(per_seed)


def test_evaluation_is_deterministic_and_jobs_identical(arena):
    genome = AttackGenome(
        victims=(18, 19, 20),
        moves=(AttackMove(kind="stealth"), AttackMove(kind="crash", start=8, end=16)),
    )
    budget = AdversaryBudget()
    serial = evaluate_genome(arena, budget, "latency", genome, jobs=1)
    again = evaluate_genome(arena, budget, "latency", genome, jobs=1)
    pooled = evaluate_genome(arena, budget, "latency", genome, jobs=2)
    assert json.dumps(serial, sort_keys=True) == json.dumps(again, sort_keys=True)
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)


def test_invalid_genome_reports_invalid_not_crash(arena):
    over = AttackGenome(
        victims=tuple(range(14, 21)), moves=(AttackMove(kind="stealth"),)
    )
    result = evaluate_genome(arena, AdversaryBudget(), "latency", over)
    assert result["degradation"] is None
    assert "max_faulty" in result["invalid"]


def test_suspicion_objective_needs_optilog(arena):
    with pytest.raises(ValueError, match="OptiAware"):
        evaluate_attack(arena, [], (), "suspicion")
    with pytest.raises(ValueError, match="unknown objective"):
        evaluate_attack(arena, [], (), "throughput")


def test_references_rebuild_on_arena_ground(arena):
    refs = reference_attacks(arena)
    assert [name for name, _faults, _victims in refs] == list(arena.references)
    for _name, faults, victims in refs:
        # Reference schedules scale to the arena duration.
        assert all(spec.start <= DURATION for spec in faults)
        assert all(0 <= v < arena.profile.n for v in victims)
    # Every registered arena names only registered scenarios.
    for name, (base, references, _duration) in ARENA_SOURCES.items():
        assert base in references or base not in references  # shape only
        assert isinstance(references, tuple) and references


def test_best_reference_degradation_picks_max():
    refs = [
        {"degradation": 1.5},
        {"degradation": None},
        {"degradation": 4.0},
    ]
    assert best_reference_degradation(refs) == 4.0
    assert best_reference_degradation([{"degradation": None}]) is None
