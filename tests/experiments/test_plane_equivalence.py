"""Scenario-level message-plane equivalence: object vs columnar.

The refactor's acceptance bar: for every protocol family, a scenario
run on the columnar plane is **bit-identical** to the object plane --
same metrics JSON (minus the plane tag itself), same
:func:`~repro.experiments.trace.state_trace_hash`.  ``plane='check'``
runs both and raises :class:`PlaneDivergence` on the first difference;
faulted scenarios silently fall back to the object plane; checkpoint
resume composes with the columnar plane (satellite: interceptors in
flight across a checkpoint cut).
"""

import json

import pytest

from repro.experiments.checkpoint import load_checkpoint, save_checkpoint
from repro.experiments.runner import (
    FaultSpec,
    PlaneDivergence,
    Scenario,
    prepare_scenario,
    run_scenario,
)
from repro.experiments.trace import state_trace_hash

_PROTOCOLS = ["pbft", "pbft-optiaware", "hotstuff-rr", "kauri"]


def _scenario(protocol, **overrides):
    base = dict(
        protocol=protocol,
        deployment="wonderproxy-7",
        workload="open-loop",
        workload_params=dict(rate=120.0, clients=2),
        duration=4.0,
        seed=5,
    )
    base.update(overrides)
    return Scenario(**base)


def _comparable(result):
    metrics = result.metrics()
    metrics["scenario"].pop("plane", None)
    return json.dumps(metrics, sort_keys=True)


@pytest.mark.parametrize("protocol", _PROTOCOLS)
def test_columnar_plane_is_bit_identical(protocol):
    object_result = run_scenario(_scenario(protocol, plane="object"))
    columnar_result = run_scenario(_scenario(protocol, plane="columnar"))
    assert _comparable(columnar_result) == _comparable(object_result)
    assert state_trace_hash(columnar_result.cluster) == state_trace_hash(
        object_result.cluster
    )


def test_check_mode_runs_both_planes_and_returns():
    scenario = _scenario("hotstuff-rr", plane="check")
    result = run_scenario(scenario)
    assert result.scenario is scenario
    assert result.scenario.describe()["plane"] == "check"
    # The returned cluster is the columnar twin.
    assert result.cluster.network.plane == "columnar"


def test_check_mode_raises_on_divergence(monkeypatch):
    from repro.experiments import trace as trace_mod

    hashes = iter(["aaa", "bbb"])
    monkeypatch.setattr(
        trace_mod, "state_trace_hash", lambda cluster: next(hashes)
    )
    with pytest.raises(PlaneDivergence, match="state-trace hash"):
        run_scenario(_scenario("pbft", duration=1.0, plane="check"))


def test_check_mode_rejects_workload_instances():
    from repro.workloads import make_workload

    scenario = _scenario("pbft", plane="check")
    scenario.workload = make_workload("open-loop", rate=120.0, clients=2)
    scenario.workload_params = {}
    with pytest.raises(ValueError, match="named workload"):
        run_scenario(scenario)


def test_unknown_plane_is_rejected():
    with pytest.raises(ValueError, match="unknown message plane"):
        _scenario("pbft", plane="rowwise")


def test_prepare_rejects_check_plane():
    with pytest.raises(ValueError, match="run_scenario"):
        prepare_scenario(_scenario("pbft", plane="check"))


def test_default_plane_keeps_describe_and_json_stable():
    # Golden-file invariant: the default plane adds no key anywhere.
    result = run_scenario(_scenario("pbft", duration=1.0))
    assert "plane" not in result.scenario.describe()
    assert '"plane"' not in result.to_json()


def test_faulted_scenario_falls_back_to_object_plane():
    faults = [FaultSpec(kind="loss", start=1.0, end=3.0,
                        params={"rate": 0.2})]
    fallback = run_scenario(
        _scenario("pbft", faults=list(faults), plane="columnar")
    )
    assert fallback.cluster.network.plane == "object"
    baseline = run_scenario(_scenario("pbft", faults=list(faults)))
    assert _comparable(fallback) == _comparable(baseline)


def test_runtime_faults_fall_back_per_send():
    # A fault the scenario never declared (mid-run set_down) must still
    # be honoured by an armed columnar cluster: new sends take the
    # object path, in-flight rows get delivery-time checks.
    def run(plane):
        result = prepare_scenario(_scenario("hotstuff-rr", plane=plane))
        cluster = result.cluster
        cluster.begin()
        cluster.sim.schedule(1.0, cluster.network.set_down, 2, True)
        cluster.sim.schedule(2.5, cluster.network.set_down, 2, False)
        cluster.sim.run(until=4.0)
        result.run_metrics = cluster.finish()
        return result

    object_result = run("object")
    columnar_result = run("columnar")
    assert _comparable(columnar_result) == _comparable(object_result)
    assert columnar_result.cluster.network.stats.messages_dropped > 0


def test_campaign_slice_is_bit_identical_across_planes():
    # The PR 6 campaign plane drives prepare_scenario + checkpoint cuts
    # itself; a columnar campaign must merge to the same report.
    from repro.experiments.campaign import CampaignSpec, run_campaign

    def run(plane):
        scenario = Scenario(
            protocol="pbft",
            deployment="wonderproxy-4",
            workload="open-loop",
            workload_params=dict(rate=800.0, clients=2),
            duration=1e9,
            seed=3,
            plane=plane,
        )
        spec = CampaignSpec(
            scenario=scenario, requests=3000, checkpoint_every=2.0, shards=2
        )
        report = run_campaign(spec)
        report.pop("host")
        report["campaign"]["scenario"].pop("plane", None)
        for summary in report["shards"]:
            summary["scenario"].pop("plane", None)
            # The planes disagree on heap-event counts by design (a
            # columnar drain delivers many rows per event) -- same
            # exclusion state_trace_hash makes.
            summary.pop("events_processed")
        return json.dumps(report, sort_keys=True)

    assert run("columnar") == run("object")


# ----------------------------------------------------------------------
# Checkpoint/resume (satellite: caches consistent after __setstate__)
# ----------------------------------------------------------------------
def _run_sliced(scenario, path, cut):
    result = prepare_scenario(scenario)
    result.cluster.begin()
    result.cluster.sim.run(until=cut)
    save_checkpoint(path, result)
    restored = load_checkpoint(path, expected_scenario=scenario)
    restored.cluster.sim.run(until=scenario.duration)
    restored.run_metrics = restored.cluster.finish()
    return restored


def test_columnar_checkpoint_resume_is_bit_identical(tmp_path):
    scenario = _scenario("hotstuff-rr", plane="columnar")
    baseline = run_scenario(scenario)
    restored = _run_sliced(scenario, str(tmp_path / "c.ckpt"), cut=2.0)
    assert restored.to_json() == baseline.to_json()
    assert state_trace_hash(restored.cluster) == state_trace_hash(
        baseline.cluster
    )


def test_resume_with_interceptors_active_matches_uninterrupted(tmp_path):
    # The satellite regression: cut the run while a delay interceptor
    # and a crash are live, resume from disk, and compare state-trace
    # hashes against the uninterrupted run.  Exercises the
    # __getstate__/__setstate__ fast-path cache audit
    # (_refresh_fast_path, _stats_per_class, _delay_rows).
    faults = [
        FaultSpec(kind="delay", start=0.5, end=3.5, attacker=1,
                  extra_delay=0.05),
        FaultSpec(kind="crash", start=1.0, end=3.0, attacker=2),
    ]
    scenario = _scenario("pbft", faults=faults)
    baseline = run_scenario(scenario)
    restored = _run_sliced(scenario, str(tmp_path / "i.ckpt"), cut=2.0)
    assert restored.to_json() == baseline.to_json()
    assert state_trace_hash(restored.cluster) == state_trace_hash(
        baseline.cluster
    )
