"""Scenario runner tests: determinism, protocol x workload coverage,
fault scheduling, and equivalence with the pre-runner driver code."""

import random
from pathlib import Path

import pytest

from repro.consensus.hotstuff import HotStuffCluster
from repro.experiments import fig9
from repro.experiments.runner import (
    FaultSpec,
    PROTOCOLS,
    Scenario,
    ScenarioResult,
    resolve_deployment,
    run_scenario,
)

GOLDEN_DIR = Path(__file__).parent / "data"


def small_scenario(**overrides):
    base = dict(
        protocol="pbft",
        deployment="wonderproxy-7",
        workload="bursty",
        workload_params={"on_rate": 60.0, "on_duration": 2.0, "off_duration": 2.0},
        duration=8.0,
        seed=0,
    )
    base.update(overrides)
    return Scenario(**base)


def test_scenario_json_is_bit_identical_across_runs():
    first = run_scenario(small_scenario()).to_json()
    second = run_scenario(small_scenario()).to_json()
    assert first == second
    assert '"protocol": "pbft"' in first


def test_no_fault_scenario_matches_pre_adversary_golden():
    """Determinism contract: a seeded run with ``faults=[]`` must stay
    bit-identical to the output recorded before the adversary subsystem
    existed (same ``derive_rng`` call order on the no-fault path).

    If this fails after an intentional behaviour change, regenerate with::

        PYTHONPATH=src python -c "
        from tests.experiments.test_runner import small_scenario
        from repro.experiments.runner import run_scenario
        print(run_scenario(small_scenario()).to_json(indent=2))" \
            > tests/experiments/data/golden_no_fault.json
    """
    golden = (GOLDEN_DIR / "golden_no_fault.json").read_text().rstrip("\n")
    assert run_scenario(small_scenario()).to_json(indent=2) == golden


def test_scenario_seed_changes_metrics():
    first = run_scenario(small_scenario(seed=0)).to_json()
    second = run_scenario(small_scenario(seed=1)).to_json()
    assert first != second


def test_wonderproxy_deployment_is_seeded_and_bounded():
    a = resolve_deployment("wonderproxy-16", seed=3)
    b = resolve_deployment("wonderproxy-16", seed=3)
    c = resolve_deployment("wonderproxy-16", seed=4)
    assert a.n == 16
    assert [city.name for city in a.cities] == [city.name for city in b.cities]
    assert [city.name for city in a.cities] != [city.name for city in c.cities]
    with pytest.raises(ValueError):
        resolve_deployment("wonderproxy-2")
    with pytest.raises(ValueError, match="unknown deployment"):
        resolve_deployment("atlantis9")


def test_hotstuff_commits_client_requests():
    result = run_scenario(
        small_scenario(protocol="hotstuff-rr", workload="open-loop",
                       workload_params={"rate": 40.0}, duration=10.0)
    )
    metrics = result.metrics()
    assert metrics["client"]["requests_completed"] > 0
    assert metrics["committed_requests"] <= metrics["client"]["requests_sent"]


def test_kauri_serves_closed_loop_clients():
    result = run_scenario(
        small_scenario(protocol="kauri", workload="closed-loop",
                       workload_params={}, duration=10.0)
    )
    metrics = result.metrics()
    assert metrics["client"]["requests_completed"] > 0
    assert metrics["throughput_rps"] > 0


def test_optitree_skewed_scenario_runs():
    result = run_scenario(
        small_scenario(
            protocol="optitree",
            deployment="wonderproxy-10",
            workload="skewed",
            workload_params={"rate": 50.0, "clients": 4, "skew": 1.2},
            duration=6.0,
            search_iterations=500,
        )
    )
    assert result.metrics()["client"]["requests_completed"] > 0


def test_delay_fault_degrades_pbft_latency():
    quiet = run_scenario(small_scenario(workload="open-loop",
                                        workload_params={"rate": 20.0},
                                        duration=12.0))
    attacked = run_scenario(
        small_scenario(
            workload="open-loop",
            workload_params={"rate": 20.0},
            duration=12.0,
            faults=[FaultSpec(kind="delay", start=4.0, attacker="leader",
                              extra_delay=0.5)],
        )
    )
    assert (
        attacked.metrics()["client"]["mean_latency"]
        > quiet.metrics()["client"]["mean_latency"]
    )


def test_crash_fault_stops_fixed_leader_progress():
    healthy = run_scenario(
        small_scenario(protocol="hotstuff-fixed", workload="saturated",
                       workload_params={}, duration=10.0)
    )
    crashed = run_scenario(
        small_scenario(
            protocol="hotstuff-fixed",
            workload="saturated",
            workload_params={},
            duration=10.0,
            faults=[FaultSpec(kind="crash", start=3.0, attacker=0)],
        )
    )
    # Replica 0 is the seed-0 fixed leader; crashing it halts commits.
    assert crashed.metrics()["committed_blocks"] < healthy.metrics()["committed_blocks"]


def test_partition_halves_progress_until_heal():
    """Splitting off a super-minority must not stop commits; isolating
    the leader's majority side from too many voters must."""
    quiet = run_scenario(small_scenario(workload="open-loop",
                                        workload_params={"rate": 30.0},
                                        duration=10.0))
    # n=7, f=2: quorum 5.  Cutting 2 replicas off leaves 5 -- progress.
    minority_cut = run_scenario(
        small_scenario(
            workload="open-loop", workload_params={"rate": 30.0}, duration=10.0,
            faults=[FaultSpec(kind="partition", start=0.0,
                              params={"groups": ((5, 6), (0, 1, 2, 3, 4))})],
        )
    )
    # Cutting 3 off leaves 4 < 5 -- no commits at all.
    majority_cut = run_scenario(
        small_scenario(
            workload="open-loop", workload_params={"rate": 30.0}, duration=10.0,
            faults=[FaultSpec(kind="partition", start=0.0,
                              params={"groups": ((4, 5, 6), (0, 1, 2, 3))})],
        )
    )
    healed = run_scenario(
        small_scenario(
            workload="open-loop", workload_params={"rate": 30.0}, duration=10.0,
            faults=[FaultSpec(kind="partition", start=2.0, end=4.0,
                              params={"groups": ((4, 5, 6), (0, 1, 2, 3))})],
        )
    )
    assert minority_cut.metrics()["committed_blocks"] > 0
    assert majority_cut.metrics()["committed_blocks"] == 0
    assert (
        0
        < healed.metrics()["committed_blocks"]
        <= quiet.metrics()["committed_blocks"]
    )


def test_loss_fault_is_deterministic_and_counted():
    def run():
        return run_scenario(
            small_scenario(
                workload="open-loop", workload_params={"rate": 30.0}, duration=8.0,
                faults=[FaultSpec(kind="loss", start=1.0, end=6.0,
                                  params={"rate": 0.1})],
            )
        )

    first, second = run(), run()
    assert first.to_json() == second.to_json()
    activity = first.metrics()["fault_activity"][0]
    assert activity["kind"] == "loss"
    assert 0 < activity["messages_lost"] < activity["messages_seen"]


def test_crash_with_end_revives_and_recovers_progress():
    crashed_forever = run_scenario(
        small_scenario(protocol="hotstuff-fixed", workload="saturated",
                       workload_params={}, duration=10.0,
                       faults=[FaultSpec(kind="crash", start=3.0, attacker=0)])
    )
    revived = run_scenario(
        small_scenario(protocol="hotstuff-fixed", workload="saturated",
                       workload_params={}, duration=10.0,
                       faults=[FaultSpec(kind="crash", start=3.0, end=5.0,
                                         attacker=0)])
    )
    # Replica 0 is the seed-0 fixed leader; reviving it (with catch-up)
    # must restart commits that stay dead without the revival.
    assert (
        revived.metrics()["committed_blocks"]
        > crashed_forever.metrics()["committed_blocks"]
    )
    assert revived.metrics()["fault_activity"][0]["revived_at"] == 5.0


def test_churn_fault_cycles_and_keeps_cluster_live():
    result = run_scenario(
        small_scenario(
            protocol="hotstuff-rr", workload="open-loop",
            workload_params={"rate": 30.0}, duration=12.0,
            faults=[FaultSpec(kind="churn", start=2.0, end=10.0,
                              params={"period": 2.0, "downtime": 1.0})],
        )
    )
    activity = result.metrics()["fault_activity"][0]
    assert activity["crashes"] >= 3
    assert activity["revivals"] == activity["crashes"]
    assert result.metrics()["committed_blocks"] > 0


def test_kauri_leaf_revival_does_not_overshoot_commit_point():
    """Catch-up must copy the donor's *committed* height; under
    pipelining next_height-1 runs ahead of it, and marking those heights
    committed would strand their requests."""
    result = run_scenario(
        small_scenario(
            protocol="kauri", workload="closed-loop", workload_params={},
            duration=10.0,
            faults=[FaultSpec(kind="crash", start=3.0, end=5.0, attacker=5)],
        )
    )
    root = result.cluster.replicas[result.cluster.tree.root]
    revived = result.cluster.replicas[5]
    assert revived.committed_height <= root.committed_height
    assert result.metrics()["committed_blocks"] > 0
    assert result.metrics()["fault_activity"][0]["revived_at"] == 5.0


def test_loss_senders_param_is_validated_and_normalised():
    assert FaultSpec(kind="loss", params={"rate": 0.1, "senders": 3}).params[
        "senders"
    ] == (3,)
    assert FaultSpec(
        kind="loss", params={"rate": 0.1, "senders": [4, 2]}
    ).params["senders"] == (2, 4)
    with pytest.raises(ValueError, match="senders"):
        FaultSpec(kind="loss", params={"rate": 0.1, "senders": "leader"})


def test_false_suspicion_fault_degrades_candidate_set():
    from repro.experiments.runner import MeasurementPolicy

    result = run_scenario(
        Scenario(
            protocol="pbft-optiaware", deployment="wonderproxy-7",
            workload="closed-loop", duration=30.0, seed=0, delta=1.25,
            measurements=MeasurementPolicy(probe_at=2.0, publish_at=5.0,
                                           first_search_at=12.0,
                                           search_period=10.0),
            faults=[FaultSpec(kind="false_suspicion", start=15.0,
                              attacker=(5, 6), params={"period": 5.0})],
        )
    )
    assert result.metrics()["fault_activity"][0]["rounds_launched"] == 2
    monitor = result.cluster.replicas[0].optilog.pipeline.suspicion_monitor
    # The fabricated suspicions and their reciprocations put edges in G:
    # the smeared correct replica (or an attacker) left K.
    assert monitor.active_suspicions()
    assert len(monitor.K) < 7


def test_false_suspicion_requires_optilog_cluster():
    with pytest.raises(ValueError, match="pbft-aware"):
        run_scenario(
            small_scenario(protocol="hotstuff-rr", workload="saturated",
                           workload_params={},
                           faults=[FaultSpec(kind="false_suspicion",
                                             attacker=(5,))])
        )


def test_fault_spec_validation_is_loud():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor")
    with pytest.raises(ValueError, match="unknown param"):
        FaultSpec(kind="loss", params={"rte": 0.1})
    with pytest.raises(ValueError, match="rate"):
        FaultSpec(kind="loss", params={"rate": 1.5})
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="partition")
    with pytest.raises(ValueError, match="exactly one"):
        FaultSpec(kind="partition",
                  params={"groups": ((0,), (1,)), "isolate": 2})
    with pytest.raises(ValueError, match="precedes"):
        FaultSpec(kind="delay", start=10.0, end=5.0)
    with pytest.raises(ValueError, match="attacker replica ids"):
        FaultSpec(kind="false_suspicion", attacker="leader")
    with pytest.raises(ValueError, match="period"):
        FaultSpec(kind="churn", params={"period": -1.0})
    with pytest.raises(ValueError, match="delta"):
        FaultSpec(kind="delta_delay", params={"delta": 0.0})


def test_cli_fault_parsing_routes_params_and_nested_groups():
    from repro.__main__ import _parse_fault

    spec = _parse_fault("partition:groups=((0,1,2),(3,4,5,6)),start=10,end=20")
    assert spec.kind == "partition"
    assert spec.params["groups"] == ((0, 1, 2), (3, 4, 5, 6))
    assert (spec.start, spec.end) == (10, 20)

    spec = _parse_fault("delay:start=60,attacker=leader,extra_delay=0.8,"
                        "message_types=(PrePrepare,Prepare)")
    assert spec.attacker == "leader"
    assert spec.message_types == ("PrePrepare", "Prepare")

    spec = _parse_fault("false_suspicion:attacker=(5,6),target=leader,period=5")
    assert spec.attacker == (5, 6)
    assert spec.params == {"target": "leader", "period": 5}

    with pytest.raises(SystemExit, match="unknown param"):
        _parse_fault("loss:rte=0.1")


def test_named_adversarial_scenarios_registered_and_runnable():
    from repro.experiments.scenarios import (
        ADVERSARIAL_SCENARIOS,
        make_scenario,
        run_named,
    )

    expected = {"partition-heal", "churn-storm", "stealth-delta",
                "lossy-wan", "smear-campaign"}
    assert expected <= set(ADVERSARIAL_SCENARIOS)
    for name in expected:
        scenario = make_scenario(name, seed=1)
        assert scenario.name == name
        assert scenario.faults
    with pytest.raises(ValueError, match="unknown scenario"):
        make_scenario("meteor-strike")
    # One end-to-end spot check at CI scale.
    result = run_named("partition-heal", seed=0, duration=9.0)
    assert result.metrics()["committed_blocks"] > 0
    assert result.metrics()["fault_activity"][0]["kind"] == "partition"


def test_invalid_combinations_are_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        run_scenario(small_scenario(protocol="paxos"))
    with pytest.raises(ValueError, match="client-driven"):
        run_scenario(small_scenario(workload="saturated", workload_params={}))
    with pytest.raises(ValueError, match="unknown workload"):
        run_scenario(small_scenario(workload="tsunami"))
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor")


def test_runner_matches_pre_refactor_hotstuff_construction():
    """The fig9 HotStuff-fixed cell through the runner must equal the
    original direct construction (the pre-runner driver code)."""
    duration, seed = 3.0, 1
    deployment = resolve_deployment("Europe21")
    leader = random.Random(seed).randrange(deployment.n)
    cluster = HotStuffCluster(
        deployment, leader_mode="fixed", fixed_leader=leader, seed=seed
    )
    expected = cluster.run(duration)
    cell = fig9.run_cell("Europe21", "HotStuff-fixed", duration=duration, seed=seed)
    assert cell.throughput == expected.throughput(duration)
    assert cell.latency == expected.mean_latency()


def test_every_protocol_is_buildable():
    for protocol in PROTOCOLS:
        workload = "saturated" if not protocol.startswith("pbft") else "closed-loop"
        result = run_scenario(
            small_scenario(protocol=protocol, workload=workload,
                           workload_params={}, duration=2.0,
                           search_iterations=200)
        )
        assert isinstance(result, ScenarioResult)
        assert result.run_metrics is not None


def test_fault_spec_accepts_bare_message_type_string():
    spec = FaultSpec(kind="delay", message_types="PrePrepare")
    assert spec.message_types == ("PrePrepare",)
    spec = FaultSpec(kind="delay", message_types=["Prepare", "Commit"])
    assert spec.message_types == ("Prepare", "Commit")


def test_workload_instance_can_be_rerun():
    """Rebinding the same Workload instance (Scenario reuse) must reset
    clients and metrics instead of accumulating across runs."""
    from repro.workloads import ClosedLoopWorkload

    workload = ClosedLoopWorkload()
    first = run_scenario(
        small_scenario(workload=workload, workload_params={}, duration=4.0)
    )
    first_completed = first.metrics()["client"]["requests_completed"]
    second = run_scenario(
        small_scenario(workload=workload, workload_params={}, duration=4.0)
    )
    assert len(workload.clients) == 1
    assert second.metrics()["client"]["requests_completed"] == first_completed
    assert first.to_json() == second.to_json()


def test_workload_params_rejected_for_instances():
    from repro.workloads import OpenLoopWorkload

    with pytest.raises(ValueError, match="workload_params only apply"):
        run_scenario(
            small_scenario(
                workload=OpenLoopWorkload(rate=10.0),
                workload_params={"rate": 200.0},
                duration=2.0,
            )
        )


def test_delay_fault_rejects_unknown_message_types():
    with pytest.raises(ValueError, match="unknown message type"):
        FaultSpec(kind="delay", message_types="PrePrepar")  # typo
    with pytest.raises(ValueError, match="unknown message type"):
        FaultSpec(kind="delay", message_types="(PrePrepare")  # malformed
    FaultSpec(kind="delay", message_types=("PrePrepare", "Prepare"))  # valid


# ---------------------------------------------------------------------------
# Fault composition validation (cross-spec invariants)
# ---------------------------------------------------------------------------


def test_negative_fault_start_rejected():
    with pytest.raises(ValueError, match="negative"):
        FaultSpec(kind="crash", start=-1.0, end=5.0, attacker=2)


def test_overlapping_crash_windows_on_one_replica_rejected():
    with pytest.raises(ValueError, match="overlapping.*crash"):
        Scenario(
            faults=[
                FaultSpec(kind="crash", start=1.0, end=5.0, attacker=2),
                FaultSpec(kind="crash", start=4.0, end=8.0, attacker=2),
            ]
        )


def test_disjoint_crash_windows_and_distinct_victims_allowed():
    Scenario(
        faults=[
            FaultSpec(kind="crash", start=1.0, end=3.0, attacker=2),
            FaultSpec(kind="crash", start=4.0, end=8.0, attacker=2),
            FaultSpec(kind="crash", start=2.0, end=6.0, attacker=3),
        ]
    )


def test_revival_inside_partition_rejected():
    with pytest.raises(ValueError, match="revives.*inside the partition"):
        Scenario(
            faults=[
                FaultSpec(
                    kind="partition",
                    start=0.0,
                    end=10.0,
                    params={"isolate": 2},
                ),
                FaultSpec(kind="crash", start=1.0, end=5.0, attacker=2),
            ]
        )


def test_revival_at_partition_heal_or_after_allowed():
    # Revival exactly at the heal instant (or later) is legal; only a
    # revival strictly inside the split is ambiguous.
    Scenario(
        faults=[
            FaultSpec(kind="partition", start=0.0, end=10.0, params={"isolate": 2}),
            FaultSpec(kind="crash", start=1.0, end=10.0, attacker=2),
        ]
    )
    Scenario(
        faults=[
            FaultSpec(kind="partition", start=0.0, end=4.0, params={"isolate": 2}),
            FaultSpec(kind="crash", start=5.0, end=8.0, attacker=2),
        ]
    )
