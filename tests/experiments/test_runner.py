"""Scenario runner tests: determinism, protocol x workload coverage,
fault scheduling, and equivalence with the pre-runner driver code."""

import random

import pytest

from repro.consensus.hotstuff import HotStuffCluster
from repro.experiments import fig9
from repro.experiments.runner import (
    FaultSpec,
    PROTOCOLS,
    Scenario,
    ScenarioResult,
    resolve_deployment,
    run_scenario,
)


def small_scenario(**overrides):
    base = dict(
        protocol="pbft",
        deployment="wonderproxy-7",
        workload="bursty",
        workload_params={"on_rate": 60.0, "on_duration": 2.0, "off_duration": 2.0},
        duration=8.0,
        seed=0,
    )
    base.update(overrides)
    return Scenario(**base)


def test_scenario_json_is_bit_identical_across_runs():
    first = run_scenario(small_scenario()).to_json()
    second = run_scenario(small_scenario()).to_json()
    assert first == second
    assert '"protocol": "pbft"' in first


def test_scenario_seed_changes_metrics():
    first = run_scenario(small_scenario(seed=0)).to_json()
    second = run_scenario(small_scenario(seed=1)).to_json()
    assert first != second


def test_wonderproxy_deployment_is_seeded_and_bounded():
    a = resolve_deployment("wonderproxy-16", seed=3)
    b = resolve_deployment("wonderproxy-16", seed=3)
    c = resolve_deployment("wonderproxy-16", seed=4)
    assert a.n == 16
    assert [city.name for city in a.cities] == [city.name for city in b.cities]
    assert [city.name for city in a.cities] != [city.name for city in c.cities]
    with pytest.raises(ValueError):
        resolve_deployment("wonderproxy-2")
    with pytest.raises(ValueError, match="unknown deployment"):
        resolve_deployment("atlantis9")


def test_hotstuff_commits_client_requests():
    result = run_scenario(
        small_scenario(protocol="hotstuff-rr", workload="open-loop",
                       workload_params={"rate": 40.0}, duration=10.0)
    )
    metrics = result.metrics()
    assert metrics["client"]["requests_completed"] > 0
    assert metrics["committed_requests"] <= metrics["client"]["requests_sent"]


def test_kauri_serves_closed_loop_clients():
    result = run_scenario(
        small_scenario(protocol="kauri", workload="closed-loop",
                       workload_params={}, duration=10.0)
    )
    metrics = result.metrics()
    assert metrics["client"]["requests_completed"] > 0
    assert metrics["throughput_rps"] > 0


def test_optitree_skewed_scenario_runs():
    result = run_scenario(
        small_scenario(
            protocol="optitree",
            deployment="wonderproxy-10",
            workload="skewed",
            workload_params={"rate": 50.0, "clients": 4, "skew": 1.2},
            duration=6.0,
            search_iterations=500,
        )
    )
    assert result.metrics()["client"]["requests_completed"] > 0


def test_delay_fault_degrades_pbft_latency():
    quiet = run_scenario(small_scenario(workload="open-loop",
                                        workload_params={"rate": 20.0},
                                        duration=12.0))
    attacked = run_scenario(
        small_scenario(
            workload="open-loop",
            workload_params={"rate": 20.0},
            duration=12.0,
            faults=[FaultSpec(kind="delay", start=4.0, attacker="leader",
                              extra_delay=0.5)],
        )
    )
    assert (
        attacked.metrics()["client"]["mean_latency"]
        > quiet.metrics()["client"]["mean_latency"]
    )


def test_crash_fault_stops_fixed_leader_progress():
    healthy = run_scenario(
        small_scenario(protocol="hotstuff-fixed", workload="saturated",
                       workload_params={}, duration=10.0)
    )
    crashed = run_scenario(
        small_scenario(
            protocol="hotstuff-fixed",
            workload="saturated",
            workload_params={},
            duration=10.0,
            faults=[FaultSpec(kind="crash", start=3.0, attacker=0)],
        )
    )
    # Replica 0 is the seed-0 fixed leader; crashing it halts commits.
    assert crashed.metrics()["committed_blocks"] < healthy.metrics()["committed_blocks"]


def test_invalid_combinations_are_rejected():
    with pytest.raises(ValueError, match="unknown protocol"):
        run_scenario(small_scenario(protocol="paxos"))
    with pytest.raises(ValueError, match="client-driven"):
        run_scenario(small_scenario(workload="saturated", workload_params={}))
    with pytest.raises(ValueError, match="unknown workload"):
        run_scenario(small_scenario(workload="tsunami"))
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec(kind="meteor")


def test_runner_matches_pre_refactor_hotstuff_construction():
    """The fig9 HotStuff-fixed cell through the runner must equal the
    original direct construction (the pre-runner driver code)."""
    duration, seed = 3.0, 1
    deployment = resolve_deployment("Europe21")
    leader = random.Random(seed).randrange(deployment.n)
    cluster = HotStuffCluster(
        deployment, leader_mode="fixed", fixed_leader=leader, seed=seed
    )
    expected = cluster.run(duration)
    cell = fig9.run_cell("Europe21", "HotStuff-fixed", duration=duration, seed=seed)
    assert cell.throughput == expected.throughput(duration)
    assert cell.latency == expected.mean_latency()


def test_every_protocol_is_buildable():
    for protocol in PROTOCOLS:
        workload = "saturated" if not protocol.startswith("pbft") else "closed-loop"
        result = run_scenario(
            small_scenario(protocol=protocol, workload=workload,
                           workload_params={}, duration=2.0,
                           search_iterations=200)
        )
        assert isinstance(result, ScenarioResult)
        assert result.run_metrics is not None


def test_fault_spec_accepts_bare_message_type_string():
    spec = FaultSpec(kind="delay", message_types="PrePrepare")
    assert spec.message_types == ("PrePrepare",)
    spec = FaultSpec(kind="delay", message_types=["Prepare", "Commit"])
    assert spec.message_types == ("Prepare", "Commit")


def test_workload_instance_can_be_rerun():
    """Rebinding the same Workload instance (Scenario reuse) must reset
    clients and metrics instead of accumulating across runs."""
    from repro.workloads import ClosedLoopWorkload

    workload = ClosedLoopWorkload()
    first = run_scenario(
        small_scenario(workload=workload, workload_params={}, duration=4.0)
    )
    first_completed = first.metrics()["client"]["requests_completed"]
    second = run_scenario(
        small_scenario(workload=workload, workload_params={}, duration=4.0)
    )
    assert len(workload.clients) == 1
    assert second.metrics()["client"]["requests_completed"] == first_completed
    assert first.to_json() == second.to_json()


def test_workload_params_rejected_for_instances():
    from repro.workloads import OpenLoopWorkload

    with pytest.raises(ValueError, match="workload_params only apply"):
        run_scenario(
            small_scenario(
                workload=OpenLoopWorkload(rate=10.0),
                workload_params={"rate": 200.0},
                duration=2.0,
            )
        )


def test_delay_fault_rejects_unknown_message_types():
    with pytest.raises(ValueError, match="unknown message type"):
        FaultSpec(kind="delay", message_types="PrePrepar")  # typo
    with pytest.raises(ValueError, match="unknown message type"):
        FaultSpec(kind="delay", message_types="(PrePrepare")  # malformed
    FaultSpec(kind="delay", message_types=("PrePrepare", "Prepare"))  # valid
