"""The parallel sweep executor: ordering, determinism, byte-identity."""

import json

import pytest

from repro.experiments import fig12
from repro.experiments.parallel import (
    ParallelWorkerError,
    derive_sweep_seed,
    parallel_map,
    resolve_jobs,
    run_scenarios,
)
from repro.experiments.runner import Scenario


def _square(x):
    return x * x


def test_parallel_map_serial_and_pooled_agree():
    points = list(range(12))
    assert parallel_map(_square, points) == [x * x for x in points]
    assert parallel_map(_square, points, jobs=4) == [x * x for x in points]


def test_parallel_map_preserves_submission_order():
    # Workers finishing out of order must not reorder results; squares of
    # a descending list come back descending.
    points = list(range(20, 0, -1))
    assert parallel_map(_square, points, jobs=3) == [x * x for x in points]


def _explode(x):
    if x == 3:
        raise ValueError("boom")
    return x


def test_parallel_map_wraps_worker_errors_with_point_label():
    # A raising worker surfaces as ParallelWorkerError naming the point
    # and chaining the original exception -- in both pool and serial mode.
    for jobs in (2, 1):
        with pytest.raises(ParallelWorkerError, match="boom") as excinfo:
            parallel_map(_explode, [1, 2, 3, 4], jobs=jobs)
        assert excinfo.value.label == "point 3/4"
        assert isinstance(excinfo.value.__cause__, ValueError)


def test_parallel_map_uses_custom_point_labels():
    with pytest.raises(ParallelWorkerError, match="genome g3") as excinfo:
        parallel_map(
            _explode, [1, 2, 3, 4], jobs=2, label=lambda p: f"genome g{p}"
        )
    assert excinfo.value.label == "genome g3"


def _die_once(path):
    # First attempt: kill the worker process outright (simulating an
    # OOM-killed evaluation) so the pool breaks; the retry, seeing the
    # marker file, succeeds.  Points that are plain ints just square.
    import os

    if isinstance(path, int):
        return path * path
    if not os.path.exists(path):
        with open(path, "w") as handle:
            handle.write("died")
        os._exit(1)
    return -1


def test_parallel_map_retries_once_on_broken_pool(tmp_path):
    marker = str(tmp_path / "died-once")
    points = [1, 2, marker, 4]
    assert parallel_map(_die_once, points, jobs=2) == [1, 4, -1, 16]


def _die_always(x):
    import os

    if x == 3:
        os._exit(1)
    return x


def test_parallel_map_fails_loudly_when_pool_breaks_twice():
    with pytest.raises(ParallelWorkerError, match="pool died twice"):
        parallel_map(_die_always, [1, 2, 3, 4], jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(6) == 6
    assert resolve_jobs(-1) >= 1


def test_derive_sweep_seed_is_deterministic_and_labelled():
    assert derive_sweep_seed(0, "point-0") == derive_sweep_seed(0, "point-0")
    assert derive_sweep_seed(0, "point-0") != derive_sweep_seed(0, "point-1")
    assert derive_sweep_seed(0, "point-0") != derive_sweep_seed(1, "point-0")


def _sweep_scenarios():
    return [
        Scenario(
            protocol="pbft",
            deployment="wonderproxy-8",
            workload="closed-loop",
            duration=3.0,
            seed=seed,
        )
        for seed in (0, 1, 2, 3)
    ]


def test_jobs4_sweep_byte_identical_to_serial():
    serial = run_scenarios(_sweep_scenarios())
    parallel = run_scenarios(_sweep_scenarios(), jobs=4)
    assert json.dumps(serial, sort_keys=True) == json.dumps(parallel, sort_keys=True)


def test_fig12_rows_identical_across_jobs():
    kwargs = dict(
        sizes=(13,), search_times=(0.25, 0.5), runs=3, seed=0,
        iterations_per_second=400,
    )
    assert fig12.run(**kwargs) == fig12.run(jobs=3, **kwargs)


def test_campaign_shards_pooled_over_parallel_map_are_byte_identical():
    # The campaign plane rides the same executor: per-shard sketches
    # merged in shard order must make the deterministic report sections
    # independent of the worker count (only the host/RSS section may
    # differ between a pooled and an in-process run).
    from repro.experiments.campaign import CampaignSpec, run_campaign

    def spec():
        return CampaignSpec(
            scenario=Scenario(
                protocol="pbft",
                deployment="wonderproxy-4",
                workload="open-loop",
                workload_params=dict(rate=800.0, clients=2),
                duration=1e9,
                seed=0,
            ),
            requests=2000,
            checkpoint_every=2.0,
            shards=3,
        )

    serial = run_campaign(spec(), jobs=1)
    pooled = run_campaign(spec(), jobs=3)
    serial.pop("host")
    pooled.pop("host")
    assert json.dumps(serial, sort_keys=True) == json.dumps(pooled, sort_keys=True)
