"""Relaxed message plane: columnar-fast vs columnar equivalence.

``plane='columnar-fast'`` coalesces same-destination rows inside
barrier windows, so it is NOT bit-identical to the exact planes --
the contract is documented equivalence on final metrics: equal commit
counts, per-replica commit heights and client request totals, and
latency quantiles within the :class:`repro.metrics.MetricsSketch`
error bound.  ``plane='check-fast'`` runs both twins and raises
:class:`PlaneDivergence` on the first violation; the property test
below drives it across protocols, workloads and seeds.

Faulted scenarios silently fall back to the object plane (same rule as
columnar), and the structured-array spine checkpoints: a cut/resumed
columnar-fast run replays bit-identically to the uninterrupted one.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.checkpoint import load_checkpoint, save_checkpoint
from repro.experiments.runner import (
    FaultSpec,
    PlaneDivergence,
    Scenario,
    prepare_scenario,
    run_scenario,
)
from repro.experiments.trace import state_trace_hash


def _scenario(protocol, workload, workload_params, **overrides):
    base = dict(
        protocol=protocol,
        deployment="wonderproxy-7",
        workload=workload,
        workload_params=dict(workload_params),
        duration=2.0,
        seed=5,
        jitter=0.0,
    )
    base.update(overrides)
    return Scenario(**base)


#: (protocol, workload, workload_params) -- every engine family, both
#: open- and closed-loop client drives where the protocol supports them.
_CASES = [
    ("pbft", "open-loop", (("rate", 120.0), ("clients", 2))),
    ("pbft", "closed-loop", (("clients", 3),)),
    ("pbft-optiaware", "open-loop", (("rate", 120.0), ("clients", 2))),
    ("hotstuff-rr", "saturated", ()),
    ("kauri", "saturated", ()),
]


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    case=st.sampled_from(_CASES),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_fast_plane_matches_exact_final_metrics(case, seed):
    # check-fast reruns the scenario on both planes and raises
    # PlaneDivergence on any count mismatch or quantile outside the
    # sketch error bound -- the property is simply that it returns.
    protocol, workload, params = case
    result = run_scenario(
        _scenario(protocol, workload, params, seed=seed, plane="check-fast")
    )
    assert result.cluster.network.plane == "columnar-fast"
    assert result.scenario.describe()["plane"] == "check-fast"


@pytest.mark.parametrize("case", _CASES, ids=lambda c: f"{c[0]}-{c[1]}")
def test_every_engine_family_passes_check_fast(case):
    protocol, workload, params = case
    result = run_scenario(
        _scenario(protocol, workload, params, plane="check-fast")
    )
    assert result.run_metrics is not None


def test_check_fast_rejects_jitter():
    with pytest.raises(ValueError, match="jitter"):
        run_scenario(
            _scenario(
                "pbft",
                "open-loop",
                {"rate": 120.0, "clients": 2},
                jitter=0.02,
                plane="check-fast",
            )
        )


def test_check_fast_rejects_workload_instances():
    from repro.workloads import make_workload

    scenario = _scenario("pbft", "open-loop", {}, plane="check-fast")
    scenario.workload = make_workload("open-loop", rate=120.0, clients=2)
    scenario.workload_params = {}
    with pytest.raises(ValueError, match="named workload"):
        run_scenario(scenario)


def test_prepare_rejects_check_fast_plane():
    with pytest.raises(ValueError, match="run_scenario"):
        prepare_scenario(
            _scenario(
                "pbft", "open-loop", {"rate": 120.0, "clients": 2},
                plane="check-fast",
            )
        )


def test_check_fast_raises_on_divergence(monkeypatch):
    import repro.experiments.runner as runner_mod

    heights = iter([[3, 3, 3, 3, 3, 3, 3], [3, 3, 3, 3, 3, 3, 2]])
    monkeypatch.setattr(
        runner_mod, "_commit_heights", lambda cluster: next(heights)
    )
    with pytest.raises(PlaneDivergence, match="commit heights"):
        run_scenario(
            _scenario(
                "hotstuff-rr", "saturated", {}, duration=1.0,
                plane="check-fast",
            )
        )


def test_faulted_scenario_falls_back_to_object_plane():
    faults = [FaultSpec(kind="loss", start=0.5, end=1.5, params={"rate": 0.2})]
    kwargs = dict(rate=120.0, clients=2)
    fallback = run_scenario(
        _scenario(
            "pbft", "open-loop", kwargs, faults=list(faults),
            plane="columnar-fast",
        )
    )
    assert fallback.cluster.network.plane == "object"
    baseline = run_scenario(
        _scenario("pbft", "open-loop", kwargs, faults=list(faults))
    )
    assert fallback.metrics()["committed_requests"] == (
        baseline.metrics()["committed_requests"]
    )


# ----------------------------------------------------------------------
# Checkpoint/resume: the structured spine's __getstate__
# ----------------------------------------------------------------------
def test_fast_spine_checkpoint_resume_is_bit_identical(tmp_path):
    # Same plane on both sides, so full bit-identity applies: the cut
    # lands while rows are parked in the structured column and the
    # armed drain cursor sits in the heap.
    scenario = _scenario(
        "hotstuff-rr", "saturated", {}, duration=4.0, plane="columnar-fast"
    )
    baseline = run_scenario(scenario)
    result = prepare_scenario(scenario)
    result.cluster.begin()
    result.cluster.sim.run(until=2.0)
    assert result.cluster.network._fast.count > 0
    path = str(tmp_path / "fast.ckpt")
    save_checkpoint(path, result)
    restored = load_checkpoint(path, expected_scenario=scenario)
    restored.cluster.sim.run(until=scenario.duration)
    restored.run_metrics = restored.cluster.finish()
    assert restored.to_json() == baseline.to_json()
    assert state_trace_hash(restored.cluster) == state_trace_hash(
        baseline.cluster
    )
