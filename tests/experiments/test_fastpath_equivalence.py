"""Pre/post-refactor equivalence of the hot-path fast paths.

The hot-path refactor added a pristine-network fast path (no
interceptor / partition / down-set checks), a batched multicast, lazily
materialized aggregates and several dispatch caches.  These tests pin
the claim that none of it changes behaviour: forcing the *checked* path
with a no-op interceptor -- the code path the pre-refactor network always
took -- must reproduce the fast path's metrics JSON bit-for-bit, for
every engine family.

Together with the golden-file test (``test_runner.py``), which pins
no-fault runs against the pre-adversary build, this bounds the refactor
from both sides.
"""

import pytest

from repro.experiments.runner import (
    Scenario,
    ScenarioResult,
    _build_cluster,
    _resolve_workload,
    resolve_deployment,
    run_scenario,
)


def _noop_interceptor(src, dst, message, delay):
    return message, delay


def _run(protocol: str, workload: str, duration: float, checked: bool) -> str:
    scenario = Scenario(
        protocol=protocol,
        deployment="wonderproxy-16",
        workload=workload,
        duration=duration,
        seed=3,
    )
    if not checked:
        return run_scenario(scenario).to_json(indent=2)
    # Build the cluster the same way the runner does, but install a no-op
    # interceptor before running so every send takes the checked path.
    deployment = resolve_deployment(scenario.deployment, seed=scenario.seed)
    workload_obj = _resolve_workload(scenario)
    cluster = _build_cluster(scenario, deployment, workload_obj)
    cluster.network.add_interceptor(_noop_interceptor)
    run_metrics = cluster.run(scenario.duration)
    return ScenarioResult(
        scenario=scenario,
        cluster=cluster,
        run_metrics=run_metrics,
        workload=workload_obj,
    ).to_json(indent=2)


@pytest.mark.parametrize(
    "protocol,workload,duration",
    [
        ("pbft", "closed-loop", 8.0),
        ("hotstuff-rr", "saturated", 8.0),
        ("kauri", "saturated", 8.0),
    ],
)
def test_checked_path_matches_fast_path_bit_for_bit(protocol, workload, duration):
    fast = _run(protocol, workload, duration, checked=False)
    checked = _run(protocol, workload, duration, checked=True)
    assert fast == checked
