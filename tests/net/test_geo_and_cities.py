"""Tests for great-circle geometry and the city dataset."""

import math

import pytest

from repro.net.cities import ALL_CITIES, cities_in_region, city_by_name
from repro.net.geo import haversine_km


def test_haversine_zero_for_same_point():
    assert haversine_km(48.0, 11.0, 48.0, 11.0) == 0.0


def test_haversine_known_distance_london_newyork():
    london = city_by_name("London")
    new_york = city_by_name("New York")
    distance = haversine_km(london.lat, london.lon, new_york.lat, new_york.lon)
    assert 5400 < distance < 5750  # ~5570 km


def test_haversine_symmetry():
    a = city_by_name("Tokyo")
    b = city_by_name("Sydney")
    assert haversine_km(a.lat, a.lon, b.lat, b.lon) == pytest.approx(
        haversine_km(b.lat, b.lon, a.lat, a.lon)
    )


def test_haversine_antipodal_bounded_by_half_circumference():
    distance = haversine_km(0.0, 0.0, 0.0, 180.0)
    assert distance == pytest.approx(math.pi * 6371.0, rel=1e-6)


def test_dataset_has_220_unique_cities():
    assert len(ALL_CITIES) == 220
    assert len({city.name for city in ALL_CITIES}) == 220


def test_all_coordinates_in_range():
    for city in ALL_CITIES:
        assert -90 <= city.lat <= 90
        assert -180 <= city.lon <= 180


def test_regions_cover_dataset():
    total = sum(
        len(cities_in_region(region)) for region in ("EU", "NA", "AS", "SA", "AF", "OC")
    )
    assert total == 220


def test_city_by_name_unknown_raises():
    with pytest.raises(KeyError):
        city_by_name("Atlantis")
