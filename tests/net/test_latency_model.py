"""Tests for the RTT model and the paper's latency envelope."""

import numpy as np
import pytest

from repro.net import latency_model
from repro.net.cities import city_by_name
from repro.net.latency_model import LatencyModel, _LazyOneWay, _OneWay


def test_symmetry_and_zero_diagonal(europe21):
    model = europe21.latency
    matrix = model.matrix_ms()
    assert np.allclose(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)


def test_colocated_replicas_see_local_rtt():
    city = city_by_name("Frankfurt")
    model = LatencyModel([city, city])
    assert model.rtt_ms(0, 1) == pytest.approx(1.0)


def test_intercontinental_envelope_matches_paper(global73):
    """§7.3: intercontinental delays range 150-250 ms (+1 ms local)."""
    stats = global73.latency.stats_ms()
    assert stats["max"] <= 260.0
    assert stats["max"] >= 150.0  # some pair is genuinely intercontinental


def test_european_pairs_are_fast(europe21):
    stats = europe21.latency.stats_ms()
    assert stats["max"] < 60.0
    assert stats["min"] >= 1.0


def test_one_way_is_half_rtt(europe21):
    model = europe21.latency
    assert model.one_way(0, 1) == pytest.approx(model.rtt(0, 1) / 2.0)


def test_monotone_with_distance():
    london = city_by_name("London")
    paris = city_by_name("Paris")
    tokyo = city_by_name("Tokyo")
    model = LatencyModel([london, paris, tokyo])
    assert model.rtt_ms(0, 1) < model.rtt_ms(0, 2)


def test_closest_index_maps_to_nearest_city(europe21):
    model = europe21.latency
    # Coordinates of Munich should map to Munich's entry.
    munich = city_by_name("Munich")
    index = model.closest_index(munich.lat, munich.lon)
    assert model.cities[index].name == "Munich"


def test_vectorized_matrix_equals_scalar_loop_at_n64():
    """The vectorized constructor must be *bit-identical* to the scalar
    pair loop: link delays feed event timestamps, so even a last-ulp
    difference would change seeded runs."""
    import random

    from repro.net.deployments import random_world_deployment

    model = random_world_deployment(64, random.Random(7)).latency
    n = len(model)
    scalar = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            rtt = LatencyModel._pair_rtt_ms(model.cities[i], model.cities[j])
            scalar[i, j] = rtt
            scalar[j, i] = rtt
    assert np.array_equal(model.matrix_ms(), scalar)  # exact, not allclose


def test_vectorized_matrix_handles_duplicate_and_tiny_inputs():
    frankfurt = city_by_name("Frankfurt")
    paris = city_by_name("Paris")
    # Co-located pair plus one distinct city, exact against the scalar rule.
    model = LatencyModel([frankfurt, frankfurt, paris])
    assert model.rtt_ms(0, 1) == LatencyModel._pair_rtt_ms(frankfurt, frankfurt)
    assert model.rtt_ms(0, 2) == LatencyModel._pair_rtt_ms(frankfurt, paris)
    # Degenerate sizes must not blow up.
    assert LatencyModel([]).matrix_ms().shape == (0, 0)
    assert LatencyModel([paris]).matrix_ms().shape == (1, 1)


def test_one_way_rows_match_one_way_exactly(europe21):
    model = europe21.latency
    rows = model.one_way_rows()
    n = len(model)
    for a in range(n):
        for b in range(n):
            assert rows[a][b] == model.one_way(a, b)


# ----------------------------------------------------------------------
# One-way providers: eager list rows vs lazy matrix-backed rows
# ----------------------------------------------------------------------
def test_eager_provider_below_threshold(europe21):
    provider = europe21.latency.one_way_provider()
    assert isinstance(provider, _OneWay)


def test_provider_switches_lazy_past_threshold(europe21, monkeypatch):
    monkeypatch.setattr(latency_model, "EAGER_ROWS_MAX_N", 20)
    provider = europe21.latency.one_way_provider()
    assert isinstance(provider, _LazyOneWay)


def test_lazy_provider_bit_equal_to_one_way(europe21):
    # The memory fix serves floats off the numpy matrix; every value
    # must still equal the scalar one_way chain bit-for-bit.
    model = europe21.latency
    lazy = _LazyOneWay(model._rtt_ms)
    eager = _OneWay(model.one_way_rows())
    n = len(model)
    for a in range(n):
        assert lazy.row(a) == eager.row(a)
        for b in range(n):
            assert lazy(a, b) == model.one_way(a, b) == eager(a, b)


def test_lazy_row_cache_bounded_and_consistent(europe21, monkeypatch):
    monkeypatch.setattr(_LazyOneWay, "CACHE_SIZE", 4)
    lazy = _LazyOneWay(europe21.latency._rtt_ms)
    rows = [list(lazy.row(a)) for a in range(21)]
    assert len(lazy._cache) == 4
    # Evicted rows re-synthesize to identical values.
    assert [lazy.row(a) for a in range(21)] == rows


def test_lazy_provider_pickles_without_cache():
    import pickle

    cities = [city_by_name("Paris"), city_by_name("Tokyo")]
    model = LatencyModel(cities)
    lazy = _LazyOneWay(model._rtt_ms)
    lazy.row(0)
    clone = pickle.loads(pickle.dumps(lazy))
    assert not clone._cache
    assert clone(0, 1) == lazy(0, 1)
    assert clone.row(1) == lazy.row(1)


def test_delay_floor_is_min_cross_node_one_way(europe21):
    # The relaxed message plane caps its drain windows at this floor; it
    # must lower-bound every delay the provider can ever answer, and be
    # positive for any model with distinct replicas.
    model = europe21.latency
    n = len(model)
    want = min(
        model.one_way(a, b) for a in range(n) for b in range(n) if a != b
    )
    assert want > 0.0
    assert _OneWay(model.one_way_rows()).delay_floor() == want
    assert _LazyOneWay(model.matrix_ms()).delay_floor() == want


def test_delay_floor_degenerate_single_replica():
    city = city_by_name("Frankfurt")
    model = LatencyModel([city])
    assert _OneWay(model.one_way_rows()).delay_floor() == 0.0
    assert _LazyOneWay(model.matrix_ms()).delay_floor() == 0.0


def test_delay_floor_colocated_pair_is_local_one_way():
    # Co-located replicas still pay the 1 ms local RTT, so the floor
    # stays positive even when every replica shares one city.
    city = city_by_name("Frankfurt")
    model = LatencyModel([city, city])
    floor = _OneWay(model.one_way_rows()).delay_floor()
    assert floor == pytest.approx(0.0005)
    assert floor <= model.one_way(0, 1)
