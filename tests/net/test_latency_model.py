"""Tests for the RTT model and the paper's latency envelope."""

import numpy as np
import pytest

from repro.net.cities import city_by_name
from repro.net.latency_model import LatencyModel


def test_symmetry_and_zero_diagonal(europe21):
    model = europe21.latency
    matrix = model.matrix_ms()
    assert np.allclose(matrix, matrix.T)
    assert np.all(np.diag(matrix) == 0)


def test_colocated_replicas_see_local_rtt():
    city = city_by_name("Frankfurt")
    model = LatencyModel([city, city])
    assert model.rtt_ms(0, 1) == pytest.approx(1.0)


def test_intercontinental_envelope_matches_paper(global73):
    """§7.3: intercontinental delays range 150-250 ms (+1 ms local)."""
    stats = global73.latency.stats_ms()
    assert stats["max"] <= 260.0
    assert stats["max"] >= 150.0  # some pair is genuinely intercontinental


def test_european_pairs_are_fast(europe21):
    stats = europe21.latency.stats_ms()
    assert stats["max"] < 60.0
    assert stats["min"] >= 1.0


def test_one_way_is_half_rtt(europe21):
    model = europe21.latency
    assert model.one_way(0, 1) == pytest.approx(model.rtt(0, 1) / 2.0)


def test_monotone_with_distance():
    london = city_by_name("London")
    paris = city_by_name("Paris")
    tokyo = city_by_name("Tokyo")
    model = LatencyModel([london, paris, tokyo])
    assert model.rtt_ms(0, 1) < model.rtt_ms(0, 2)


def test_closest_index_maps_to_nearest_city(europe21):
    model = europe21.latency
    # Coordinates of Munich should map to Munich's entry.
    munich = city_by_name("Munich")
    index = model.closest_index(munich.lat, munich.lon)
    assert model.cities[index].name == "Munich"
