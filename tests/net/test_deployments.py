"""Tests for named deployments and the Stellar validator set."""

import random

import pytest

from repro.net.deployments import (
    EUROPE21,
    GLOBAL73,
    NA_EU43,
    deployment_for,
    random_world_deployment,
)
from repro.net.stellar import STELLAR_VALIDATORS, stellar_deployment


def test_deployment_sizes_match_paper():
    assert len(EUROPE21) == 21
    assert len(NA_EU43) == 43
    assert len(GLOBAL73) == 73
    assert len(STELLAR_VALIDATORS) == 56


def test_named_deployments_resolve():
    for name, n in (
        ("Europe21", 21),
        ("NA-EU43", 43),
        ("Global73", 73),
        ("Stellar56", 56),
    ):
        deployment = deployment_for(name)
        assert deployment.n == n
        assert len(deployment.latency) == n


def test_unknown_deployment_raises():
    with pytest.raises(ValueError):
        deployment_for("Mars1")


def test_europe21_contains_nuremberg():
    assert "Nuremberg" in EUROPE21  # Fig. 7's measured client city


def test_nested_deployments():
    assert set(EUROPE21) <= set(NA_EU43) <= set(GLOBAL73)


def test_stellar_concentration_us_eu():
    """Stellar's validator map is US/EU heavy."""
    regions = [city.region for city in STELLAR_VALIDATORS]
    us_eu = sum(1 for region in regions if region in ("NA", "EU"))
    assert us_eu / len(regions) > 0.6


def test_random_world_deployment_deterministic():
    a = random_world_deployment(30, random.Random(5))
    b = random_world_deployment(30, random.Random(5))
    assert [c.name for c in a.cities] == [c.name for c in b.cities]


def test_random_world_deployment_oversized():
    deployment = random_world_deployment(300, random.Random(1))
    assert deployment.n == 300


def test_stellar_deployment_latency_built():
    deployment = stellar_deployment()
    assert deployment.latency.rtt_ms(0, deployment.n - 1) >= 0.0


# ----------------------------------------------------------------------
# world-N at scale (n > 220 repeats cities: the densified regime)
# ----------------------------------------------------------------------
def test_world_deployment_deterministic_beyond_pool():
    a = random_world_deployment(260, random.Random(9), hierarchical=True)
    b = random_world_deployment(260, random.Random(9), hierarchical=True)
    assert [c.name for c in a.cities] == [c.name for c in b.cities]
    pairs = random.Random(1).sample(
        [(i, j) for i in range(0, 260, 13) for j in range(1, 260, 17)], 50
    )
    for i, j in pairs:
        assert a.latency.rtt_ms(i, j) == b.latency.rtt_ms(i, j)


def test_world_deployment_seed_changes_placement():
    a = random_world_deployment(260, random.Random(9), hierarchical=True)
    b = random_world_deployment(260, random.Random(10), hierarchical=True)
    assert [c.name for c in a.cities] != [c.name for c in b.cities]


def test_world_deployment_covers_every_region():
    from repro.net.deployments import ALL_CITIES

    deployment = random_world_deployment(260, random.Random(3), hierarchical=True)
    assert {c.region for c in deployment.cities} == {
        c.region for c in ALL_CITIES
    }


def test_colocated_replicas_see_local_rtt_at_scale():
    from repro.net.latency_model import LOCAL_RTT_MS

    deployment = random_world_deployment(260, random.Random(3), hierarchical=True)
    by_location = {}
    for index, city in enumerate(deployment.cities):
        by_location.setdefault((city.lat, city.lon), []).append(index)
    repeats = [ids for ids in by_location.values() if len(ids) > 1]
    assert repeats  # n > 220 must reuse cities
    for ids in repeats:
        first, second = ids[0], ids[1]
        assert deployment.latency.rtt_ms(first, second) == LOCAL_RTT_MS


def test_jittered_repeats_spread_but_stay_deterministic():
    kwargs = dict(hierarchical=True, jitter_km=50.0)
    a = random_world_deployment(260, random.Random(3), **kwargs)
    b = random_world_deployment(260, random.Random(3), **kwargs)
    by_location = {}
    for index, city in enumerate(a.cities):
        by_location.setdefault((city.lat, city.lon), []).append(index)
    repeats = next(ids for ids in by_location.values() if len(ids) > 1)
    first, second = repeats[0], repeats[1]
    from repro.net.latency_model import LOCAL_RTT_MS

    assert a.latency.rtt_ms(first, second) > LOCAL_RTT_MS
    assert a.latency.rtt_ms(first, second) == b.latency.rtt_ms(first, second)
