"""Tests for the hierarchical (region-tiered) latency substrate."""

import random

import numpy as np
import pytest

from repro.net.cities import ALL_CITIES
from repro.net.hierarchy import (
    CHECK_MAX_N,
    ROW_CACHE_SIZE,
    HierarchicalLatencyModel,
    LatencyDivergence,
    verify_against_dense,
    verify_self_consistent,
)
from repro.net.latency_model import LOCAL_RTT_MS, MS_PER_KM, LatencyModel


def _cities(n, seed=7):
    """n cities drawn like random_world_deployment: unique pool first,
    then repeats (shared regions)."""
    rng = random.Random(seed)
    pool = list(ALL_CITIES)
    rng.shuffle(pool)
    if n <= len(pool):
        return pool[:n]
    return pool + [rng.choice(pool) for _ in range(n - len(pool))]


def test_bit_identical_to_dense_small():
    cities = _cities(73)
    hier = HierarchicalLatencyModel(cities)
    dense = LatencyModel(cities)
    for a in range(73):
        for b in range(73):
            assert hier.one_way(a, b) == dense.one_way(a, b)
            assert hier.rtt_ms(a, b) == dense.rtt_ms(a, b)


def test_bit_identical_matrices_full_pool():
    cities = _cities(311)  # past the 220-city pool: shared regions exist
    hier = HierarchicalLatencyModel(cities)
    dense = LatencyModel(cities)
    assert np.array_equal(hier.matrix_ms(), dense.matrix_ms())
    assert np.array_equal(hier.matrix_seconds(), dense.matrix_seconds())


def test_row_matches_scalar_bitwise():
    cities = _cities(150)
    offsets = [float(i % 7) * 3.5 for i in range(150)]
    hier = HierarchicalLatencyModel(cities, offsets_km=offsets)
    for src in (0, 42, 149):
        row = hier.row(src)
        assert row[src] == 0.0
        for dst in range(150):
            assert row[dst] == hier.one_way(src, dst)


def test_colocated_replicas_local_rtt():
    cities = _cities(230)  # > 220: guaranteed repeats
    hier = HierarchicalLatencyModel(cities)
    seen = {}
    pairs = 0
    for i, city in enumerate(cities):
        key = (city.lat, city.lon)
        if key in seen:
            assert hier.rtt_ms(seen[key], i) == LOCAL_RTT_MS
            pairs += 1
        else:
            seen[key] = i
    assert pairs >= 10


def test_offsets_add_to_local_and_base():
    cities = _cities(5)
    offsets = [10.0, 20.0, 0.0, 0.0, 0.0]
    hier = HierarchicalLatencyModel(cities + [cities[0]], offsets_km=offsets + [40.0])
    # Replica 5 shares replica 0's region with a 40 km offset.
    assert hier.rtt_ms(0, 5) == LOCAL_RTT_MS + (10.0 + 40.0) * MS_PER_KM
    base = hier.rtt_ms(2, 3)
    assert hier.rtt_ms(0, 1) == HierarchicalLatencyModel(cities).rtt_ms(0, 1) + (
        10.0 + 20.0
    ) * MS_PER_KM
    assert base == LatencyModel(cities).rtt_ms(2, 3)


def test_memory_shape_is_regions_squared():
    cities = _cities(1024)
    hier = HierarchicalLatencyModel(cities)
    assert hier.region_count == 220
    assert hier._base_ms.shape == (220, 220)
    assert len(hier) == 1024


def test_row_cache_bounded():
    cities = _cities(300)
    hier = HierarchicalLatencyModel(cities)
    for src in range(300):
        hier.row(src)
    assert len(hier._row_cache) == ROW_CACHE_SIZE
    # Cached row is reused (identity, not just equality).
    row = hier.row(299)
    assert hier.row(299) is row


def test_stats_ms_matches_dense():
    cities = _cities(100)
    hier = HierarchicalLatencyModel(cities)
    dense = LatencyModel(cities)
    got = hier.stats_ms()
    expect = dense.stats_ms()
    assert got["min"] == expect["min"]
    assert got["max"] == expect["max"]
    assert got["mean"] == pytest.approx(expect["mean"], rel=1e-12)


def test_verify_against_dense_passes():
    cities = _cities(256)
    hier = HierarchicalLatencyModel(cities)
    compared = verify_against_dense(hier, random.Random(3), samples=512)
    assert compared > 512


def test_verify_against_dense_caps_n():
    cities = _cities(CHECK_MAX_N + 1)
    hier = HierarchicalLatencyModel(cities)
    with pytest.raises(ValueError, match="caps at"):
        verify_against_dense(hier)


def test_verify_against_dense_rejects_offsets():
    cities = _cities(10)
    hier = HierarchicalLatencyModel(cities, offsets_km=[1.0] * 10)
    with pytest.raises(ValueError, match="zero offsets"):
        verify_against_dense(hier)


def test_verify_detects_divergence():
    cities = _cities(40)
    hier = HierarchicalLatencyModel(cities)
    hier._base_rows[1][2] += 0.25  # corrupt the scalar path only
    hier._base_rows[2][1] += 0.25
    with pytest.raises(LatencyDivergence):
        verify_against_dense(hier, random.Random(0))


def test_verify_self_consistent():
    cities = _cities(230)
    offsets = [float(i % 11) for i in range(230)]
    hier = HierarchicalLatencyModel(cities, offsets_km=offsets)
    assert verify_self_consistent(hier, random.Random(2), samples=512) == 512


def test_explicit_regions_and_base():
    base = np.array([[0.0, 50.0], [50.0, 0.0]])
    cities = _cities(4)
    hier = HierarchicalLatencyModel(
        cities, regions=[0, 0, 1, 1], base_ms=base
    )
    assert hier.rtt_ms(0, 2) == 50.0
    assert hier.rtt_ms(0, 1) == LOCAL_RTT_MS
    assert hier.one_way(0, 0) == 0.0


def test_validation_errors():
    cities = _cities(4)
    with pytest.raises(ValueError, match="together"):
        HierarchicalLatencyModel(cities, regions=[0, 0, 0, 0])
    with pytest.raises(ValueError, match="non-negative"):
        HierarchicalLatencyModel(cities, offsets_km=[-1.0, 0.0, 0.0, 0.0])
    with pytest.raises(ValueError, match="offsets"):
        HierarchicalLatencyModel(cities, offsets_km=[0.0])
    with pytest.raises(ValueError, match="out of range"):
        HierarchicalLatencyModel(
            cities, regions=[0, 1, 2, 9], base_ms=np.zeros((3, 3))
        )


def test_provider_row_and_scalar():
    cities = _cities(50)
    hier = HierarchicalLatencyModel(cities)
    provider = hier.one_way_provider()
    assert provider(3, 17) == hier.one_way(3, 17)
    assert provider.row(3) == hier.row(3)
    assert not hasattr(provider, "rows")


def test_one_way_floor_bounds_every_pair():
    cities = _cities(150)
    offsets = [float(i % 7) * 3.5 for i in range(150)]
    hier = HierarchicalLatencyModel(cities, offsets_km=offsets)
    floor = hier.one_way_floor()
    assert floor > 0.0
    provider = hier.one_way_provider()
    assert provider.delay_floor() == floor
    rng = random.Random(11)
    for _ in range(200):
        a, b = rng.randrange(150), rng.randrange(150)
        if a != b:
            assert hier.one_way(a, b) >= floor


def test_one_way_floor_degenerate_single_city():
    hier = HierarchicalLatencyModel(_cities(1))
    assert hier.one_way_floor() == 0.0
