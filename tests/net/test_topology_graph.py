"""Tests for the graph topology latency backend."""

import random

import numpy as np
import pytest

from repro.net.hierarchy import verify_self_consistent
from repro.net.latency_model import LOCAL_RTT_MS
from repro.net.topology_graph import (
    EXAMPLE_GRAPH,
    TopologyGraph,
    assign_replicas,
    graph_latency_model,
    load_graph,
    shortest_path_ms,
)


def test_example_graph_loads():
    graph = load_graph(EXAMPLE_GRAPH)
    assert graph.node_count == 12
    assert "nyc" in graph.labels and "sin" in graph.labels
    assert len(graph.edges) == 14


def test_shortest_paths_symmetric_zero_diagonal():
    graph = load_graph(EXAMPLE_GRAPH)
    base = shortest_path_ms(graph)
    assert np.array_equal(base, base.T)
    assert not base.diagonal().any()


def test_shortest_path_beats_direct_edge():
    # nyc->sin: the Pacific route (18+42+102+48+34) beats the Atlantic
    # one (70+12+110+58); one LOCAL_RTT_MS floor per path.
    graph = load_graph(EXAMPLE_GRAPH)
    base = shortest_path_ms(graph)
    nyc = graph.labels.index("nyc")
    sin = graph.labels.index("sin")
    assert base[nyc][sin] == 244.0 + LOCAL_RTT_MS


def test_disconnected_graph_rejected(tmp_path):
    path = tmp_path / "parts.txt"
    path.write_text("a b 10\nc d 10\n")
    with pytest.raises(ValueError, match="disconnected"):
        shortest_path_ms(load_graph(path))


def test_edge_list_parsing(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# backbone\na b 10\nb c 20  # tail comment\n")
    graph = load_graph(path)
    assert graph.labels == ["a", "b", "c"]
    base = shortest_path_ms(graph)
    assert base[0][2] == 30.0 + LOCAL_RTT_MS


def test_edge_list_requires_latency(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("a b\n")
    with pytest.raises(ValueError, match="latency"):
        load_graph(path)


def test_gml_haversine_fallback(tmp_path):
    path = tmp_path / "geo.gml"
    path.write_text(
        "graph [\n"
        '  node [ id 0 label "x" lat 0.0 lon 0.0 ]\n'
        '  node [ id 1 label "y" lat 0.0 lon 1.0 ]\n'
        "  edge [ source 0 target 1 ]\n"
        "]\n"
    )
    graph = load_graph(path)
    base = shortest_path_ms(graph)
    # ~111 km of propagation at 0.0125 ms/km, plus the per-path floor.
    assert LOCAL_RTT_MS + 1.0 < base[0][1] < LOCAL_RTT_MS + 2.0


def test_assign_replicas_covers_then_repeats():
    graph = load_graph(EXAMPLE_GRAPH)
    regions, offsets = assign_replicas(graph, 40, random.Random(0))
    assert len(set(regions[:12])) == 12  # full coverage before repeats
    assert all(v == 0.0 for v in offsets)  # no jitter by default


def test_assign_replicas_deterministic_and_jitter_derived():
    graph = load_graph(EXAMPLE_GRAPH)
    a = assign_replicas(graph, 40, random.Random(5), jitter_km=80.0)
    b = assign_replicas(graph, 40, random.Random(5), jitter_km=80.0)
    assert a == b
    plain, _ = assign_replicas(graph, 40, random.Random(5))
    assert a[0] == plain  # jitter never perturbs the placement draws
    # First occupant of each region stays at the anchor; repeats jitter.
    seen = set()
    for region, offset in zip(a[0], a[1]):
        if region not in seen:
            assert offset == 0.0
            seen.add(region)
        else:
            assert 0.0 <= offset <= 80.0


def test_graph_latency_model_consistent():
    graph = load_graph(EXAMPLE_GRAPH)
    regions, offsets = assign_replicas(graph, 64, random.Random(1), jitter_km=50.0)
    model = graph_latency_model(graph, regions, offsets)
    assert len(model) == 64
    assert model.region_count == 12
    verify_self_consistent(model, random.Random(2), samples=256)
    # Same-node zero-offset pairs collapse to the local RTT.
    first = {}
    for i, region in enumerate(regions):
        if region in first and offsets[i] == 0.0 and offsets[first[region]] == 0.0:
            assert model.rtt_ms(first[region], i) == LOCAL_RTT_MS
        first.setdefault(region, i)


def test_adjacency_undirected():
    graph = TopologyGraph(["a", "b"], [None, None], [(0, 1, 5.0)])
    adj = graph.adjacency()
    assert adj[0] == [(1, 5.0)] and adj[1] == [(0, 5.0)]
