"""Legacy setup shim: the pinned setuptools lacks PEP 660 editable wheels
(no ``wheel`` package available offline), so ``pip install -e .`` needs a
setup.py to fall back to develop-mode installs."""

from setuptools import find_packages, setup

setup(
    name="optilog-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'OptiLog: Assigning Roles in Byzantine Consensus'"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            # The unified scenario runner / figure driver CLI.
            "repro=repro.__main__:main",
        ],
    },
)
