"""Legacy setup shim: the pinned setuptools lacks PEP 660 editable wheels
(no ``wheel`` package available offline), so ``pip install -e .`` needs a
setup.py to fall back to develop-mode installs."""

from setuptools import setup

setup()
