"""``python -m repro``: run scenarios and figure drivers from the shell.

Subcommands
-----------
``run``
    Execute an ad-hoc :class:`~repro.experiments.runner.Scenario` and
    print its JSON metrics (deterministic under ``--seed``)::

        python -m repro run --protocol pbft --workload bursty \
            --deployment wonderproxy-16 --seed 0

``fig``
    Execute a figure driver (``fig7`` ... ``fig15``, ``fast`` where
    supported) and print its table.

``list``
    Show the available protocols, workloads, deployments and figures.
"""

from __future__ import annotations

import argparse
import ast
import importlib
import inspect
import json
import re
import sys
from typing import Any, Dict, List, Optional

from repro.experiments import runner as runner_mod
from repro.experiments.runner import FaultSpec, Scenario, run_scenario
from repro.workloads import WORKLOADS

FIGURES = tuple(f"fig{i}" for i in range(7, 16))


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing: numbers/tuples/bools, else string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key.replace("-", "_")] = _parse_value(value)
    return params


def _parse_fault(text: str) -> FaultSpec:
    """``kind:key=value,key=value`` -> FaultSpec, e.g.
    ``delay:start=60,attacker=leader,extra_delay=0.8``.

    Multiple message types are parenthesised so the comma split leaves
    them intact: ``delay:message_types=(PrePrepare,Prepare),start=60``.
    """
    kind, _, rest = text.partition(":")
    kwargs: Dict[str, Any] = {}
    if rest:
        for pair in re.split(r",(?![^(]*\))", rest):
            key, sep, value = pair.partition("=")
            if not sep:
                raise SystemExit(f"--fault expects kind:key=value,..., got {text!r}")
            if value.startswith("(") and value.endswith(")"):
                kwargs[key.replace("-", "_")] = tuple(
                    item.strip().strip("'\"")
                    for item in value[1:-1].split(",")
                    if item.strip()
                )
            else:
                kwargs[key.replace("-", "_")] = _parse_value(value)
    try:
        return FaultSpec(kind=kind, **kwargs)
    except (TypeError, ValueError) as error:
        raise SystemExit(f"bad --fault {text!r}: {error}")


def cmd_run(args: argparse.Namespace) -> int:
    scenario = Scenario(
        protocol=args.protocol,
        deployment=args.deployment,
        workload=args.workload,
        workload_params=_parse_params(args.param),
        duration=args.duration,
        seed=args.seed,
        delta=args.delta,
        jitter=args.jitter,
        client_city=args.client_city,
        faults=[_parse_fault(fault) for fault in args.fault or []],
        search_iterations=args.search_iterations,
        pipeline_depth=args.pipeline_depth,
    )
    try:
        result = run_scenario(scenario)
    except (ValueError, TypeError) as error:
        # Bad protocol/workload/deployment names or workload params; the
        # exception text already names the offender and the known values.
        raise SystemExit(f"error: {error}")
    text = result.to_json(indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_fig(args: argparse.Namespace) -> int:
    if args.figure not in FIGURES:
        raise SystemExit(f"unknown figure {args.figure!r} (known: {', '.join(FIGURES)})")
    module = importlib.import_module(f"repro.experiments.{args.figure}")
    main = module.main
    accepted = inspect.signature(main).parameters
    kwargs: Dict[str, Any] = {}
    for knob in ("duration", "seed", "fast"):
        value = getattr(args, knob, None)
        if value is not None and knob in accepted:
            kwargs[knob] = value
    print(main(**kwargs))
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name, (family, variant) in sorted(runner_mod.PROTOCOLS.items()):
        print(f"  {name:18s} ({family}/{variant})")
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    print("  saturated          (no clients; engines self-clock full blocks)")
    print("deployments:")
    for name in sorted(runner_mod.NAMED_DEPLOYMENTS.values()):
        print(f"  {name}")
    print("  wonderproxy-N      (seeded random world placement, N >= 4)")
    print("figures:")
    print("  " + " ".join(FIGURES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OptiLog reproduction: scenario runner and figure drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run an ad-hoc scenario, print JSON metrics")
    run_parser.add_argument("--protocol", default="pbft",
                            choices=sorted(runner_mod.PROTOCOLS))
    run_parser.add_argument("--deployment", default="Europe21",
                            help="Europe21 | NA-EU43 | Global73 | Stellar56 | wonderproxy-N")
    run_parser.add_argument("--workload", default="closed-loop",
                            help=f"{' | '.join(sorted(WORKLOADS))} | saturated")
    run_parser.add_argument("--param", action="append", metavar="KEY=VALUE",
                            help="workload parameter (repeatable), e.g. --param on_rate=80")
    run_parser.add_argument("--duration", type=float, default=30.0,
                            help="simulated seconds (default 30)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--delta", type=float, default=1.0,
                            help="suspicion timer multiplier delta")
    run_parser.add_argument("--jitter", type=float, default=0.02,
                            help="fractional link jitter (default 0.02)")
    run_parser.add_argument("--client-city", type=int, default=None,
                            help="city index the default client is pinned to")
    run_parser.add_argument("--fault", action="append", metavar="KIND:K=V,...",
                            help="fault spec (repeatable), e.g. "
                                 "delay:start=60,attacker=leader,extra_delay=0.8")
    run_parser.add_argument("--search-iterations", type=int, default=20_000,
                            help="OptiTree annealing iterations")
    run_parser.add_argument("--pipeline-depth", type=int, default=None)
    run_parser.add_argument("--output", metavar="FILE",
                            help="write JSON here instead of stdout")
    run_parser.set_defaults(func=cmd_run)

    fig_parser = sub.add_parser("fig", help="run a figure driver, print its table")
    fig_parser.add_argument("figure", help="fig7 ... fig15")
    fig_parser.add_argument("--duration", type=float, default=None)
    fig_parser.add_argument("--seed", type=int, default=None)
    fig_parser.add_argument("--fast", action="store_true", default=None,
                            help="compressed timeline where the driver supports it")
    fig_parser.set_defaults(func=cmd_fig)

    list_parser = sub.add_parser("list", help="list protocols, workloads, deployments")
    list_parser.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
