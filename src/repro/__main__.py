"""``python -m repro``: run scenarios and figure drivers from the shell.

Subcommands
-----------
``run``
    Execute an ad-hoc :class:`~repro.experiments.runner.Scenario` and
    print its JSON metrics (deterministic under ``--seed``)::

        python -m repro run --protocol pbft --workload bursty \
            --deployment wonderproxy-16 --seed 0

``scenario``
    Execute a named adversarial scenario from the registry
    (``partition-heal``, ``churn-storm``, ``stealth-delta``,
    ``lossy-wan``, ``smear-campaign``) and print its JSON metrics::

        python -m repro scenario churn-storm --seed 3

``sweep``
    Execute one scenario per seed, optionally sharded across a process
    pool, and print a JSON array of metrics (byte-identical for any
    ``--jobs``, including serial)::

        python -m repro sweep --protocol pbft --deployment wonderproxy-16 \
            --seeds 0 1 2 3 --jobs 4

``campaign``
    Run a long streaming-metrics campaign to a committed-request target,
    sliced every ``--checkpoint-every`` simulated seconds (replica
    compaction + optional checkpoint files; rerunning the same command
    with ``--checkpoint-dir`` resumes bit-identically after a kill)::

        python -m repro campaign --requests 2000000 --workload diurnal \
            --checkpoint-every 30 --checkpoint-dir ckpts --shards 4 --jobs 4

``attack``
    Synthesize the worst-case bounded adversary for an arena by
    annealing over the attack-genome space (ROADMAP item 4), or sweep a
    whole robustness frontier (degradation vs adversary budget, with the
    hand-authored scenarios as reference points).  Deterministic under
    ``--seed`` and byte-identical for any ``--jobs``::

        python -m repro attack --arena pbft --objective latency \
            --budget-faulty 6 --iterations 40 --restarts 2 --jobs 4
        python -m repro attack --frontier --axis faulty --levels 1 3 6 \
            --output frontier_pbft.json

``fig``
    Execute a figure driver (``fig7`` ... ``fig15``, ``fast`` and
    ``--jobs`` where supported) and print its table.

``bench``
    Run the fixed performance suite and write a ``BENCH_*.json`` that
    embeds the recorded pre-refactor baseline next to the fresh
    numbers.  ``--search`` selects the optimizer-layer suite (score
    evals/sec, SA iterations/sec) and ``--pipeline`` the
    monitoring-pipeline suite (log append/dispatch throughput,
    suspicion-entry processing rate, MIS solve rates) and ``--metrics``
    the measurement-plane suite (sketch ingest/merge, quantile queries,
    state round-trips) instead of the simulator suite::

        python -m repro bench --quick --output BENCH_quick.json
        python -m repro bench --search --output BENCH_PR4.json
        python -m repro bench --pipeline --output BENCH_PR5.json
        python -m repro bench --metrics --output BENCH_metrics.json
        python -m repro bench --scale --output BENCH_PR8.json

``list``
    Show the available protocols, workloads, deployments, fault kinds,
    scenarios and figures.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import importlib
import inspect
import json
import sys
from typing import Any, Dict, List, Optional

from repro.experiments import runner as runner_mod
from repro.experiments import scenarios as scenarios_mod
from repro.experiments.runner import FaultSpec, Scenario, run_scenario
from repro.workloads import WORKLOADS

FIGURES = tuple(f"fig{i}" for i in range(7, 16))

#: FaultSpec's own dataclass fields; any other key=value in a --fault
#: string is routed into the kind-specific ``params`` dict.
_FAULT_FIELDS = frozenset(
    f.name for f in dataclasses.fields(FaultSpec)
) - {"kind", "params"}


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing: numbers/tuples/bools, else string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        params[key.replace("-", "_")] = _parse_value(value)
    return params


def _split_top_level(text: str) -> List[str]:
    """Split on commas outside any parentheses/brackets (nesting-aware,
    so ``groups=((0,1),(2,3))`` survives intact)."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _parse_fault_value(value: str) -> Any:
    """Literal where possible; a parenthesised list of bare names becomes
    a tuple of strings: ``(PrePrepare,Prepare)`` -> ("PrePrepare", "Prepare")."""
    parsed = _parse_value(value)
    if (
        isinstance(parsed, str)
        and value.startswith("(")
        and value.endswith(")")
    ):
        return tuple(
            item.strip().strip("'\"")
            for item in value[1:-1].split(",")
            if item.strip()
        )
    return parsed


def _parse_fault(text: str) -> FaultSpec:
    """``kind:key=value,key=value`` -> FaultSpec.

    Keys that are not FaultSpec fields go into the kind-specific params,
    so the whole vocabulary is reachable from the shell::

        delay:start=60,attacker=leader,extra_delay=0.8
        delta_delay:attacker=intermediates,delta=1.25,adaptive=True
        partition:groups=((0,1,2),(3,4,5,6)),start=10,end=20
        loss:rate=0.03,message_types=(Prepare,Commit)
        churn:period=10,downtime=3,random=True
        false_suspicion:attacker=(17,18,19),target=leader,period=10
    """
    kind, _, rest = text.partition(":")
    kwargs: Dict[str, Any] = {}
    params: Dict[str, Any] = {}
    if rest:
        for pair in _split_top_level(rest):
            key, sep, value = pair.partition("=")
            if not sep:
                raise SystemExit(f"--fault expects kind:key=value,..., got {text!r}")
            key = key.replace("-", "_")
            target = kwargs if key in _FAULT_FIELDS else params
            target[key] = _parse_fault_value(value)
    try:
        return FaultSpec(kind=kind, params=params, **kwargs)
    except (TypeError, ValueError) as error:
        raise SystemExit(f"bad --fault {text!r}: {error}")


def cmd_run(args: argparse.Namespace) -> int:
    scenario = Scenario(
        protocol=args.protocol,
        deployment=args.deployment,
        workload=args.workload,
        workload_params=_parse_params(args.param),
        duration=args.duration,
        seed=args.seed,
        delta=args.delta,
        jitter=args.jitter,
        client_city=args.client_city,
        faults=[_parse_fault(fault) for fault in args.fault or []],
        search_iterations=args.search_iterations,
        pipeline_depth=args.pipeline_depth,
        plane=args.plane,
    )
    try:
        result = run_scenario(scenario)
    except (ValueError, TypeError) as error:
        # Bad protocol/workload/deployment names or workload params; the
        # exception text already names the offender and the known values.
        raise SystemExit(f"error: {error}")
    text = result.to_json(indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.parallel import (
        ParallelWorkerError,
        derive_sweep_seed,
        run_scenarios,
    )

    seeds = list(args.seeds or [])
    if args.derive_seeds:
        seeds.extend(
            derive_sweep_seed(args.seed, f"sweep-{index}")
            for index in range(args.derive_seeds)
        )
    if not seeds:
        raise SystemExit("sweep needs --seeds and/or --derive-seeds")
    scenarios = [
        Scenario(
            protocol=args.protocol,
            deployment=args.deployment,
            workload=args.workload,
            workload_params=_parse_params(args.param),
            duration=args.duration,
            seed=seed,
            delta=args.delta,
            jitter=args.jitter,
            client_city=args.client_city,
            faults=[_parse_fault(fault) for fault in args.fault or []],
            search_iterations=args.search_iterations,
            pipeline_depth=args.pipeline_depth,
            plane=args.plane,
        )
        for seed in seeds
    ]
    try:
        metrics = run_scenarios(
            scenarios,
            jobs=args.jobs,
            progress=lambda message: print(message, file=sys.stderr),
        )
    except ParallelWorkerError as error:
        raise SystemExit(f"error: {error} (failing point: {error.label})")
    except (ValueError, TypeError) as error:
        raise SystemExit(f"error: {error}")
    text = json.dumps(metrics, sort_keys=True, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments.campaign import CampaignSpec, campaign_to_json, run_campaign
    from repro.experiments.parallel import ParallelWorkerError

    scenario = Scenario(
        protocol=args.protocol,
        deployment=args.deployment,
        workload=args.workload,
        workload_params=_parse_params(args.param),
        duration=args.duration,
        seed=args.seed,
        delta=args.delta,
        jitter=args.jitter,
        client_city=args.client_city,
        faults=[_parse_fault(fault) for fault in args.fault or []],
        search_iterations=args.search_iterations,
        pipeline_depth=args.pipeline_depth,
        plane=args.plane,
    )
    try:
        spec = CampaignSpec(
            scenario=scenario,
            requests=args.requests,
            checkpoint_every=args.checkpoint_every,
            shards=args.shards,
            checkpoint_dir=args.checkpoint_dir,
            compact_keep=args.compact_keep,
        )
        report = run_campaign(
            spec,
            jobs=args.jobs,
            progress=lambda message: print(message, file=sys.stderr),
        )
    except ParallelWorkerError as error:
        raise SystemExit(f"error: {error} (failing point: {error.label})")
    except (ValueError, TypeError) as error:
        raise SystemExit(f"error: {error}")
    text = campaign_to_json(report, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_scenario(args: argparse.Namespace) -> int:
    if args.list:
        print("available scenarios:")
        print(scenarios_mod.format_scenario_registry())
        return 0
    if not args.name:
        raise SystemExit(
            "scenario needs a name (or --list); available scenarios:\n"
            + scenarios_mod.format_scenario_registry()
        )
    try:
        result = scenarios_mod.run_named(
            args.name, seed=args.seed, duration=args.duration
        )
    except (ValueError, TypeError) as error:
        raise SystemExit(f"error: {error}")
    text = result.to_json(indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.experiments.attack import (
        best_reference_degradation,
        evaluate_references,
        make_arena,
    )
    from repro.experiments.frontier import (
        format_frontier_table,
        run_frontier,
        write_frontier,
    )
    from repro.experiments.parallel import ParallelWorkerError
    from repro.faults.genome import AdversaryBudget
    from repro.optimize.adversary import DEFAULT_SCHEDULE, attack_search

    progress = lambda message: print(message, file=sys.stderr)  # noqa: E731
    schedule = dataclasses.replace(DEFAULT_SCHEDULE, iterations=args.iterations)
    try:
        budget = AdversaryBudget(
            max_faulty=args.budget_faulty,
            delta=args.budget_delta,
            max_loss_rate=args.budget_loss,
            max_extra_delay=args.budget_delay,
            max_moves=args.budget_moves,
        )
        if args.frontier:
            report = run_frontier(
                arena_name=args.arena,
                objective=args.objective,
                axis=args.axis,
                levels=args.levels,
                base_budget=budget,
                duration=args.duration,
                seeds=tuple(args.eval_seeds),
                seed=args.seed,
                restarts=args.restarts,
                schedule=schedule,
                jobs=args.jobs,
                progress=progress,
            )
            print(format_frontier_table(report))
        else:
            arena = make_arena(
                args.arena, duration=args.duration, seeds=tuple(args.eval_seeds)
            )
            report = attack_search(
                arena,
                budget,
                args.objective,
                seed=args.seed,
                restarts=args.restarts,
                schedule=schedule,
                jobs=args.jobs,
                progress=progress,
            )
            references = evaluate_references(arena, args.objective)
            report["references"] = [
                {
                    "name": ref["name"],
                    "degradation": ref["degradation"],
                    "victims": ref["victims"],
                }
                for ref in references
            ]
            report["best_reference"] = best_reference_degradation(references)
            print(
                f"arena {report['arena']} / {report['objective']}: synthesized "
                f"degradation {report['best']['degradation']:.3f} "
                f"(best hand-authored reference: {report['best_reference']:.3f})"
            )
            print(f"  {report['best']['label']}")
    except ParallelWorkerError as error:
        raise SystemExit(f"error: {error} (failing point: {error.label})")
    except (ValueError, TypeError) as error:
        raise SystemExit(f"error: {error}")
    text = json.dumps(report, sort_keys=True, indent=2)
    if args.output:
        if args.frontier:
            write_frontier(report, args.output)
        else:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_fig(args: argparse.Namespace) -> int:
    if args.figure not in FIGURES:
        raise SystemExit(f"unknown figure {args.figure!r} (known: {', '.join(FIGURES)})")
    module = importlib.import_module(f"repro.experiments.{args.figure}")
    main = module.main
    accepted = inspect.signature(main).parameters
    kwargs: Dict[str, Any] = {}
    for knob in ("duration", "seed", "fast", "jobs"):
        value = getattr(args, knob, None)
        if value is not None and knob in accepted:
            kwargs[knob] = value
    print(main(**kwargs))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if args.list is not None:
        from repro.bench.listing import format_suite_listing

        try:
            print(format_suite_listing(args.list or None))
        except ValueError as error:
            raise SystemExit(f"error: {error}")
        return 0
    if sum(
        (args.search, args.pipeline, args.metrics, args.plane, args.scale,
         args.attack)
    ) > 1:
        raise SystemExit(
            "choose one of --search / --pipeline / --metrics / --plane / "
            "--scale / --attack"
        )
    if args.rebaseline:
        from repro.bench.rebaseline import rebaseline

        if args.entry or args.quick:
            raise SystemExit(
                "--rebaseline always runs the full suite; drop --entry/--quick"
            )
        try:
            path = rebaseline(
                args.rebaseline,
                note=args.note or "rebaselined",
                progress=lambda message: print(message, file=sys.stderr),
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}")
        print(f"wrote {path}")
        return 0
    if args.note:
        raise SystemExit("--note applies only to --rebaseline")

    if args.scale:
        from repro.bench.scale import (
            format_scale_table,
            run_scale_suite,
        )
        from repro.bench.scale import write_report as write_scale_report

        try:
            report = run_scale_suite(
                quick=args.quick,
                only=args.entry or None,
                progress=lambda message: print(message, file=sys.stderr),
            )
        except ValueError as error:
            raise SystemExit(f"error: {error}")
        print(format_scale_table(report))
        output = args.output or (
            "BENCH_scale_quick.json" if args.quick else "BENCH_PR10.json"
        )
        write_scale_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    if args.attack:
        from repro.bench.attack import (
            format_attack_table,
            run_attack_suite,
            write_attack_report,
        )

        if args.entry:
            raise SystemExit("--entry applies to the simulator suite, not --attack")
        report = run_attack_suite(
            quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(format_attack_table(report))
        output = args.output or (
            "BENCH_attack_quick.json" if args.quick else "BENCH_PR9.json"
        )
        write_attack_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    if args.plane:
        from repro.bench.plane import (
            format_plane_table,
            run_plane_suite,
            write_plane_report,
        )

        if args.entry:
            raise SystemExit("--entry applies to the simulator suite, not --plane")
        report = run_plane_suite(
            quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(format_plane_table(report))
        output = args.output or (
            "BENCH_plane_quick.json" if args.quick else "BENCH_PR7.json"
        )
        write_plane_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    if args.metrics:
        from repro.bench.metrics import (
            format_metrics_table,
            run_metrics_suite,
            write_metrics_report,
        )

        if args.entry:
            raise SystemExit("--entry applies to the simulator suite, not --metrics")
        report = run_metrics_suite(
            quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(format_metrics_table(report))
        output = args.output or (
            "BENCH_metrics_quick.json" if args.quick else "BENCH_metrics.json"
        )
        write_metrics_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    if args.pipeline:
        from repro.bench.pipeline import (
            format_pipeline_table,
            run_pipeline_suite,
            write_pipeline_report,
        )

        if args.entry:
            raise SystemExit("--entry applies to the simulator suite, not --pipeline")
        report = run_pipeline_suite(
            quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(format_pipeline_table(report))
        output = args.output or (
            "BENCH_pipeline_quick.json" if args.quick else "BENCH_PR5.json"
        )
        write_pipeline_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    if args.search:
        from repro.bench.search import (
            format_search_table,
            run_search_suite,
            write_search_report,
        )

        if args.entry:
            raise SystemExit("--entry applies to the simulator suite, not --search")
        report = run_search_suite(
            quick=args.quick,
            progress=lambda message: print(message, file=sys.stderr),
        )
        print(format_search_table(report))
        output = args.output or (
            "BENCH_search_quick.json" if args.quick else "BENCH_PR4.json"
        )
        write_search_report(report, output)
        print(f"wrote {output}", file=sys.stderr)
        return 0

    from repro.bench import SUITE, format_table, run_suite, write_report

    try:
        report = run_suite(
            quick=args.quick,
            only=args.entry or None,
            progress=lambda message: print(message, file=sys.stderr),
        )
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    print(format_table(report))
    output = args.output
    if output is None:
        # A partial run must not clobber a previously written full report.
        if args.entry:
            output = "BENCH_partial.json"
        else:
            output = "BENCH_quick.json" if args.quick else "BENCH_full.json"
    write_report(report, output)
    print(f"wrote {output}", file=sys.stderr)
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("protocols:")
    for name, (family, variant) in sorted(runner_mod.PROTOCOLS.items()):
        print(f"  {name:18s} ({family}/{variant})")
    print("workloads:")
    for name in sorted(WORKLOADS):
        print(f"  {name}")
    print("  saturated          (no clients; engines self-clock full blocks)")
    print("deployments:")
    for name in sorted(runner_mod.NAMED_DEPLOYMENTS.values()):
        print(f"  {name}")
    print("  wonderproxy-N      (seeded random world placement, N >= 4)")
    print("fault kinds:")
    print("  " + " ".join(runner_mod.FAULT_KINDS))
    print("scenarios:")
    for name, (_factory, description) in sorted(
        scenarios_mod.ADVERSARIAL_SCENARIOS.items()
    ):
        print(f"  {name:18s} {description}")
    print("figures:")
    print("  " + " ".join(FIGURES))
    return 0


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    """The scenario-shape options ``run`` and ``sweep`` share; one
    definition so defaults and help text cannot drift between them."""
    parser.add_argument("--protocol", default="pbft",
                        choices=sorted(runner_mod.PROTOCOLS))
    parser.add_argument("--deployment", default="Europe21",
                        help="Europe21 | NA-EU43 | Global73 | Stellar56 | wonderproxy-N")
    parser.add_argument("--workload", default="closed-loop",
                        help=f"{' | '.join(sorted(WORKLOADS))} | saturated")
    parser.add_argument("--param", action="append", metavar="KEY=VALUE",
                        help="workload parameter (repeatable), e.g. --param on_rate=80")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="simulated seconds (default 30)")
    parser.add_argument("--delta", type=float, default=1.0,
                        help="suspicion timer multiplier delta")
    parser.add_argument("--jitter", type=float, default=0.02,
                        help="fractional link jitter (default 0.02)")
    parser.add_argument("--client-city", type=int, default=None,
                        help="city index the default client is pinned to")
    parser.add_argument("--fault", action="append", metavar="KIND:K=V,...",
                        help="fault spec (repeatable); kinds: "
                             "delay | delta_delay | crash | churn | partition "
                             "| loss | false_suspicion, e.g. "
                             "delay:start=60,attacker=leader,extra_delay=0.8 "
                             "or loss:rate=0.03,start=5,end=25")
    parser.add_argument("--search-iterations", type=int, default=20_000,
                        help="OptiTree annealing iterations")
    parser.add_argument("--pipeline-depth", type=int, default=None)
    parser.add_argument("--plane", default="object",
                        choices=("object", "columnar", "columnar-fast",
                                 "check", "check-fast"),
                        help="message plane: object (one event per message), "
                             "columnar (batched deliveries, bit-identical "
                             "results; faulted scenarios fall back to "
                             "object), columnar-fast (coalesced barrier-"
                             "window deliveries, equivalent final metrics "
                             "for campaign runs; needs jitter handling like "
                             "columnar), check (run object+columnar, assert "
                             "identical state traces), or check-fast (run "
                             "columnar+columnar-fast at jitter=0, assert "
                             "equal commit counts and quantiles within the "
                             "sketch error bound)")
    parser.add_argument("--output", metavar="FILE",
                        help="write JSON here instead of stdout")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OptiLog reproduction: scenario runner and figure drivers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run an ad-hoc scenario, print JSON metrics")
    _add_scenario_options(run_parser)
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run one scenario per seed (optionally in parallel), print JSON"
    )
    _add_scenario_options(sweep_parser)
    sweep_parser.add_argument("--seeds", type=int, nargs="+", metavar="SEED",
                              help="explicit sweep seeds, e.g. --seeds 0 1 2 3")
    sweep_parser.add_argument("--derive-seeds", type=int, default=0, metavar="N",
                              help="additionally derive N seeds from --seed "
                                   "(labelled substreams, like derive_rng)")
    sweep_parser.add_argument("--seed", type=int, default=0,
                              help="root seed for --derive-seeds")
    sweep_parser.add_argument("--jobs", type=int, default=None,
                              help="process-pool width (default serial; -1 = all cores)")
    sweep_parser.set_defaults(func=cmd_sweep)

    campaign_parser = sub.add_parser(
        "campaign",
        help="run a checkpointed streaming-metrics campaign to a request target",
    )
    _add_scenario_options(campaign_parser)
    campaign_parser.add_argument("--seed", type=int, default=0,
                                 help="root seed; shard seeds derive from it")
    campaign_parser.add_argument("--requests", type=int, default=1_000_000,
                                 help="total committed-request target (default 1M)")
    campaign_parser.add_argument("--checkpoint-every", type=float, default=30.0,
                                 metavar="SECONDS",
                                 help="simulated seconds per slice (default 30)")
    campaign_parser.add_argument("--shards", type=int, default=1,
                                 help="independent sub-campaigns (merged in order)")
    campaign_parser.add_argument("--jobs", type=int, default=None,
                                 help="process-pool width for shards "
                                      "(default serial; results identical)")
    campaign_parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                                 help="write per-shard checkpoints here; rerunning "
                                      "the same command resumes from them")
    campaign_parser.add_argument("--compact-keep", type=int, default=128,
                                 help="per-replica history kept behind the commit "
                                      "frontier at each slice boundary")
    campaign_parser.set_defaults(func=cmd_campaign)

    scenario_parser = sub.add_parser(
        "scenario", help="run a named adversarial scenario, print JSON metrics"
    )
    scenario_parser.add_argument(
        "name", nargs="?", default=None,
        help=" | ".join(sorted(scenarios_mod.ADVERSARIAL_SCENARIOS)),
    )
    scenario_parser.add_argument(
        "--list", action="store_true",
        help="print the scenario registry (name + description) and exit",
    )
    scenario_parser.add_argument("--seed", type=int, default=0)
    scenario_parser.add_argument(
        "--duration", type=float, default=None,
        help="override the scenario's default duration (fault windows scale)",
    )
    scenario_parser.add_argument("--output", metavar="FILE",
                                 help="write JSON here instead of stdout")
    scenario_parser.set_defaults(func=cmd_scenario)

    attack_parser = sub.add_parser(
        "attack",
        help="synthesize a worst-case bounded adversary (annealed search)",
    )
    attack_parser.add_argument(
        "--arena", default="pbft", choices=("pbft", "hotstuff", "kauri", "optiaware"),
        help="which fault-free arena to attack (default pbft)",
    )
    attack_parser.add_argument(
        "--objective", default="latency", choices=("latency", "suspicion"),
        help="maximize commit-latency degradation or false-suspicion yield",
    )
    attack_parser.add_argument(
        "--frontier", action="store_true",
        help="sweep a budget axis instead of a single search "
             "(degradation vs budget, hand-authored references included)",
    )
    attack_parser.add_argument(
        "--axis", default="faulty", choices=("faulty", "delta"),
        help="budget axis for --frontier (default faulty)",
    )
    attack_parser.add_argument(
        "--levels", type=float, nargs="+", default=None, metavar="LEVEL",
        help="explicit --frontier levels (default per axis)",
    )
    attack_parser.add_argument("--budget-faulty", type=int, default=3, metavar="F",
                               help="max simultaneously faulty replicas (default 3)")
    attack_parser.add_argument("--budget-delta", type=float, default=1.25,
                               metavar="DELTA",
                               help="stealth-delay bound as a multiple of the "
                                    "estimated timeout (default 1.25)")
    attack_parser.add_argument("--budget-loss", type=float, default=0.05,
                               metavar="RATE",
                               help="max per-link loss rate (default 0.05)")
    attack_parser.add_argument("--budget-delay", type=float, default=0.5,
                               metavar="SECONDS",
                               help="max fixed extra delay (default 0.5)")
    attack_parser.add_argument("--budget-moves", type=int, default=4, metavar="M",
                               help="max moves per genome (default 4)")
    attack_parser.add_argument("--duration", type=float, default=None,
                               help="override the arena's evaluation duration")
    attack_parser.add_argument("--eval-seeds", type=int, nargs="+", default=[0, 1],
                               metavar="SEED",
                               help="worst-of-k evaluation seeds (default 0 1)")
    attack_parser.add_argument("--seed", type=int, default=0,
                               help="search root seed; chain seeds derive from it")
    attack_parser.add_argument("--iterations", type=int, default=40,
                               help="annealing iterations per chain (default 40)")
    attack_parser.add_argument("--restarts", type=int, default=2,
                               help="independent annealing chains (default 2)")
    attack_parser.add_argument("--jobs", type=int, default=None,
                               help="process-pool width (default serial; "
                                    "results byte-identical for any value)")
    attack_parser.add_argument("--output", metavar="FILE",
                               help="write the JSON report here instead of stdout")
    attack_parser.set_defaults(func=cmd_attack)

    fig_parser = sub.add_parser("fig", help="run a figure driver, print its table")
    fig_parser.add_argument("figure", help="fig7 ... fig15")
    fig_parser.add_argument("--duration", type=float, default=None)
    fig_parser.add_argument("--seed", type=int, default=None)
    fig_parser.add_argument("--fast", action="store_true", default=None,
                            help="compressed timeline where the driver supports it")
    fig_parser.add_argument("--jobs", type=int, default=None,
                            help="shard the figure's sweep across N processes "
                                 "(fig7/fig9/fig12; results identical to serial)")
    fig_parser.set_defaults(func=cmd_fig)

    bench_parser = sub.add_parser(
        "bench", help="run the fixed perf suite, write a BENCH_*.json"
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="CI variant: n <= 32 entries only, capped durations, single run",
    )
    bench_parser.add_argument(
        "--list", nargs="*", metavar="SUITE", default=None,
        help="print the registered suites and their entry ids and exit; "
             "with names, just those suites (simulator / search / pipeline "
             "/ metrics / plane / scale / attack)",
    )
    bench_parser.add_argument(
        "--entry", action="append", metavar="ID",
        help="run only this suite entry (repeatable), e.g. hotstuff/n128",
    )
    bench_parser.add_argument(
        "--search", action="store_true",
        help="run the optimizer-layer search suite instead of the simulator suite",
    )
    bench_parser.add_argument(
        "--pipeline", action="store_true",
        help="run the monitoring-pipeline suite (log append/dispatch, "
             "suspicion-entry processing, MIS solves) instead",
    )
    bench_parser.add_argument(
        "--metrics", action="store_true",
        help="run the measurement-plane suite (sketch ingest/merge, "
             "quantile queries, state round-trips) instead",
    )
    bench_parser.add_argument(
        "--plane", action="store_true",
        help="run the message-plane suite (object vs columnar delivery, "
             "state-trace equivalence, heap-event reduction) instead",
    )
    bench_parser.add_argument(
        "--attack", action="store_true",
        help="run the adversary-synthesis suite (objective evals/sec, "
             "search throughput, synthesized-vs-hand-authored margins) "
             "instead",
    )
    bench_parser.add_argument(
        "--scale", action="store_true",
        help="run the internet-scale suite (world-N deployments at "
             "n in {512, 1024, 4096}, per-entry subprocess with peak-RSS "
             "tracking) instead; --quick keeps n <= 512, --entry selects "
             "ids like pbft/n512",
    )
    bench_parser.add_argument(
        "--rebaseline", metavar="SUITE", default=None,
        help="run SUITE in full and rewrite its recorded baseline module "
             "(simulator / metrics / search / pipeline / plane)",
    )
    bench_parser.add_argument(
        "--note", metavar="TEXT", default=None,
        help="provenance note stored in the rebaselined module",
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="report path (default BENCH_full.json / BENCH_quick.json; "
             "BENCH_PR4.json / BENCH_search_quick.json with --search; "
             "BENCH_PR5.json / BENCH_pipeline_quick.json with --pipeline; "
             "BENCH_metrics.json / BENCH_metrics_quick.json with --metrics; "
             "BENCH_PR7.json / BENCH_plane_quick.json with --plane; "
             "BENCH_PR10.json / BENCH_scale_quick.json with --scale; "
             "BENCH_PR9.json / BENCH_attack_quick.json with --attack)",
    )
    bench_parser.set_defaults(func=cmd_bench)

    list_parser = sub.add_parser("list", help="list protocols, workloads, deployments")
    list_parser.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
