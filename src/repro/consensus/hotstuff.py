"""Chained HotStuff over a star topology (§7.3 baselines).

A fixed (``HotStuff-fixed``) or round-robin (``HotStuff-rr``) leader
proposes a block extending its highest QC; replicas vote to the next
height's leader; a quorum of votes forms the QC that certifies the block
and starts the next height.  Commit uses the 3-chain rule: a block
commits once it heads a chain of three consecutively-certified heights.

Blocks carry ``payload_per_block`` requests (the paper batches 1000
requests per block, without transaction payload), so the engine is
saturated: a new block is proposed every round, which is the regime the
throughput figures measure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.consensus.base import CommitEvent, ReplicaBase, RunMetrics
from repro.consensus.messages import Block, ClientRequest, Proposal, Reply, Vote
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import QuorumCertificate, aggregate
from repro.net.deployments import Deployment
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workloads.base import ClientSiteRouter, ClusterBinding, Workload

GENESIS_HASH = "genesis"

_VOTE_SIZE = Vote.wire_size

#: Narrower columns tally faster row-by-row than through numpy.
_BATCH_TALLY_MIN = 16


class HotStuffReplica(ReplicaBase):
    """One chained-HotStuff replica."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
        leader_mode: str = "fixed",
        fixed_leader: int = 0,
        payload_per_block: int = 1000,
    ):
        super().__init__(replica_id, n, f, sim, network, registry)
        if leader_mode not in ("fixed", "rr"):
            raise ValueError(f"unknown leader mode {leader_mode!r}")
        self.leader_mode = leader_mode
        self.fixed_leader = fixed_leader
        #: leader_of() inlined as a flag for the per-message handlers.
        self._round_robin = leader_mode == "rr"
        self.payload_per_block = payload_per_block
        self.blocks: Dict[str, Block] = {}
        self.block_at_height: Dict[int, Block] = {}
        self.votes: Dict[int, Set[int]] = {}
        self.qc_heights: Set[int] = set()
        self.high_qc: Optional[QuorumCertificate] = None
        self.last_voted_height = 0
        self.committed_height = 0
        self.running = False
        #: Request-driven mode (workload attached): blocks batch buffered
        #: client requests instead of the fixed synthetic payload, and
        #: every replica replies to clients on commit.
        self.request_driven = False
        self.pending_requests: List[ClientRequest] = []
        #: Requests already claimed by some proposal (every replica sees
        #: every Proposal, so rotating leaders do not re-batch requests a
        #: previous leader already put in flight) or already committed.
        self._claimed_requests: set = set()
        #: Previous generation of claimed keys (see compact()).
        self._claimed_requests_old: set = set()
        #: Heights at or below this were committed and compacted away.
        self._compact_floor = 0

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def leader_of(self, height: int) -> int:
        if self.leader_mode == "fixed":
            return self.fixed_leader
        return height % self.n

    def vote_target(self, height: int) -> int:
        """Votes for height h go to the proposer of h+1 (chained)."""
        return self.leader_of(height + 1)

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.running = True
        if self.leader_of(1) == self.id:
            self.propose(1, GENESIS_HASH)

    def stop(self) -> None:
        self.running = False

    def propose(self, height: int, parent: str) -> None:
        if not self.running:
            return
        if self.request_driven:
            # Empty blocks are allowed: the chain must keep extending for
            # liveness (later requests ride on later heights).
            batch = self.pending_requests[: self.payload_per_block]
            self.pending_requests = self.pending_requests[len(batch):]
            block = Block(
                height=height,
                proposer=self.id,
                parent=parent,
                payload_count=len(batch),
                timestamp=self.sim.now,
                request_ids=tuple(
                    (r.client_id, r.request_id, r.send_time) for r in batch
                ),
            )
        else:
            block = Block(
                height=height,
                proposer=self.id,
                parent=parent,
                payload_count=self.payload_per_block,
                timestamp=self.sim.now,
            )
        self.broadcast(Proposal(height=height, block=block, qc=self.high_qc))

    # ------------------------------------------------------------------
    # Client path (request-driven mode only)
    # ------------------------------------------------------------------
    def handle_ClientRequest(self, src: int, request: ClientRequest) -> None:  # noqa: N802
        if not self.running or not self.request_driven:
            return
        key = (request.client_id, request.request_id)
        if key in self._claimed_requests or key in self._claimed_requests_old:
            return
        self.pending_requests.append(request)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def handle_Proposal(self, src: int, proposal: Proposal) -> None:  # noqa: N802
        if not self.running:
            return
        block = proposal.block
        height = block.height
        leader = height % self.n if self._round_robin else self.fixed_leader
        if src != leader or block.proposer != src:
            return
        # Claim before the height check: a proposal observed out of order
        # still proves its requests are in flight, and skipping the claim
        # would let a later leader re-batch (and re-commit) them.
        if self.request_driven and block.request_ids:
            self._claim_requests(block)
        if height <= self.last_voted_height:
            return
        qc = proposal.qc
        if qc is not None:
            # _observe_qc(), inlined: the piggybacked QC is new at every
            # follower, so this runs once per proposal delivery.
            view = qc.view
            qc_heights = self.qc_heights
            if view not in qc_heights:
                qc_heights.add(view)
                high = self.high_qc
                if high is None or view > high.view:
                    self.high_qc = qc
                self._try_commit(view)
        block_hash = block.hash
        self.blocks[block_hash] = block
        self.block_at_height[height] = block
        self.last_voted_height = height
        # Chained rule: votes for h go to the proposer of h+1 (vote_target).
        # tuple.__new__ bypasses the NamedTuple __new__ wrapper frame; this
        # is the single hottest allocation in a saturated run.
        target = (height + 1) % self.n if self._round_robin else self.fixed_leader
        vote = tuple.__new__(Vote, (height, block_hash, self.id))
        self._network_send(self.id, target, vote, _VOTE_SIZE)

    def handle_Vote(self, src: int, vote: Vote) -> None:  # noqa: N802
        if not self.running:
            return
        height = vote.height
        next_leader = (height + 1) % self.n if self._round_robin else self.fixed_leader
        if next_leader != self.id:
            return
        voters = self.votes.get(height)
        if voters is None:
            voters = self.votes[height] = set()
        voters.add(vote.sender)
        if len(voters) >= self.quorum and height not in self.qc_heights:
            block = self.block_at_height.get(height)
            if block is None or block.hash != vote.block_hash:
                return
            qc = QuorumCertificate(
                view=height,
                block_hash=vote.block_hash,
                aggregate=aggregate(self.registry, vote.block_hash, voters),
                weight=float(len(voters)),
            )
            self._observe_qc(qc)
            self.propose(height + 1, vote.block_hash)

    # ------------------------------------------------------------------
    # Columnar-plane batch handlers (see Network.register_batch_endpoint
    # for the contract: process rows in order, set sim.now before side
    # effects, stop right after any row that sends or schedules)
    # ------------------------------------------------------------------
    def handle_VoteBatch(self, srcs, votes, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_Vote`: sub-quorum votes reduce to set adds.

        Semantically a loop of per-message calls; the quorum-crossing
        vote forms the QC at its own arrival time and yields control
        back, because the resulting proposal broadcast may precede the
        remaining votes in global event order.
        """
        if not self.running:
            return len(votes)
        votes_map = self.votes
        qc_heights = self.qc_heights
        quorum = self.quorum
        round_robin = self._round_robin
        fixed_leader = self.fixed_leader
        n = self.n
        my_id = self.id
        count = len(votes)
        if count >= _BATCH_TALLY_MIN:
            # Bulk tally for the common wide column: every vote carries
            # the same height (one round's fanout gathered in one run),
            # so the per-row dict/set churn collapses to set reductions.
            heights = {v[0] for v in votes}
            if len(heights) == 1:
                height = heights.pop()
                next_leader = (height + 1) % n if round_robin else fixed_leader
                if next_leader != my_id:
                    return count
                voters = votes_map.get(height)
                if voters is None:
                    voters = votes_map[height] = set()
                senders = [v[2] for v in votes]
                new_voters = set(senders)
                if height in qc_heights:
                    # QC already formed: every row is a pure set add.
                    voters.update(new_voters)
                    return count
                need = quorum - len(voters)
                if need > count:
                    # The whole column is sub-quorum: one bulk add.
                    voters.update(new_voters)
                    return count
                if len(new_voters) == count and voters.isdisjoint(
                    new_voters
                ):
                    # All-new distinct voters: quorum crosses at exactly
                    # row ``need - 1``.
                    k = need - 1
                    voters.update(senders[: k + 1])
                    block = self.block_at_height.get(height)
                    vote = votes[k]
                    if block is not None and block.hash == vote[1]:
                        self.sim.now = times[k]
                        qc = QuorumCertificate(
                            view=height,
                            block_hash=vote[1],
                            aggregate=aggregate(
                                self.registry, vote[1], voters
                            ),
                            weight=float(len(voters)),
                        )
                        self._observe_qc(qc)
                        self.propose(height + 1, vote[1])
                        return k + 1
                    # Hash mismatch at the crossing row: the per-row
                    # loop below re-checks every later row (each is at
                    # or past quorum), exactly as handle_Vote would.
                    start = k + 1
                else:
                    # Duplicate or already-seen voters: the crossing
                    # index depends on set growth; take the loop.
                    start = 0
            else:
                start = 0
        else:
            start = 0
        for k in range(start, count):
            vote = votes[k]
            # Vote rows are (height, block_hash, sender) NamedTuples;
            # indexing skips three descriptor lookups per vote.
            height = vote[0]
            next_leader = (height + 1) % n if round_robin else fixed_leader
            if next_leader != my_id:
                continue
            voters = votes_map.get(height)
            if voters is None:
                voters = votes_map[height] = set()
            voters.add(vote[2])
            if len(voters) >= quorum and height not in qc_heights:
                block = self.block_at_height.get(height)
                block_hash = vote[1]
                if block is None or block.hash != block_hash:
                    continue
                self.sim.now = times[k]
                qc = QuorumCertificate(
                    view=height,
                    block_hash=block_hash,
                    aggregate=aggregate(self.registry, block_hash, voters),
                    weight=float(len(voters)),
                )
                self._observe_qc(qc)
                self.propose(height + 1, block_hash)
                return k + 1
        return count

    def handle_ClientRequestBatch(self, srcs, requests, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_ClientRequest`: pure buffer appends."""
        if not self.running or not self.request_driven:
            return len(requests)
        claimed = self._claimed_requests
        claimed_old = self._claimed_requests_old
        pending = self.pending_requests
        for request in requests:
            key = (request.client_id, request.request_id)
            if key in claimed or key in claimed_old:
                continue
            pending.append(request)
        return len(requests)

    # ------------------------------------------------------------------
    # QCs and commit rule
    # ------------------------------------------------------------------
    def _observe_qc(self, qc: QuorumCertificate) -> None:
        view = qc.view
        qc_heights = self.qc_heights
        if view in qc_heights:
            return
        qc_heights.add(view)
        high = self.high_qc
        if high is None or view > high.view:
            self.high_qc = qc
        self._try_commit(view)

    def _try_commit(self, height: int) -> None:
        """3-chain rule: QCs at h, h-1, h-2 commit the block at h-2."""
        if height < 3:
            return
        qc_heights = self.qc_heights
        if height - 1 not in qc_heights or height - 2 not in qc_heights:
            return
        target = height - 2
        committed = self.committed_height
        if target <= committed:
            return
        if target == committed + 1:
            # Common case: QCs arrive in height order, one new commit.
            # record_commit() inlined (one commit per replica per height),
            # with the same fast construction as the vote path.
            block = self.block_at_height.get(target)
            if block is not None:
                self._commits_append(
                    tuple.__new__(
                        CommitEvent,
                        (target, self.sim.now, block.timestamp, block.payload_count),
                    )
                )
                if self.request_driven and block.request_ids:
                    self._reply_to_clients(block)
            self.committed_height = target
            return
        for commit_height in range(committed + 1, target + 1):
            block = self.block_at_height.get(commit_height)
            if block is None:
                continue
            self.metrics.record_commit(
                commit_height, self.sim.now, block.timestamp, block.payload_count
            )
            if self.request_driven and block.request_ids:
                self._reply_to_clients(block)
        self.committed_height = target

    def _claim_requests(self, block: Block) -> None:
        keys = {(cid, rid) for cid, rid, _send_time in block.request_ids}
        self._claimed_requests |= keys
        self.pending_requests = [
            request
            for request in self.pending_requests
            if (request.client_id, request.request_id) not in keys
        ]

    def _reply_to_clients(self, block: Block) -> None:
        for client_id, request_id, _send_time in block.request_ids:
            self.send(client_id, Reply(self.id, request_id, self.sim.now))

    # ------------------------------------------------------------------
    # Campaign-plane compaction
    # ------------------------------------------------------------------
    def compact(self, keep: int = 128) -> None:
        """Drop per-height state below ``committed_height - keep``.

        Every read of the pruned maps is guarded (missing block/votes ->
        ignore), so late messages for pruned heights are dropped like
        duplicates; see ``PbftReplica.compact`` for the generational
        claimed-key scheme.  Deterministic by construction.
        """
        floor = self.committed_height - keep
        if floor > self._compact_floor:
            for height in [h for h in self.block_at_height if h <= floor]:
                block = self.block_at_height.pop(height)
                self.blocks.pop(block.hash, None)
            for height in [h for h in self.votes if h <= floor]:
                del self.votes[height]
            self.qc_heights = {h for h in self.qc_heights if h > floor}
            self._compact_floor = floor
        self._claimed_requests_old = self._claimed_requests
        self._claimed_requests = set()


class HotStuffCluster:
    """Builds and runs a HotStuff deployment (Fig. 9 baselines)."""

    def __init__(
        self,
        deployment: Deployment,
        f: Optional[int] = None,
        leader_mode: str = "fixed",
        fixed_leader: int = 0,
        payload_per_block: int = 1000,
        seed: int = 0,
        jitter: float = 0.02,
        plane: str = "object",
    ):
        self.deployment = deployment
        n = deployment.n
        self.n = n
        self.f = f if f is not None else (n - 1) // 3
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, deployment.one_way, jitter=jitter, plane=plane)
        self.registry = KeyRegistry(n, seed=seed)
        self.replicas: List[HotStuffReplica] = [
            HotStuffReplica(
                replica_id,
                n,
                self.f,
                self.sim,
                self.network,
                self.registry,
                leader_mode=leader_mode,
                fixed_leader=fixed_leader,
                payload_per_block=payload_per_block,
            )
            for replica_id in range(n)
        ]
        self.workload: Optional[Workload] = None

    def attach_workload(self, workload: Workload, client_city: int = 0) -> None:
        """Switch the cluster to request-driven mode under ``workload``.

        Blocks then batch real client requests (payload capped at
        ``payload_per_block``) instead of the fixed synthetic payload,
        and clients collect ``f + 1`` replies per request.
        """
        self.router = ClientSiteRouter(
            self.deployment.one_way, self.n, default_site=client_city
        )
        self.network.one_way_delay = self.router
        for replica in self.replicas:
            replica.request_driven = True
        workload.bind(
            ClusterBinding(
                sim=self.sim,
                network=self.network,
                n=self.n,
                f=self.f,
                replies_needed=self.f + 1,
                place_client=self.router.place,
            )
        )
        self.workload = workload

    def run(self, duration: float) -> RunMetrics:
        """Run for ``duration`` simulated seconds; returns observer metrics.

        The observer is a non-leader replica, like the paper's throughput
        probes.
        """
        self.begin()
        self.sim.run(until=duration)
        return self.finish()

    def begin(self) -> None:
        """Start replicas/workload; see ``PbftCluster.begin`` for the
        begin/slice/finish campaign contract."""
        for replica in self.replicas:
            replica.start()
        if self.workload is not None:
            self.workload.start()

    def finish(self) -> RunMetrics:
        if self.workload is not None:
            self.workload.stop()
        for replica in self.replicas:
            replica.stop()
        return self.observer.metrics

    def compact(self, keep: int = 128) -> None:
        """Prune dead per-height state on every replica (campaign
        slice boundaries; see ``HotStuffReplica.compact``)."""
        for replica in self.replicas:
            replica.compact(keep)

    @property
    def observer(self) -> HotStuffReplica:
        leader = self.replicas[0].leader_of(1)
        return self.replicas[(leader + 1) % self.n]
