"""Protocol messages for PBFT, HotStuff and Kauri.

Wire sizes model compact binary encodings with Ed25519-equivalent
signatures; the proposal-size experiment (Fig. 13) sums the record sizes
piggybacked on :class:`Block` proposals.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.signatures import SIGNATURE_SIZE
from repro.crypto.threshold import AggregateSignature, QuorumCertificate

BLOCK_HEADER_SIZE = 48  # parent hash + height + proposer + timestamp


def _digest(*parts) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Block:
    """A batch of client requests plus piggybacked OptiLog records."""

    height: int
    proposer: int
    parent: str
    payload_count: int = 0
    records: Tuple = ()
    timestamp: float = 0.0
    request_ids: Tuple = ()

    @property
    def hash(self) -> str:
        return _digest(
            self.height, self.proposer, self.parent, self.payload_count,
            self.records, self.request_ids,
        )

    @property
    def records_size(self) -> int:
        return sum(getattr(record, "wire_size", 0) for record in self.records)

    @property
    def wire_size(self) -> int:
        # Payload entries are request digests (32 B each) in the paper's
        # no-payload setting.
        return (
            BLOCK_HEADER_SIZE
            + 32 * len(self.request_ids)
            + self.records_size
            + SIGNATURE_SIZE
        )


# ----------------------------------------------------------------------
# Client traffic
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClientRequest:
    client_id: int
    request_id: int
    send_time: float

    @property
    def wire_size(self) -> int:
        return 32 + SIGNATURE_SIZE


@dataclass(frozen=True)
class Reply:
    replica: int
    request_id: int
    commit_time: float

    @property
    def wire_size(self) -> int:
        return 16 + SIGNATURE_SIZE


# ----------------------------------------------------------------------
# PBFT phases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrePrepare:
    view: int
    seq: int
    block: Block
    timestamp: float

    @property
    def wire_size(self) -> int:
        return 16 + self.block.wire_size + SIGNATURE_SIZE


@dataclass(frozen=True)
class Prepare:
    view: int
    seq: int
    block_hash: str
    sender: int

    @property
    def wire_size(self) -> int:
        return 32 + SIGNATURE_SIZE


@dataclass(frozen=True)
class Commit:
    view: int
    seq: int
    block_hash: str
    sender: int

    @property
    def wire_size(self) -> int:
        return 32 + SIGNATURE_SIZE


# ----------------------------------------------------------------------
# HotStuff / Kauri
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Proposal:
    height: int
    block: Block
    qc: Optional[QuorumCertificate]

    @property
    def wire_size(self) -> int:
        qc_size = self.qc.wire_size if self.qc is not None else 0
        return 8 + self.block.wire_size + qc_size


@dataclass(frozen=True)
class Vote:
    height: int
    block_hash: str
    sender: int

    @property
    def wire_size(self) -> int:
        return 24 + SIGNATURE_SIZE


@dataclass(frozen=True)
class Forward:
    """Forwarded proposal: intermediate node → leaf (Kauri)."""

    height: int
    block: Block
    forwarder: int

    @property
    def wire_size(self) -> int:
        return 8 + self.block.wire_size


@dataclass(frozen=True)
class AggregateVote:
    """Aggregated subtree votes: intermediate node → root (Kauri).

    Per OptiTree's misbehavior rule (§6.3) the aggregate must cover every
    child position with a vote or a suspicion.
    """

    height: int
    block_hash: str
    sender: int
    aggregate: AggregateSignature

    @property
    def wire_size(self) -> int:
        return 24 + self.aggregate.wire_size


# ----------------------------------------------------------------------
# Measurements and control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RecordGossip:
    """A sensor record on its way to the current proposer.

    ``hops`` bounds re-forwarding during leader changes (a replica that
    is no longer leader forwards gossip to the leader it now follows).
    """

    record: object
    sender: int
    hops: int = 0

    @property
    def wire_size(self) -> int:
        return getattr(self.record, "wire_size", 0) + 8


@dataclass(frozen=True)
class Probe:
    nonce: int
    sender: int
    send_time: float

    @property
    def wire_size(self) -> int:
        return 16


@dataclass(frozen=True)
class ProbeReply:
    nonce: int
    sender: int
    probe_send_time: float

    @property
    def wire_size(self) -> int:
        return 16
