"""Protocol messages for PBFT, HotStuff and Kauri.

Wire sizes model compact binary encodings with Ed25519-equivalent
signatures; the proposal-size experiment (Fig. 13) sums the record sizes
piggybacked on :class:`Block` proposals.

Representation note: simulations create one message object per protocol
step, millions per large run, so the fixed-shape messages are
``NamedTuple``\\ s (C-speed construction, immutable, keyword-friendly)
rather than frozen dataclasses, whose generated ``__init__`` costs ~2x
more per instance.  :class:`Block` stays a frozen dataclass: it is
created once per consensus instance and needs an instance ``__dict__``
to cache its digest and wire size.  Fixed-size messages expose
``wire_size`` as a class constant; variable-size ones as a property.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

from repro.crypto.signatures import SIGNATURE_SIZE
from repro.crypto.threshold import AggregateSignature, QuorumCertificate

BLOCK_HEADER_SIZE = 48  # parent hash + height + proposer + timestamp


def _digest(*parts) -> str:
    return hashlib.sha256(repr(parts).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Block:
    """A batch of client requests plus piggybacked OptiLog records."""

    height: int
    proposer: int
    parent: str
    payload_count: int = 0
    records: Tuple = ()
    timestamp: float = 0.0
    request_ids: Tuple = ()

    # The block digest ``hash`` is computed once at construction and
    # stored as a plain instance attribute (not a dataclass field, not a
    # property): the same Block object is shared by every replica's
    # Proposal/Forward deliveries, which used to re-hash it on every
    # access, and even a cached property would pay a descriptor call per
    # access on the per-message path.  Every block that exists gets hashed
    # (its proposer chains on it immediately), so eagerness wastes nothing.
    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "hash",
            _digest(
                self.height, self.proposer, self.parent, self.payload_count,
                self.records, self.request_ids,
            ),
        )

    @property
    def records_size(self) -> int:
        return sum(getattr(record, "wire_size", 0) for record in self.records)

    @property
    def wire_size(self) -> int:
        # Payload entries are request digests (32 B each) in the paper's
        # no-payload setting.  Cached: records/request_ids are immutable.
        cached = self.__dict__.get("_wire_size")
        if cached is None:
            cached = (
                BLOCK_HEADER_SIZE
                + 32 * len(self.request_ids)
                + self.records_size
                + SIGNATURE_SIZE
            )
            object.__setattr__(self, "_wire_size", cached)
        return cached


# ----------------------------------------------------------------------
# Client traffic
# ----------------------------------------------------------------------
class ClientRequest(NamedTuple):
    client_id: int
    request_id: int
    send_time: float

    wire_size = 32 + SIGNATURE_SIZE


class Reply(NamedTuple):
    replica: int
    request_id: int
    commit_time: float

    wire_size = 16 + SIGNATURE_SIZE


# ----------------------------------------------------------------------
# PBFT phases
# ----------------------------------------------------------------------
class PrePrepare(NamedTuple):
    view: int
    seq: int
    block: Block
    timestamp: float

    @property
    def wire_size(self) -> int:
        return 16 + self.block.wire_size + SIGNATURE_SIZE


class Prepare(NamedTuple):
    view: int
    seq: int
    block_hash: str
    sender: int

    wire_size = 32 + SIGNATURE_SIZE


class Commit(NamedTuple):
    view: int
    seq: int
    block_hash: str
    sender: int

    wire_size = 32 + SIGNATURE_SIZE


# ----------------------------------------------------------------------
# HotStuff / Kauri
# ----------------------------------------------------------------------
class Proposal(NamedTuple):
    height: int
    block: Block
    qc: Optional[QuorumCertificate]

    @property
    def wire_size(self) -> int:
        qc_size = self.qc.wire_size if self.qc is not None else 0
        return 8 + self.block.wire_size + qc_size


class Vote(NamedTuple):
    height: int
    block_hash: str
    sender: int

    wire_size = 24 + SIGNATURE_SIZE


class Forward(NamedTuple):
    """Forwarded proposal: intermediate node → leaf (Kauri)."""

    height: int
    block: Block
    forwarder: int

    @property
    def wire_size(self) -> int:
        return 8 + self.block.wire_size


class AggregateVote(NamedTuple):
    """Aggregated subtree votes: intermediate node → root (Kauri).

    Per OptiTree's misbehavior rule (§6.3) the aggregate must cover every
    child position with a vote or a suspicion.
    """

    height: int
    block_hash: str
    sender: int
    aggregate: AggregateSignature

    @property
    def wire_size(self) -> int:
        return 24 + self.aggregate.wire_size


# ----------------------------------------------------------------------
# Measurements and control
# ----------------------------------------------------------------------
class RecordGossip(NamedTuple):
    """A sensor record on its way to the current proposer.

    ``hops`` bounds re-forwarding during leader changes (a replica that
    is no longer leader forwards gossip to the leader it now follows).
    """

    record: object
    sender: int
    hops: int = 0

    @property
    def wire_size(self) -> int:
        return getattr(self.record, "wire_size", 0) + 8


class Probe(NamedTuple):
    nonce: int
    sender: int
    send_time: float

    wire_size = 16


class ProbeReply(NamedTuple):
    nonce: int
    sender: int
    probe_send_time: float

    wire_size = 16
