"""Event-driven consensus engines over the simulated network.

* :mod:`repro.consensus.pbft` -- PBFT/BFT-SMaRt-style three-phase engine
  with Wheat weighted quorums; hosts Aware and OptiAware (Fig. 7).
* :mod:`repro.consensus.hotstuff` -- chained HotStuff over a star
  topology with fixed or round-robin leader (Fig. 9 baselines).
* :mod:`repro.consensus.kauri` -- tree-based dissemination/aggregation
  with pipelining, Kauri reconfiguration and OptiTree integration
  (Figs. 9, 11, 15).

Documented simplifications (see DESIGN.md §5): view/tree changes are
driven by the deterministic OptiLog log state rather than a full
view-change sub-protocol -- every correct replica derives the same
decision from the same committed prefix, which is the property a real
view change establishes.  Safety of the commit rules themselves is
implemented and tested (no two correct replicas commit different blocks
at a height).
"""

from repro.consensus.messages import Block, ClientRequest, Reply
from repro.consensus.hotstuff import HotStuffCluster
from repro.consensus.kauri import KauriCluster
from repro.consensus.pbft import PbftCluster

__all__ = [
    "Block",
    "ClientRequest",
    "HotStuffCluster",
    "KauriCluster",
    "PbftCluster",
    "Reply",
]
