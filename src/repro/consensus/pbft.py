"""PBFT/BFT-SMaRt engine hosting Aware and OptiAware (§5, Fig. 7).

Three operating modes, matching the Fig. 7 baselines:

* ``"static"`` -- BFT-SMaRt: fixed leader 0, uniform weights, no
  measurement machinery.
* ``"aware"`` -- Aware: probe-based latency measurement plus periodic
  (leader, Vmax) optimization; **no** suspicion handling, so a leader
  that answers probes promptly but delays protocol messages is never
  detected.
* ``"optiaware"`` -- OptiAware: Aware plus OptiLog's suspicion pipeline;
  delayed protocol messages raise suspicions, the attacker drops out of
  the candidate set ``K``, and the next reconfiguration excludes it.

Message pattern (BFT-SMaRt names; PBFT's in parentheses): Propose
(Pre-Prepare) → Write (Prepare) → Accept (Commit), with Wheat weighted
quorums.  One instance runs at a time (BFT-SMaRt's default), driven by a
closed-loop client; measurement records ride in the leader's blocks.

Condition (a) of the suspicion table (proposal-timestamp pacing) is not
armed in this engine: with closed-loop clients, round spacing is
client-driven, so only saturated pipelines (Kauri/OptiTree) can
meaningfully pace-check the leader.  Condition (b) -- late protocol
messages relative to the proposal timestamp -- is what detects the
Pre-Prepare delay attack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

import numpy as np

from repro.aware.optiaware import OptiAware
from repro.aware.weights import WeightConfiguration
from repro.consensus.base import ReplicaBase, RunMetrics
from repro.consensus.messages import (
    Block,
    ClientRequest,
    Commit,
    PrePrepare,
    Prepare,
    Probe,
    ProbeReply,
    RecordGossip,
    Reply,
)
from repro.core.pipeline import PipelineSettings
from repro.core.records import LatencyVectorRecord
from repro.crypto.signatures import KeyRegistry
from repro.net.deployments import Deployment
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workloads.base import ClientSiteRouter, ClusterBinding, Workload
from repro.workloads.closed_loop import ClosedLoopClient  # noqa: F401  (back-compat re-export)
from repro.workloads.closed_loop import ClosedLoopWorkload

#: Narrower columns tally faster row-by-row than through numpy.
_BATCH_TALLY_MIN = 16

#: The uniform-voting tally is numpy-free (count arithmetic plus one
#: bitmask pass), so it beats the per-row loop -- which pays a dict
#: round-trip and a quorum probe per row -- from two rows up.  Only the
#: weighted tally needs the numpy-amortizing threshold above.
_BATCH_TALLY_MIN_UNIFORM = 2

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - 3.9 fallback

    def _popcount(value: int) -> int:
        return bin(value).count("1")


class PbftReplica(ReplicaBase):
    """One PBFT replica, optionally wrapped with Aware/OptiAware."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
        mode: str = "static",
        delta: float = 1.0,
        batch_size: int = 64,
        default_config: Optional[WeightConfiguration] = None,
    ):
        super().__init__(replica_id, n, f, sim, network, registry)
        if mode not in ("static", "aware", "optiaware"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode
        self.batch_size = batch_size
        self.delta = delta
        # Consensus state.
        self.seq = 0
        self.executed_seq = 0
        self.pending_requests: List[ClientRequest] = []
        self.pending_records: List = []
        self.preprepares: Dict[int, PrePrepare] = {}
        self.prepare_weight: Dict[int, float] = {}
        # Sender accumulators are int bitmasks (bit ``src`` set once the
        # sender's vote landed), not sets: a CPython set of ~n small ints
        # costs tens of KB per seq at n=4096 (~860 MB across in-flight
        # seqs and replicas), an n-bit int a few hundred bytes.  Senders
        # are unhashed by the trace oracle, so the representation swap
        # leaves seeded state traces bit-identical.
        self.prepare_senders: Dict[int, int] = {}
        self.commit_weight: Dict[int, float] = {}
        self.commit_senders: Dict[int, int] = {}
        self.sent_commit: Set[int] = set()
        self.executed: Set[int] = set()
        self.in_flight: Optional[int] = None
        self.running = False
        # Aware / OptiAware stack.
        self.optilog: Optional[OptiAware] = None
        if mode in ("aware", "optiaware"):
            self.optilog = OptiAware(
                replica_id,
                n,
                f,
                registry=registry,
                settings=PipelineSettings(n=n, f=f, delta=delta),
                propose=self._gossip_record,
                use_suspicions=(mode == "optiaware"),
                on_reconfigure=self._on_reconfigure,
            )
            self.config = self.optilog.default_configuration()
        elif default_config is not None:
            # Shared across the cluster's replicas: the static default is
            # identical and immutable, and its vmax frozenset is O(n) --
            # per-replica copies cost O(n^2) at build (~1.4 GB at n=4096).
            self.config = default_config
        else:
            self.config = WeightConfiguration(
                n=n, f=f, leader=0, vmax_replicas=frozenset(range(2 * f))
            )
        #: BFT-SMaRt without Wheat: uniform votes, majority quorum.
        self.uniform_voting = mode == "static"
        self._uniform_quorum = float(-(-(n + f + 1) // 2))  # ceil majority
        self.pending_config: Optional[WeightConfiguration] = None
        self.reconfigure_times: List[float] = []
        #: PrePrepares from replicas that are not (yet) our leader; they
        #: are replayed after a reconfiguration adopts that leader.
        self.stale_preprepares: Dict[int, List[PrePrepare]] = {}
        if mode == "optiaware":
            # Suspicion bookkeeping can raise (and gossip) the moment a
            # late Prepare/Commit arrives, so any row may send -- which
            # the batch-handler contract cannot express without yielding
            # after every row.  Shadow the class-level batch handlers with
            # None: the columnar drain then delivers per row, which is
            # exactly the object plane's semantics.
            self.handle_PrepareBatch = None
            self.handle_CommitBatch = None
        self._committed_requests: Set = set()
        #: Previous generation of committed request keys (see compact()).
        self._committed_requests_old: Set = set()
        #: Seqs at or below this were executed and compacted away; late
        #: messages for them are ignored like any other duplicate.
        self._compact_floor = 0

    # ------------------------------------------------------------------
    # Roles and weights
    # ------------------------------------------------------------------
    @property
    def leader(self) -> int:
        return self.config.leader

    @property
    def is_leader(self) -> bool:
        return self.leader == self.id

    def _weight(self, sender: int) -> float:
        if self.uniform_voting:
            return 1.0
        return self.config.weight_of(sender)

    @property
    def _quorum_weight(self) -> float:
        if self.uniform_voting:
            return self._uniform_quorum
        return self.config.quorum_weight

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    def handle_ClientRequest(self, src: int, request: ClientRequest) -> None:  # noqa: N802
        if not self.running:
            return
        # Every replica buffers requests (BFT-SMaRt clients send to all);
        # whoever is leader when proposing drains the buffer, so requests
        # survive leader changes.
        key = (request.client_id, request.request_id)
        if key in self._committed_requests or key in self._committed_requests_old:
            return
        self.pending_requests.append(request)
        if self.is_leader:
            self._maybe_propose()

    def _maybe_propose(self) -> None:
        if not self.running or not self.is_leader or self.in_flight is not None:
            return
        if not self.pending_requests and not self.pending_records:
            return
        batch = self.pending_requests[: self.batch_size]
        self.pending_requests = self.pending_requests[len(batch):]
        records = tuple(self.pending_records)
        self.pending_records = []
        self.seq += 1
        block = Block(
            height=self.seq,
            proposer=self.id,
            parent="",
            payload_count=len(batch),
            records=records,
            timestamp=self.sim.now,
            request_ids=tuple((r.client_id, r.request_id, r.send_time) for r in batch),
        )
        self.in_flight = self.seq
        message = PrePrepare(
            view=self.log_view, seq=self.seq, block=block, timestamp=self.sim.now
        )
        self.broadcast(message)

    @property
    def log_view(self) -> int:
        return len(self.reconfigure_times)

    # ------------------------------------------------------------------
    # Three phases
    # ------------------------------------------------------------------
    def handle_PrePrepare(self, src: int, message: PrePrepare) -> None:  # noqa: N802
        if not self.running:
            return
        if src != self.leader:
            # Possibly a new leader we have not adopted yet; replay later.
            self.stale_preprepares.setdefault(src, []).append(message)
            return
        if message.seq in self.preprepares or message.seq <= self._compact_floor:
            return
        self.preprepares[message.seq] = message
        if self.optilog is not None:
            self._arm_suspicion_round(message)
            self._note_arrival(message.seq, src, "propose")
        self.broadcast(
            Prepare(
                view=message.view,
                seq=message.seq,
                block_hash=message.block.hash,
                sender=self.id,
            )
        )

    def handle_Prepare(self, src: int, message: Prepare) -> None:  # noqa: N802
        if not self.running:
            return
        seq = message.seq
        senders = self.prepare_senders.get(seq, 0)
        bit = 1 << src
        if senders & bit:
            return
        self.prepare_senders[seq] = senders | bit
        if self.optilog is not None:
            self._note_arrival(seq, src, "write")
        self.prepare_weight[seq] = self.prepare_weight.get(seq, 0.0) + self._weight(src)
        self._maybe_send_commit(seq)

    def _maybe_send_commit(self, seq: int) -> None:
        if seq in self.sent_commit or seq not in self.preprepares:
            return
        if self.prepare_weight.get(seq, 0.0) < self._quorum_weight:
            return
        self.sent_commit.add(seq)
        preprepare = self.preprepares[seq]
        self.broadcast(
            Commit(
                view=preprepare.view,
                seq=seq,
                block_hash=preprepare.block.hash,
                sender=self.id,
            )
        )

    def handle_Commit(self, src: int, message: Commit) -> None:  # noqa: N802
        if not self.running:
            return
        seq = message.seq
        senders = self.commit_senders.get(seq, 0)
        bit = 1 << src
        if senders & bit:
            return
        self.commit_senders[seq] = senders | bit
        if self.optilog is not None:
            self._note_arrival(seq, src, "accept")
        self.commit_weight[seq] = self.commit_weight.get(seq, 0.0) + self._weight(src)
        self._maybe_execute(seq)

    # ------------------------------------------------------------------
    # Columnar-plane batch handlers (see Network.register_batch_endpoint
    # for the contract: process rows in order, set sim.now before side
    # effects, stop right after any row that sends or schedules).
    # Disabled per instance in optiaware mode (see __init__): there a
    # late arrival can gossip a suspicion from inside _note_arrival.
    # ------------------------------------------------------------------
    def _tally_batch(
        self, srcs, messages, times, senders_map, weight_map, armed, fire
    ) -> Optional[int]:
        """numpy reduction over one ack column (Prepare or Commit rows).

        Applies when the column is *regular*: one seq throughout,
        all-new distinct senders.  Sub-quorum rows collapse to a bulk
        set update plus a sequential ``np.cumsum`` of the sender weights
        (bit-identical to the per-row float adds: cumsum folds left in
        order), and the quorum-crossing row -- the first partial sum at
        or past the quorum weight, found by ``searchsorted`` -- calls
        ``fire`` at its own arrival time when ``armed``.  Returns the
        consumed count, or ``None`` to fall back to the per-row loop.
        """
        count = len(messages)
        # Prepare and Commit rows both carry ``seq`` at index 1; set
        # comprehensions beat numpy extraction for these checks.
        seqset = {m[1] for m in messages}
        if len(seqset) != 1:
            return None
        seq = seqset.pop()
        mask = 0
        for src in srcs:
            mask |= 1 << src
        if _popcount(mask) != count:
            return None
        senders = senders_map.get(seq, 0)
        if senders & mask:
            return None
        sim = self.sim
        pre = weight_map.get(seq, 0.0)
        if self.uniform_voting:
            # Count-only tally: every weight is exactly 1.0, so the
            # running totals are the exact floats ``pre + 1 ..
            # pre + count`` and the crossing index is arithmetic --
            # bit-identical to the cumsum it replaces (integers below
            # 2**53), without materializing any weight arrays.
            full = pre + float(count)
            if not armed or full < self._quorum_weight:
                senders_map[seq] = senders | mask
                weight_map[seq] = full
                sim.now = times[count - 1]
                return count
            k = int(self._quorum_weight - pre) - 1
            if k < 0:
                k = 0
            partial = 0
            for src in srcs[: k + 1]:
                partial |= 1 << src
            senders_map[seq] = senders | partial
            weight_map[seq] = pre + float(k + 1)
            sim.now = times[k]
            fire(seq)
            return k + 1
        weight_of = self._weight
        weights = np.empty(count + 1)
        weights[1:] = np.fromiter(
            (weight_of(src) for src in srcs), dtype=float, count=count
        )
        weights[0] = pre
        totals = np.cumsum(weights)
        if not armed:
            senders_map[seq] = senders | mask
            weight_map[seq] = totals.item(count)
            sim.now = times[count - 1]
            return count
        # First row whose running weight reaches the quorum (totals[0]
        # is the pre-batch weight, so row k's total is totals[k + 1]).
        k = int(np.searchsorted(totals[1:], self._quorum_weight))
        if k >= count:
            senders_map[seq] = senders | mask
            weight_map[seq] = totals.item(count)
            sim.now = times[count - 1]
            return count
        partial = 0
        for src in srcs[: k + 1]:
            partial |= 1 << src
        senders_map[seq] = senders | partial
        weight_map[seq] = totals.item(k + 1)
        sim.now = times[k]
        fire(seq)
        return k + 1

    def handle_PrepareBatch(self, srcs, messages, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_Prepare`: sub-quorum prepares reduce to a
        set add plus a weight accumulate; the quorum-crossing prepare
        broadcasts our Commit at its own arrival time and yields."""
        if not self.running:
            return len(messages)
        sim = self.sim
        prepare_senders = self.prepare_senders
        prepare_weight = self.prepare_weight
        sent_commit = self.sent_commit
        note = self.optilog is not None
        weight_of = self._weight
        count = len(messages)
        tally_min = (
            _BATCH_TALLY_MIN_UNIFORM
            if self.uniform_voting
            else _BATCH_TALLY_MIN
        )
        if count >= tally_min and not note:
            consumed = self._tally_batch(
                srcs,
                messages,
                times,
                prepare_senders,
                prepare_weight,
                armed=(
                    messages[0].seq in self.preprepares
                    and messages[0].seq not in sent_commit
                ),
                fire=self._maybe_send_commit,
            )
            if consumed is not None:
                return consumed
        for k in range(count):
            message = messages[k]
            seq = message.seq
            senders = prepare_senders.get(seq, 0)
            src = srcs[k]
            bit = 1 << src
            if senders & bit:
                continue
            sim.now = times[k]
            prepare_senders[seq] = senders | bit
            if note:
                self._note_arrival(seq, src, "write")
            prepare_weight[seq] = prepare_weight.get(seq, 0.0) + weight_of(src)
            if seq not in sent_commit:
                self._maybe_send_commit(seq)
                if seq in sent_commit:
                    return k + 1
        return count

    def handle_CommitBatch(self, srcs, messages, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_Commit`; the quorum-crossing commit executes
        the block (replies, config adoption, next proposal) at its own
        arrival time and yields."""
        if not self.running:
            return len(messages)
        sim = self.sim
        commit_senders = self.commit_senders
        commit_weight = self.commit_weight
        executed = self.executed
        note = self.optilog is not None
        weight_of = self._weight
        count = len(messages)
        tally_min = (
            _BATCH_TALLY_MIN_UNIFORM
            if self.uniform_voting
            else _BATCH_TALLY_MIN
        )
        if count >= tally_min and not note:
            seq0 = messages[0].seq
            consumed = self._tally_batch(
                srcs,
                messages,
                times,
                commit_senders,
                commit_weight,
                armed=(
                    seq0 in self.sent_commit
                    and seq0 in self.preprepares
                    and seq0 not in executed
                ),
                fire=self._maybe_execute,
            )
            if consumed is not None:
                return consumed
        for k in range(count):
            message = messages[k]
            seq = message.seq
            senders = commit_senders.get(seq, 0)
            src = srcs[k]
            bit = 1 << src
            if senders & bit:
                continue
            sim.now = times[k]
            commit_senders[seq] = senders | bit
            if note:
                self._note_arrival(seq, src, "accept")
            commit_weight[seq] = commit_weight.get(seq, 0.0) + weight_of(src)
            if seq not in executed:
                self._maybe_execute(seq)
                if seq in executed:
                    return k + 1
        return count

    def handle_ClientRequestBatch(self, srcs, requests, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_ClientRequest`: buffer appends are pure; at
        the leader a request that starts a proposal broadcasts and
        yields."""
        if not self.running:
            return len(requests)
        committed = self._committed_requests
        committed_old = self._committed_requests_old
        is_leader = self.is_leader
        sim = self.sim
        count = len(requests)
        for k in range(count):
            request = requests[k]
            key = (request.client_id, request.request_id)
            if key in committed or key in committed_old:
                continue
            # _maybe_propose rebinds pending_requests when it proposes, so
            # read the attribute fresh rather than holding an alias.
            self.pending_requests.append(request)
            if is_leader:
                sim.now = times[k]
                before = self.in_flight
                self._maybe_propose()
                if self.in_flight is not before:
                    return k + 1
        return count

    def _maybe_execute(self, seq: int) -> None:
        if seq in self.executed or seq not in self.preprepares:
            return
        if seq in self.sent_commit and self.commit_weight.get(seq, 0.0) >= self._quorum_weight:
            self.executed.add(seq)
            self.executed_seq = max(self.executed_seq, seq)
            block = self.preprepares[seq].block
            self.metrics.record_commit(
                seq, self.sim.now, block.timestamp, block.payload_count
            )
            committed_keys = set()
            for client_id, request_id, _send_time in block.request_ids:
                self.send(client_id, Reply(self.id, request_id, self.sim.now))
                committed_keys.add((client_id, request_id))
            self._committed_requests |= committed_keys
            self.pending_requests = [
                request
                for request in self.pending_requests
                if (request.client_id, request.request_id) not in committed_keys
            ]
            if self.optilog is not None and block.records:
                # Gossip bursts commit whole blocks of records at once;
                # the batched path hoists the per-append lookups.
                self.optilog.pipeline.log.append_many(block.records)
            self._adopt_pending_config()
            if self.in_flight == seq:
                self.in_flight = None
            self._maybe_propose()

    # ------------------------------------------------------------------
    # Campaign-plane compaction
    # ------------------------------------------------------------------
    def compact(self, keep: int = 128) -> None:
        """Drop per-sequence state the protocol can no longer read.

        Called at campaign slice boundaries so multi-million-request runs
        keep O(1) consensus memory.  Only *executed* seqs at least
        ``keep`` behind ``executed_seq`` are pruned; every handler guard
        already treats a missing entry as "done, ignore", so late
        messages for pruned seqs are dropped exactly like duplicates.
        Committed request keys use two generations: a key survives at
        least one full compaction interval, which exceeds any in-flight
        client request's delivery time, so de-duplication never misses.
        Deterministic: pruning is a pure function of replica state.
        """
        # Vote accumulators are dead the moment a seq executes: the
        # prepare path returns at ``sent_commit`` and the commit path at
        # ``executed`` before either reads them again, so they can go for
        # EVERY executed seq -- including the keep window, whose
        # preprepare/sent_commit/executed entries the guards still need.
        # A late vote merely re-creates a small fresh accumulator that
        # nothing ever reads.
        for seq in self.executed:
            self.prepare_weight.pop(seq, None)
            self.prepare_senders.pop(seq, None)
            self.commit_weight.pop(seq, None)
            self.commit_senders.pop(seq, None)
        floor = self.executed_seq - keep
        if floor > self._compact_floor:
            for seq in [s for s in self.executed if s <= floor]:
                self.preprepares.pop(seq, None)
                self.prepare_weight.pop(seq, None)
                self.prepare_senders.pop(seq, None)
                self.commit_weight.pop(seq, None)
                self.commit_senders.pop(seq, None)
                self.sent_commit.discard(seq)
                self.executed.discard(seq)
            self._compact_floor = floor
        self._committed_requests_old = self._committed_requests
        self._committed_requests = set()

    # ------------------------------------------------------------------
    # OptiLog integration
    # ------------------------------------------------------------------
    def _gossip_record(self, record) -> None:
        """Sensor-app transport: ship the record to the current leader."""
        self.send(self.leader, RecordGossip(record=record, sender=self.id))

    def handle_RecordGossip(self, src: int, message: RecordGossip) -> None:  # noqa: N802
        if not self.running:
            return
        if not self.is_leader:
            # Forward to whoever we currently follow (bounded hops so a
            # transient leadership disagreement cannot loop forever).
            if message.hops < 3:
                self.send(
                    self.leader,
                    RecordGossip(
                        record=message.record,
                        sender=message.sender,
                        hops=message.hops + 1,
                    ),
                )
            return
        self.pending_records.append(message.record)
        self._maybe_propose()

    def _arm_suspicion_round(self, message: PrePrepare) -> None:
        """Feed the SuspicionSensor for this round (OptiAware only)."""
        if self.optilog is None or self.mode != "optiaware":
            return
        monitor = self.optilog.pipeline.latency_monitor
        if not monitor.is_complete():
            return
        sensor = self.optilog.pipeline.suspicion_sensor
        timeouts = self.optilog.timeouts_for(self.config)
        expected = timeouts.expected_messages(self.id)
        sensor.begin_round(
            round_id=message.seq,
            leader=self.leader,
            proposal_timestamp=message.timestamp,
            d_rnd=math.inf,  # condition (a) unarmed: client-paced rounds
            expected=expected,
            view=self.log_view,
        )
        self.optilog.pipeline.suspicion_monitor.note_round_leader(
            message.seq, self.leader
        )
        horizon = sensor.round_horizon(message.seq)
        if horizon is not None and horizon > self.sim.now:
            slack = 0.005
            self.sim.schedule(
                horizon - self.sim.now + slack, self._check_round, message.seq
            )

    def _check_round(self, seq: int) -> None:
        if self.optilog is None or not self.running:
            return
        self.optilog.pipeline.suspicion_sensor.check_round(
            seq, self.sim.now, view=self.log_view
        )
        self.optilog.pipeline.suspicion_sensor.forget_round(seq)

    def _note_arrival(self, seq: int, sender: int, msg_type: str) -> None:
        if self.optilog is None:
            return
        self.optilog.pipeline.suspicion_sensor.on_message(
            seq, sender, msg_type, self.sim.now
        )

    # ------------------------------------------------------------------
    # Probes (Aware's latency infrastructure)
    # ------------------------------------------------------------------
    def probe_peers(self) -> None:
        for peer in range(self.n):
            if peer != self.id:
                self.send(peer, Probe(nonce=self.id, sender=self.id, send_time=self.sim.now))

    def handle_Probe(self, src: int, message: Probe) -> None:  # noqa: N802
        self.send(
            src,
            ProbeReply(
                nonce=message.nonce,
                sender=self.id,
                probe_send_time=message.send_time,
            ),
        )

    def handle_ProbeReply(self, src: int, message: ProbeReply) -> None:  # noqa: N802
        if self.optilog is None:
            return
        rtt = self.sim.now - message.probe_send_time
        self.optilog.pipeline.latency_sensor.observe_rtt(src, rtt)

    def publish_latency_vector(self) -> None:
        if self.optilog is not None:
            self.optilog.pipeline.latency_sensor.measure_and_record(
                view=self.log_view
            )

    def run_config_search(self) -> None:
        if self.optilog is not None:
            sensor = self.optilog.pipeline.config_sensor
            sensor.search_and_propose(
                view=self.log_view,
                basis_seq=self.optilog.pipeline.log.last_seq,
            )

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------
    def _on_reconfigure(self, decision) -> None:
        self.pending_config = decision.configuration

    def _adopt_pending_config(self) -> None:
        if self.pending_config is None:
            return
        self.config = self.pending_config
        self.pending_config = None
        self.reconfigure_times.append(self.sim.now)
        if self.optilog is not None:
            self.optilog.pipeline.advance_view(self.log_view)
        # Sequence numbers continue from everything we have seen, so the
        # new leader does not collide with the old history.
        # ``executed_seq`` joins the max because compact() may have pruned
        # the preprepare entries that proved the history.
        highest_seen = max(self.preprepares, default=0)
        self.seq = max(self.seq, highest_seen, self.executed_seq)
        self.in_flight = None
        # Replay proposals that arrived from the new leader before we
        # adopted it.
        stale = self.stale_preprepares.pop(self.leader, [])
        for message in stale:
            self.handle_PrePrepare(self.leader, message)
        self._maybe_propose()


class PbftCluster:
    """A PBFT deployment driven by a workload (Fig. 7: one closed-loop
    observer client; any :class:`repro.workloads.Workload` attaches)."""

    def __init__(
        self,
        deployment: Deployment,
        mode: str = "static",
        f: Optional[int] = None,
        delta: float = 1.0,
        seed: int = 0,
        jitter: float = 0.02,
        client_city_index: Optional[int] = None,
        workload: Optional[Workload] = None,
        plane: str = "object",
    ):
        self.deployment = deployment
        n = deployment.n
        self.n = n
        self.f = f if f is not None else (n - 1) // 3
        self.mode = mode
        # The default client lives in one of the cities (Fig. 7:
        # Nuremberg), co-located with that city's replica (sub-ms RTT);
        # multi-client workloads pin their clients to other cities via
        # ``place_client``.
        self.client_city = (
            client_city_index if client_city_index is not None else 0
        )
        self.router = ClientSiteRouter(
            deployment.one_way, n, default_site=self.client_city
        )
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, self.router, jitter=jitter, plane=plane)
        self.registry = KeyRegistry(n, seed=seed)
        default_config = None
        if mode == "static":
            default_config = WeightConfiguration(
                n=n, f=self.f, leader=0,
                vmax_replicas=frozenset(range(2 * self.f)),
            )
        self.replicas: List[PbftReplica] = [
            PbftReplica(
                replica_id, n, self.f, self.sim, self.network, self.registry,
                mode=mode, delta=delta, default_config=default_config,
            )
            for replica_id in range(n)
        ]
        self.workload = workload if workload is not None else ClosedLoopWorkload()
        self.workload.bind(
            ClusterBinding(
                sim=self.sim,
                network=self.network,
                n=n,
                f=self.f,
                replies_needed=self.f + 1,
                place_client=self.router.place,
            )
        )
        #: The observer endpoint (first client), kept for Fig. 7-style
        #: ``cluster.client.latency_series(...)`` access.
        self.client = self.workload.clients[0] if self.workload.clients else None

    # ------------------------------------------------------------------
    # Measurement cadence (probes, vectors, searches)
    # ------------------------------------------------------------------
    def schedule_measurements(
        self,
        probe_at: float = 5.0,
        publish_at: float = 15.0,
        first_search_at: float = 40.0,
        search_period: float = 25.0,
        horizon: float = 180.0,
    ) -> None:
        """Arrange the Fig. 7 cadence: probe, publish vectors, then run
        periodic configuration searches on every replica."""
        if self.mode == "static":
            return
        for replica in self.replicas:
            self.sim.schedule_at(probe_at, replica.probe_peers)
            self.sim.schedule_at(publish_at, replica.publish_latency_vector)
        search_time = first_search_at
        while search_time <= horizon:
            for replica in self.replicas:
                self.sim.schedule_at(search_time, replica.run_config_search)
            search_time += search_period

    def begin(self) -> None:
        """Start replicas and workload without advancing the clock.

        ``begin`` / sliced ``sim.run`` / ``finish`` decomposes :meth:`run`
        for the campaign plane, which checkpoints between slices.  A
        resumed cluster must *not* call ``begin`` again.
        """
        for replica in self.replicas:
            replica.start()
        self.workload.start()

    def finish(self) -> RunMetrics:
        self.workload.stop()
        for replica in self.replicas:
            replica.stop()
        return self.replicas[0].metrics

    def run(self, duration: float) -> RunMetrics:
        self.begin()
        self.sim.run(until=duration)
        return self.finish()

    def compact(self, keep: int = 128) -> None:
        """Prune dead per-sequence state on every replica (campaign
        slice boundaries; see ``PbftReplica.compact``)."""
        for replica in self.replicas:
            replica.compact(keep)

    @property
    def current_leader(self) -> int:
        return self.replicas[0].config.leader
