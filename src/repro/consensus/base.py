"""Shared replica machinery and run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.crypto.signatures import KeyRegistry
from repro.sim.engine import Simulator
from repro.sim.network import Network


class CommitEvent(NamedTuple):
    """One committed block, for throughput/latency accounting.

    A ``NamedTuple``: every replica records every commit, so construction
    sits on the hot path at large n.
    """

    height: int
    commit_time: float
    propose_time: float
    payload_count: int

    @property
    def latency(self) -> float:
        return self.commit_time - self.propose_time


@dataclass
class RunMetrics:
    """Per-run metrics collected at one observer replica.

    ``throughput_series(bucket)`` returns committed requests per second
    in time buckets, the series the paper's timelines plot (Figs. 7, 15).
    """

    commits: List[CommitEvent] = field(default_factory=list)

    def record_commit(
        self, height: int, commit_time: float, propose_time: float, payload: int
    ) -> None:
        self.commits.append(CommitEvent(height, commit_time, propose_time, payload))

    def commit_sink(self) -> Callable[[CommitEvent], None]:
        """Hot-path sink taking a ready-made :class:`CommitEvent`.

        The streaming twins in :mod:`repro.metrics` implement the same
        method, so replicas prebind one callable and never know which
        measurement mode is active.
        """
        return self.commits.append

    def total_requests(self) -> int:
        return sum(event.payload_count for event in self.commits)

    def committed_blocks(self) -> int:
        return len(self.commits)

    def throughput(self, duration: float) -> float:
        """Average committed requests per second over ``duration``."""
        if duration <= 0:
            return 0.0
        return self.total_requests() / duration

    def mean_latency(self) -> float:
        if not self.commits:
            return float("inf")
        return sum(event.latency for event in self.commits) / len(self.commits)

    def throughput_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        buckets = int(duration / bucket) + 1
        series = [0.0] * buckets
        for event in self.commits:
            index = int(event.commit_time / bucket)
            if 0 <= index < buckets:
                series[index] += event.payload_count
        return [(index * bucket, count / bucket) for index, count in enumerate(series)]

    def latency_summary(self) -> Optional[Dict[str, float]]:
        """Commit-latency mean/p50/p90/p99, or None without commits.

        The mean re-sums the *sorted* latencies -- the historical
        ``ScenarioResult.metrics`` computation, preserved bit-for-bit so
        golden files survive the move to this method.
        """
        if not self.commits:
            return None
        # Lazy import: the consensus engines import repro.workloads.base
        # at class-definition time, so the reverse import must wait until
        # first use.
        from repro.workloads.base import percentile

        values = sorted(event.latency for event in self.commits)
        return {
            "mean": sum(values) / len(values),
            "p50": percentile(values, 0.50),
            "p90": percentile(values, 0.90),
            "p99": percentile(values, 0.99),
        }

    def latency_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        """Mean commit latency per time bucket (seconds)."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for event in self.commits:
            index = int(event.commit_time / bucket)
            sums[index] = sums.get(index, 0.0) + event.latency
            counts[index] = counts.get(index, 0) + 1
        return [
            (index * bucket, sums[index] / counts[index]) for index in sorted(sums)
        ]


class ReplicaBase:
    """Common state and helpers for protocol replicas."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
    ):
        self.id = replica_id
        self.n = n
        self.f = f
        self.sim = sim
        self.network = network
        self.registry = registry
        self.metrics = RunMetrics()
        #: Unweighted quorum size q = n - f.  A plain attribute (not a
        #: property): it is read once per vote on the hot path.
        self.quorum = n - f
        #: message class -> bound handler (or None), so the per-delivery
        #: dispatch is one dict hit instead of an f-string + getattr.
        self._handler_cache: Dict[type, Optional[Callable[[int, Any], None]]] = {}
        #: Pre-bound hot-path callables: one send per protocol message and
        #: one commit record per block make the descriptor lookups
        #: measurable.
        self._network_send = network.send
        self._commits_append = self.metrics.commit_sink()
        network.register(replica_id, self.on_message)
        # The live cache doubles as the network's delivery fast path:
        # classes it already maps skip the on_message dispatch frame.
        network.register_dispatch(replica_id, self._handler_cache)
        # Columnar-plane opt-in: the network probes the replica for
        # handle_<Class>Batch methods and hands them same-class runs of
        # queued deliveries (see Network.register_batch_endpoint for the
        # contract batch handlers must follow).  A no-op on the object
        # plane and for protocols without batch handlers.
        network.register_batch_endpoint(replica_id, self)

    def use_metrics(self, metrics: Any) -> None:
        """Swap the metrics observer and rebind the commit fast path.

        ``metrics`` is anything with the :class:`RunMetrics` query API
        plus ``commit_sink()``/``record_commit()`` -- in practice
        :class:`RunMetrics` itself or the streaming/checked twins from
        :mod:`repro.metrics`.  Must run before the replica commits
        anything; commits already recorded stay with the old observer.
        """
        self.metrics = metrics
        self._commits_append = metrics.commit_sink()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: int, message: Any) -> None:
        # Direct attribute, not getattr-with-default: every protocol
        # message defines wire_size (class constant or property).
        self._network_send(self.id, dst, message, message.wire_size)

    def multicast(self, dsts, message: Any) -> None:
        self.network.multicast(self.id, dsts, message, message.wire_size)

    def broadcast(self, message: Any, include_self: bool = True) -> None:
        dsts = range(self.n) if include_self else (
            replica for replica in range(self.n) if replica != self.id
        )
        self.multicast(dsts, message)

    # ------------------------------------------------------------------
    # Dispatch: handle_<MessageType> methods by convention
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Any) -> None:
        cls = message.__class__
        try:
            handler = self._handler_cache[cls]
        except KeyError:
            handler = getattr(self, f"handle_{cls.__name__}", None)
            self._handler_cache[cls] = handler
        if handler is not None:
            handler(src, message)
