"""Shared replica machinery and run metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.signatures import KeyRegistry
from repro.sim.engine import Simulator
from repro.sim.network import Network


@dataclass
class CommitEvent:
    """One committed block, for throughput/latency accounting."""

    height: int
    commit_time: float
    propose_time: float
    payload_count: int

    @property
    def latency(self) -> float:
        return self.commit_time - self.propose_time


@dataclass
class RunMetrics:
    """Per-run metrics collected at one observer replica.

    ``throughput_series(bucket)`` returns committed requests per second
    in time buckets, the series the paper's timelines plot (Figs. 7, 15).
    """

    commits: List[CommitEvent] = field(default_factory=list)

    def record_commit(
        self, height: int, commit_time: float, propose_time: float, payload: int
    ) -> None:
        self.commits.append(CommitEvent(height, commit_time, propose_time, payload))

    def total_requests(self) -> int:
        return sum(event.payload_count for event in self.commits)

    def throughput(self, duration: float) -> float:
        """Average committed requests per second over ``duration``."""
        if duration <= 0:
            return 0.0
        return self.total_requests() / duration

    def mean_latency(self) -> float:
        if not self.commits:
            return float("inf")
        return sum(event.latency for event in self.commits) / len(self.commits)

    def throughput_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        buckets = int(duration / bucket) + 1
        series = [0.0] * buckets
        for event in self.commits:
            index = int(event.commit_time / bucket)
            if 0 <= index < buckets:
                series[index] += event.payload_count
        return [(index * bucket, count / bucket) for index, count in enumerate(series)]

    def latency_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        """Mean commit latency per time bucket (seconds)."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for event in self.commits:
            index = int(event.commit_time / bucket)
            sums[index] = sums.get(index, 0.0) + event.latency
            counts[index] = counts.get(index, 0) + 1
        return [
            (index * bucket, sums[index] / counts[index]) for index in sorted(sums)
        ]


class ReplicaBase:
    """Common state and helpers for protocol replicas."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
    ):
        self.id = replica_id
        self.n = n
        self.f = f
        self.sim = sim
        self.network = network
        self.registry = registry
        self.metrics = RunMetrics()
        network.register(replica_id, self.on_message)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: int, message: Any) -> None:
        self.network.send(self.id, dst, message, getattr(message, "wire_size", 0))

    def multicast(self, dsts, message: Any) -> None:
        self.network.multicast(
            self.id, dsts, message, getattr(message, "wire_size", 0)
        )

    def broadcast(self, message: Any, include_self: bool = True) -> None:
        dsts = range(self.n) if include_self else (
            replica for replica in range(self.n) if replica != self.id
        )
        self.multicast(dsts, message)

    # ------------------------------------------------------------------
    # Dispatch: handle_<MessageType> methods by convention
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Any) -> None:
        handler = getattr(self, f"handle_{type(message).__name__}", None)
        if handler is not None:
            handler(src, message)

    @property
    def quorum(self) -> int:
        """Unweighted quorum size q = n - f."""
        return self.n - self.f
