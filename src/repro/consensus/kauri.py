"""Kauri: tree-based dissemination and aggregation with pipelining (§6.1).

The root (leader) sends proposals down a height-3 tree; intermediate
nodes forward to their leaves, collect child votes (with per-child
timeouts derived from the recorded latencies, as in §7.4) and send an
aggregate up; the root certifies a block once enough votes arrived.
Commit uses HotStuff's 3-chain rule.  Pipelining keeps up to
``pipeline_depth`` instances in flight, which is how Kauri converts its
higher per-round latency into throughput.

Aggregates follow OptiTree's completeness rule (§6.3): a missing child
vote must be replaced by a suspicion, otherwise the aggregate is
proof-of-misbehavior against the intermediate (checked at the root when
OptiLog is attached).

Tree changes are cluster-driven: when the root stalls (crash, attack),
the cluster invokes the installed reconfiguration policy (Kauri bins,
Kauri-sa, or OptiTree search) and installs the new tree on every replica.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.consensus.base import ReplicaBase, RunMetrics
from repro.consensus.messages import (
    AggregateVote,
    Block,
    ClientRequest,
    Forward,
    Proposal,
    Reply,
    Vote,
)
from repro.crypto.signatures import KeyRegistry
from repro.crypto.threshold import QuorumCertificate, aggregate
from repro.net.deployments import Deployment
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.tree.topology import TreeConfiguration
from repro.workloads.base import ClientSiteRouter, ClusterBinding, Workload

GENESIS_HASH = "genesis"

_VOTE_SIZE = Vote.wire_size

#: Narrower columns tally faster row-by-row than through numpy.
_BATCH_TALLY_MIN = 16


class _Collection:
    """Vote collection state at an intermediate node, per height.

    A ``__slots__`` class: one is allocated per height per intermediate,
    and slot access is what the per-vote path touches.
    """

    __slots__ = ("block", "votes", "sent", "timer")

    def __init__(self, block: Block):
        self.block = block
        self.votes: Set[int] = set()
        self.sent = False
        self.timer: Optional[object] = None


class KauriReplica(ReplicaBase):
    """One Kauri replica; its role follows the installed tree."""

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        registry: KeyRegistry,
        tree: TreeConfiguration,
        payload_per_block: int = 1000,
        pipeline_depth: int = 1,
        child_timeout: Callable[[int, int], float] = None,
        delta: float = 1.0,
        votes_needed: Optional[int] = None,
    ):
        super().__init__(replica_id, n, f, sim, network, registry)
        self.tree = tree
        self._adopt_tree_roles(tree)
        self.payload_per_block = payload_per_block
        self.pipeline_depth = pipeline_depth
        self.delta = delta
        self.votes_needed = votes_needed or self.quorum
        # Per-child timeout: defaults to δ · round trip on the link.
        self._child_timeout = child_timeout
        self.blocks: Dict[str, Block] = {}
        self.block_at_height: Dict[int, Block] = {}
        self.qc_heights: Set[int] = set()
        self.committed_height = 0
        self.next_height = 1
        self.last_parent = GENESIS_HASH
        self.in_flight: Set[int] = set()
        self.root_votes: Dict[int, Set[int]] = {}
        self.collections: Dict[int, _Collection] = {}
        self.pending_records: List = []
        self.running = False
        #: Suspicions produced by aggregation timeouts, drained by the
        #: OptiTree integration.
        self.aggregation_suspicions: List[Tuple[int, int]] = []
        #: Request-driven mode (workload attached): the root batches
        #: buffered client requests into proposals and replies on commit.
        self.request_driven = False
        self.pending_requests: List[ClientRequest] = []
        #: Requests claimed by an observed proposal or already committed.
        self._claimed_requests: Set = set()
        #: Previous generation of claimed keys (see compact()).
        self._claimed_requests_old: Set = set()
        #: Heights at or below this were committed and compacted away.
        self._compact_floor = 0

    # ------------------------------------------------------------------
    # Role helpers
    # ------------------------------------------------------------------
    def _adopt_tree_roles(self, tree: TreeConfiguration) -> None:
        """Cache this replica's role lookups for the per-message path.

        ``tree.intermediates`` is a fresh tuple slice per access and
        ``children``/``parent`` are dict hits; the per-message handlers
        instead read the plain attributes cached here (re-cached by
        :meth:`install_tree` on reconfiguration).
        """
        self._root = tree.root
        self._my_children = tree.children.get(self.id, ())
        self._child_set = frozenset(self._my_children)
        self._my_parent = tree.parent.get(self.id)
        self._expected_votes = len(self._my_children) + 1
        self._intermediate_set = frozenset(tree.intermediates)
        self._is_intermediate = self.id in self._intermediate_set
        #: Lazily computed aggregation-timer horizon (max child timeout);
        #: only cacheable for the default, run-static timeout rule.
        self._flush_horizon: Optional[float] = None

    @property
    def is_root(self) -> bool:
        return self.tree.root == self.id

    @property
    def is_intermediate(self) -> bool:
        return self.id in self.tree.intermediates

    def child_timeout(self, child: int) -> float:
        if self._child_timeout is not None:
            return self._child_timeout(self.id, child)
        # δ · (downlink + uplink) from the emulated link latency.
        rtt = 2.0 * self.network.one_way_delay(self.id, child) * 2.0
        return self.delta * rtt

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.running = True
        if self.is_root:
            self._fill_pipeline()

    def stop(self) -> None:
        self.running = False

    def install_tree(self, tree: TreeConfiguration) -> None:
        """Adopt a new tree (reconfiguration); collection state resets."""
        self.tree = tree
        self._adopt_tree_roles(tree)
        self.collections.clear()
        self.root_votes.clear()
        self.in_flight.clear()
        if self.running and self.is_root:
            self._fill_pipeline()

    # ------------------------------------------------------------------
    # Root: proposing and certifying
    # ------------------------------------------------------------------
    def _fill_pipeline(self) -> None:
        while len(self.in_flight) < self.pipeline_depth:
            self._propose_next()

    def _propose_next(self) -> None:
        if not self.running or not self.is_root:
            return
        height = self.next_height
        self.next_height += 1
        records = tuple(self.pending_records)
        self.pending_records = []
        if self.request_driven:
            # Claim while draining: a key already claimed (in flight under
            # this tree, committed, or duplicated in the buffer after a
            # recovery) is never proposed twice.
            batch: List[ClientRequest] = []
            remaining: List[ClientRequest] = []
            for request in self.pending_requests:
                key = (request.client_id, request.request_id)
                if key in self._claimed_requests or key in self._claimed_requests_old:
                    continue
                if len(batch) < self.payload_per_block:
                    batch.append(request)
                    self._claimed_requests.add(key)
                else:
                    remaining.append(request)
            self.pending_requests = remaining
            payload_count = len(batch)
            request_ids = tuple(
                (r.client_id, r.request_id, r.send_time) for r in batch
            )
        else:
            payload_count = self.payload_per_block
            request_ids = ()
        block = Block(
            height=height,
            proposer=self.id,
            parent=self.last_parent,
            payload_count=payload_count,
            records=records,
            timestamp=self.sim.now,
            request_ids=request_ids,
        )
        self.last_parent = block.hash
        self.blocks[block.hash] = block
        self.block_at_height[height] = block
        self.in_flight.add(height)
        self.root_votes[height] = {self.id}
        proposal = Proposal(height=height, block=block, qc=None)
        self.multicast(self.tree.intermediates, proposal)

    def handle_AggregateVote(self, src: int, message: AggregateVote) -> None:  # noqa: N802
        if not self.running or self._root != self.id:
            return
        if src not in self._intermediate_set:
            return
        votes = self.root_votes.get(message.height)
        if votes is None:
            return
        votes.update(message.aggregate.signers)
        votes.add(src)
        if len(votes) >= self.votes_needed and message.height in self.in_flight:
            self.in_flight.discard(message.height)
            self.qc_heights.add(message.height)
            self._try_commit(message.height)
            # Tell the tree the height is certified (leaves learn commits
            # through the next proposals in a real system; metrics-wise the
            # root's view is what Fig. 9 reports).
            self._fill_pipeline()

    # ------------------------------------------------------------------
    # Intermediates: forwarding and aggregation
    # ------------------------------------------------------------------
    def handle_Proposal(self, src: int, proposal: Proposal) -> None:  # noqa: N802
        if not self.running:
            return
        # Claim before the role checks so an in-flight proposal still
        # prunes our buffer even when we are not this block's forwarder.
        self._claim_requests(proposal.block)
        if src != self._root:
            return
        if not self._is_intermediate:
            return
        block = proposal.block
        height = block.height
        self.blocks[block.hash] = block
        self.block_at_height[height] = block
        collection = _Collection(block)
        collection.votes.add(self.id)  # own vote
        self.collections[height] = collection
        children = self._my_children
        self.multicast(children, Forward(height, block, self.id))
        if children:
            horizon = self._flush_horizon
            if horizon is None:
                horizon = max(self.child_timeout(child) for child in children)
                if self._child_timeout is None:
                    # The default rule is a pure function of the (static)
                    # link delays, so the max is the same every height.
                    self._flush_horizon = horizon
            collection.timer = self.sim.schedule(
                horizon, self._flush_aggregate, height
            )
        else:
            self._flush_aggregate(height)

    def handle_Vote(self, src: int, vote: Vote) -> None:  # noqa: N802
        if not self.running or not self._is_intermediate:
            return
        collection = self.collections.get(vote.height)
        if collection is None or collection.sent:
            return
        if src not in self._child_set:
            return
        votes = collection.votes
        votes.add(src)
        if len(votes) >= self._expected_votes:
            if collection.timer is not None:
                collection.timer.cancel()
            self._flush_aggregate(vote.height)

    # ------------------------------------------------------------------
    # Columnar-plane batch handlers (see Network.register_batch_endpoint
    # for the contract: process rows in order, set sim.now before side
    # effects, stop right after any row that sends or schedules)
    # ------------------------------------------------------------------
    def handle_VoteBatch(self, srcs, votes, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_Vote` at an intermediate: child votes below
        the expected count reduce to set adds; the completing vote flushes
        the aggregate upward at its own arrival time and yields."""
        if not self.running or not self._is_intermediate:
            return len(votes)
        collections = self.collections
        child_set = self._child_set
        expected = self._expected_votes
        count = len(votes)
        if count >= _BATCH_TALLY_MIN:
            # Bulk tally for the regular wide column: one height, all
            # rows from distinct children not yet counted.
            heights = {v[0] for v in votes}
            if len(heights) == 1:
                height = heights.pop()
                collection = collections.get(height)
                if collection is None or collection.sent:
                    return count
                new_votes = set(srcs)
                cvotes = collection.votes
                if (
                    len(new_votes) == count
                    and child_set.issuperset(new_votes)
                    and cvotes.isdisjoint(new_votes)
                ):
                    need = expected - len(cvotes)
                    if need > count:
                        cvotes.update(srcs)
                        return count
                    k = need - 1
                    cvotes.update(srcs[: k + 1])
                    self.sim.now = times[k]
                    if collection.timer is not None:
                        collection.timer.cancel()
                    self._flush_aggregate(height)
                    return k + 1
        for k in range(count):
            vote = votes[k]
            height = vote[0]
            collection = collections.get(height)
            if collection is None or collection.sent:
                continue
            src = srcs[k]
            if src not in child_set:
                continue
            cvotes = collection.votes
            cvotes.add(src)
            if len(cvotes) >= expected:
                self.sim.now = times[k]
                if collection.timer is not None:
                    collection.timer.cancel()
                self._flush_aggregate(height)
                return k + 1
        return count

    def handle_AggregateVoteBatch(self, srcs, messages, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_AggregateVote` at the root: signer-set
        unions below the certification threshold are pure; the
        certifying aggregate commits and refills the pipeline at its own
        arrival time, then yields (the new proposals may precede the
        remaining aggregates in event order)."""
        if not self.running or self._root != self.id:
            return len(messages)
        intermediate_set = self._intermediate_set
        root_votes = self.root_votes
        needed = self.votes_needed
        in_flight = self.in_flight
        count = len(messages)
        for k in range(count):
            src = srcs[k]
            if src not in intermediate_set:
                continue
            message = messages[k]
            height = message.height
            votes = root_votes.get(height)
            if votes is None:
                continue
            votes.update(message.aggregate.signers)
            votes.add(src)
            if len(votes) >= needed and height in in_flight:
                self.sim.now = times[k]
                in_flight.discard(height)
                self.qc_heights.add(height)
                self._try_commit(height)
                self._fill_pipeline()
                return k + 1
        return count

    def handle_ClientRequestBatch(self, srcs, requests, times) -> int:  # noqa: N802
        """Bulk :meth:`handle_ClientRequest`: pure buffer appends."""
        if not self.running or not self.request_driven:
            return len(requests)
        claimed = self._claimed_requests
        claimed_old = self._claimed_requests_old
        pending = self.pending_requests
        for request in requests:
            key = (request.client_id, request.request_id)
            if key in claimed or key in claimed_old:
                continue
            pending.append(request)
        return len(requests)

    def _flush_aggregate(self, height: int) -> None:
        collection = self.collections.get(height)
        if collection is None or collection.sent or not self.running:
            return
        collection.sent = True
        missing = self._child_set - collection.votes
        # §6.3: the aggregate must carry a suspicion for each missing vote.
        for child in sorted(missing):
            self.aggregation_suspicions.append((height, child))
        agg = aggregate(
            self.registry,
            collection.block.hash,
            collection.votes,
            suspected=missing,
        )
        self.send(
            self.tree.root,
            AggregateVote(
                height=height,
                block_hash=collection.block.hash,
                sender=self.id,
                aggregate=agg,
            ),
        )

    # ------------------------------------------------------------------
    # Client path (request-driven mode only)
    # ------------------------------------------------------------------
    def handle_ClientRequest(self, src: int, request: ClientRequest) -> None:  # noqa: N802
        """Buffer client traffic; only the root drains the buffer.

        Clients broadcast to every replica, so a future root already
        holds the backlog after a tree change.
        """
        if not self.running or not self.request_driven:
            return
        key = (request.client_id, request.request_id)
        if key in self._claimed_requests or key in self._claimed_requests_old:
            return
        self.pending_requests.append(request)

    def _claim_requests(self, block: Block) -> None:
        """Drop requests the current root already put in flight.

        Every non-root replica sees each block (Proposal at
        intermediates, Forward at leaves), so after a tree change the new
        root does not re-propose -- and re-commit -- requests the old
        root already handled.  Blocks from a *previous* root are ignored:
        their uncommitted requests are recovered explicitly by
        :meth:`KauriCluster.install_tree`, and claiming them here would
        drop that recovery on the floor.
        """
        if not self.request_driven or not block.request_ids:
            return
        if block.proposer != self._root:
            return
        keys = {(cid, rid) for cid, rid, _send_time in block.request_ids}
        self._claimed_requests |= keys
        self.pending_requests = [
            request
            for request in self.pending_requests
            if (request.client_id, request.request_id) not in keys
        ]

    # ------------------------------------------------------------------
    # Campaign-plane compaction
    # ------------------------------------------------------------------
    def compact(self, keep: int = 128) -> None:
        """Drop per-height state below ``committed_height - keep``.

        All readers of the pruned maps None-guard (root_votes /
        collections lookups, block_at_height range scans start above
        ``committed_height``), so late traffic for pruned heights is
        ignored like any duplicate; claimed request keys age through two
        generations exactly as in ``PbftReplica.compact``.
        """
        frontier = self.committed_height
        if self._root != self.id:
            # Only the root advances committed_height (commits are its
            # view); intermediates and leaves age out behind the highest
            # block the tree has shown them instead.  Their pruned maps
            # are write-only below that point: ``blocks`` is read only
            # as a catch-up donor and collection flushes None-guard.
            if self.block_at_height:
                frontier = max(frontier, max(self.block_at_height))
            if self.blocks:
                frontier = max(
                    frontier, max(b.height for b in self.blocks.values())
                )
        floor = frontier - keep
        if floor > self._compact_floor:
            for height in [h for h in self.block_at_height if h <= floor]:
                del self.block_at_height[height]
            stale = [
                block_hash
                for block_hash, block in self.blocks.items()
                if block.height <= floor
            ]
            for block_hash in stale:
                del self.blocks[block_hash]
            for height in [h for h in self.root_votes if h <= floor]:
                del self.root_votes[height]
            for height in [h for h in self.collections if h <= floor]:
                del self.collections[height]
            self.qc_heights = {h for h in self.qc_heights if h > floor}
            self._compact_floor = floor
        self._claimed_requests_old = self._claimed_requests
        self._claimed_requests = set()

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def handle_Forward(self, src: int, message: Forward) -> None:  # noqa: N802
        if not self.running:
            return
        # Claim before the parent check: a Forward from a stale parent
        # still proves the current root has these requests in flight.
        self._claim_requests(message.block)
        if self._my_parent != src:
            return
        block = message.block
        block_hash = block.hash
        self.blocks[block_hash] = block
        # Same fast construction as HotStuff's vote path: one per Forward.
        vote = tuple.__new__(Vote, (message.height, block_hash, self.id))
        self._network_send(self.id, src, vote, _VOTE_SIZE)

    # ------------------------------------------------------------------
    # Commit rule (3-chain, root's view)
    # ------------------------------------------------------------------
    def _try_commit(self, height: int) -> None:
        if height < 3:
            return
        qc_heights = self.qc_heights
        if height - 1 not in qc_heights or height - 2 not in qc_heights:
            return
        target = height - 2
        committed = self.committed_height
        if target <= committed:
            return
        for commit_height in range(committed + 1, target + 1):
            block = self.block_at_height.get(commit_height)
            if block is None:
                continue
            self.metrics.record_commit(
                commit_height, self.sim.now, block.timestamp, block.payload_count
            )
            if self.request_driven and block.request_ids:
                # Only the root observes commits, so it alone replies and
                # clients accept a single reply (replies_needed = 1).
                self._claim_requests(block)
                for client_id, request_id, _send_time in block.request_ids:
                    self.send(client_id, Reply(self.id, request_id, self.sim.now))
        self.committed_height = target

    def submit_record(self, record) -> None:
        """Queue an OptiLog record for inclusion in the next proposal."""
        self.pending_records.append(record)


class KauriCluster:
    """Builds and runs a Kauri/OptiTree deployment."""

    def __init__(
        self,
        deployment: Deployment,
        tree: TreeConfiguration,
        f: Optional[int] = None,
        payload_per_block: int = 1000,
        pipeline_depth: int = 1,
        seed: int = 0,
        jitter: float = 0.02,
        delta: float = 1.0,
        votes_needed: Optional[int] = None,
        plane: str = "object",
    ):
        self.deployment = deployment
        n = deployment.n
        self.n = n
        self.f = f if f is not None else (n - 1) // 3
        self.tree = tree
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, deployment.one_way, jitter=jitter, plane=plane)
        self.registry = KeyRegistry(n, seed=seed)
        self.replicas: List[KauriReplica] = [
            KauriReplica(
                replica_id,
                n,
                self.f,
                self.sim,
                self.network,
                self.registry,
                tree=tree,
                payload_per_block=payload_per_block,
                pipeline_depth=pipeline_depth if replica_id == tree.root else 1,
                delta=delta,
                votes_needed=votes_needed,
            )
            for replica_id in range(n)
        ]
        self.workload: Optional[Workload] = None

    @property
    def root_replica(self) -> KauriReplica:
        return self.replicas[self.tree.root]

    def attach_workload(self, workload: Workload, client_city: int = 0) -> None:
        """Switch the cluster to request-driven mode under ``workload``.

        Clients accept a single reply (``replies_needed=1``) because only
        the tree root tracks commits in Kauri.
        """
        self.router = ClientSiteRouter(
            self.deployment.one_way, self.n, default_site=client_city
        )
        self.network.one_way_delay = self.router
        for replica in self.replicas:
            replica.request_driven = True
        workload.bind(
            ClusterBinding(
                sim=self.sim,
                network=self.network,
                n=self.n,
                f=self.f,
                replies_needed=1,
                place_client=self.router.place,
            )
        )
        self.workload = workload

    def install_tree(self, tree: TreeConfiguration) -> None:
        old_root = self.replicas[self.tree.root]
        new_root = self.replicas[tree.root]
        recovered = self._uncommitted_requests(old_root) if old_root is not new_root else []
        self.tree = tree
        for replica in self.replicas:
            replica.install_tree(tree)
        if recovered:
            # Blocks the old root had in flight die with the old tree
            # (aggregation state is reset and stale AggregateVotes are
            # rejected), so their requests move to the new root; un-claim
            # them there or the recovery would be dropped on the floor.
            for request in recovered:
                key = (request.client_id, request.request_id)
                new_root._claimed_requests.discard(key)
                new_root._claimed_requests_old.discard(key)
            new_root.pending_requests.extend(recovered)

    def _uncommitted_requests(self, root: KauriReplica) -> List[ClientRequest]:
        """Requests the given root proposed but never committed, plus its
        undrained backlog -- the traffic a tree change must not lose."""
        if not root.request_driven:
            return []
        recovered: List[ClientRequest] = []
        for height in range(root.committed_height + 1, root.next_height):
            block = root.block_at_height.get(height)
            if block is None or block.proposer != root.id:
                continue
            recovered.extend(
                ClientRequest(client_id=cid, request_id=rid, send_time=st)
                for cid, rid, st in block.request_ids
            )
        recovered.extend(root.pending_requests)
        root.pending_requests = []
        return recovered

    def run(self, duration: float) -> RunMetrics:
        self.begin()
        self.sim.run(until=duration)
        return self.finish()

    def begin(self) -> None:
        """Start replicas/workload; see ``PbftCluster.begin`` for the
        begin/slice/finish campaign contract."""
        for replica in self.replicas:
            replica.start()
        if self.workload is not None:
            self.workload.start()

    def finish(self) -> RunMetrics:
        if self.workload is not None:
            self.workload.stop()
        for replica in self.replicas:
            replica.stop()
        return self.root_replica.metrics

    def compact(self, keep: int = 128) -> None:
        """Prune dead per-height state on every replica (campaign
        slice boundaries; see ``KauriReplica.compact``)."""
        for replica in self.replicas:
            replica.compact(keep)

    def pause(self) -> None:
        for replica in self.replicas:
            replica.stop()

    def resume(self) -> None:
        for replica in self.replicas:
            replica.running = True
        self.root_replica._fill_pipeline()
