"""Reproduction of "OptiLog: Assigning Roles in Byzantine Consensus".

The package is organised around the paper's architecture:

* :mod:`repro.core` -- the OptiLog framework itself: the append-only log,
  the sensor/monitor abstraction, and the four-stage pipeline (latency,
  misbehavior, suspicion, configuration).
* :mod:`repro.sim` -- a deterministic discrete-event simulator standing in
  for the paper's cluster testbed and the Phantom network simulator.
* :mod:`repro.net` -- a world-city latency model standing in for the
  WonderProxy dataset, plus named deployments (Europe21, NA-EU43, Global73,
  Stellar56).
* :mod:`repro.crypto` -- simulated signatures and quorum certificates.
* :mod:`repro.consensus` -- PBFT, chained HotStuff and Kauri engines.
* :mod:`repro.aware` -- Wheat/Aware weighted voting and OptiAware.
* :mod:`repro.tree` -- tree scoring, tree candidate selection and OptiTree.
* :mod:`repro.optimize` -- simulated annealing and independent-set solvers.
* :mod:`repro.faults` -- Byzantine behaviours used by the evaluation.
* :mod:`repro.experiments` -- drivers reproducing every figure in the paper.
"""

__version__ = "1.0.0"

from repro.core.log import AppendOnlyLog, LogEntry
from repro.core.pipeline import OptiLogPipeline, PipelineSettings

__all__ = [
    "AppendOnlyLog",
    "LogEntry",
    "OptiLogPipeline",
    "PipelineSettings",
    "__version__",
]
