"""Open-loop Poisson workload and its time-varying subclasses.

Arrivals form a Poisson process whose rate may vary piecewise over time:
:meth:`OpenLoopWorkload.rate_at` gives the instantaneous rate and
:meth:`OpenLoopWorkload.next_change` the next time the rate changes.
Sampling exploits the memorylessness of the exponential: a gap is drawn
at the current rate, and if it would cross a rate boundary the draw is
restarted at the boundary instead of firing -- exact for
piecewise-constant rates, and how the bursty/ramp subclasses get crisp
phase transitions (an off phase with rate 0 generates no traffic at
all).

Unlike the closed loop, an open-loop source does not wait for replies:
load keeps arriving while the system is saturated, which is exactly the
regime that stresses leader and tree reconfiguration.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.base import Workload


class OpenLoopWorkload(Workload):
    """Constant-rate Poisson arrivals spread round-robin over clients."""

    name = "open-loop"

    def __init__(
        self,
        rate: float = 50.0,
        clients: int = 1,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(clients=clients, sites=sites)
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self.rate = rate
        self._round_robin = 0
        self._timer = None

    # ------------------------------------------------------------------
    # Rate profile (overridden by bursty/ramp)
    # ------------------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at virtual time ``t`` (req/s)."""
        return self.rate

    def next_change(self, t: float) -> Optional[float]:
        """Absolute time the rate next changes after ``t``; None if never."""
        return None

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def bind(self, binding) -> None:
        self._timer = None  # never carry a timer across rebinds
        self._round_robin = 0
        super().bind(binding)

    def start(self) -> None:
        super().start()
        self._schedule_next()

    def stop(self) -> None:
        super().stop()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        if not self.running:
            return
        now = self.binding.sim.now
        rate = self.rate_at(now)
        boundary = self.next_change(now)
        if rate <= 0.0:
            if boundary is None:
                return  # rate dried up for good
            self._timer = self.binding.sim.schedule_at(boundary, self._schedule_next)
            return
        gap = self.rng.expovariate(rate)
        if boundary is not None and now + gap >= boundary:
            # The draw crosses a rate change; restart at the boundary
            # (valid by memorylessness, exact for piecewise rates).
            self._timer = self.binding.sim.schedule_at(boundary, self._schedule_next)
            return
        self._timer = self.binding.sim.schedule(gap, self._fire)

    def _fire(self) -> None:
        self._timer = None
        if not self.running:
            return
        self._pick_client().submit()
        self._schedule_next()

    def _pick_client(self):
        client = self.clients[self._round_robin % len(self.clients)]
        self._round_robin += 1
        return client
