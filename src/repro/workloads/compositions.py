"""Campaign workload compositions: diurnal cycles and flash crowds.

Long measurement campaigns (``repro campaign``) need traffic that looks
like production traffic over hours, not a constant-rate firehose.  Both
shapes here are piecewise-constant staircases over the
:class:`~repro.workloads.open_loop.OpenLoopWorkload` rate machinery, so
arrival sampling stays *exact* (every rate boundary restarts the
exponential draw) and the profile is a pure function of virtual time --
no extra RNG streams, nothing to snapshot beyond the base workload,
which keeps checkpoint/resume bit-identical.

* :class:`DiurnalWorkload` -- a smooth day/night cycle: a raised-cosine
  profile between ``low_rate`` (night) and ``high_rate`` (peak),
  discretised into ``steps`` constant plateaus per ``period``.
* :class:`FlashCrowdWorkload` -- ``base_rate`` traffic with recurring
  flash crowds: every ``interval`` seconds the rate jumps to
  ``base_rate * multiplier`` and decays geometrically back over
  ``decay_steps`` plateaus of ``step_duration`` seconds each.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.workloads.open_loop import OpenLoopWorkload


class DiurnalWorkload(OpenLoopWorkload):
    """Raised-cosine day/night cycle, discretised into plateaus.

    The cycle starts at the trough (``low_rate``, "midnight"), peaks at
    ``period / 2``, and returns -- so a campaign that spans several
    periods alternates quiet and saturated regimes deterministically.
    """

    name = "diurnal"

    def __init__(
        self,
        low_rate: float = 20.0,
        high_rate: float = 200.0,
        period: float = 120.0,
        steps: int = 24,
        clients: int = 1,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(rate=high_rate, clients=clients, sites=sites)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if steps < 2:
            raise ValueError(f"need at least 2 steps per period, got {steps}")
        if low_rate < 0 or high_rate < low_rate:
            raise ValueError(
                f"need 0 <= low_rate <= high_rate, got {low_rate}, {high_rate}"
            )
        self.low_rate = low_rate
        self.high_rate = high_rate
        self.period = period
        self.steps = steps
        self._step_duration = period / steps

    def rate_at(self, t: float) -> float:
        step = int((t % self.period) / self._step_duration) % self.steps
        # Raised cosine evaluated at the plateau's midpoint, so the
        # staircase brackets the smooth profile symmetrically.
        phase = 2.0 * math.pi * (step + 0.5) / self.steps
        blend = 0.5 - 0.5 * math.cos(phase)
        return self.low_rate + (self.high_rate - self.low_rate) * blend

    def next_change(self, t: float) -> Optional[float]:
        # Strictly-after contract (see BurstyWorkload.next_change): float
        # noise in the division must never reschedule at or before ``t``.
        boundary = (math.floor(t / self._step_duration) + 1) * self._step_duration
        while boundary <= t:  # pragma: no cover - float-noise backstop
            boundary += self._step_duration
        return boundary


class FlashCrowdWorkload(OpenLoopWorkload):
    """Baseline traffic with periodic flash crowds that decay away.

    At every multiple of ``interval`` (the first at t=0) the rate spikes
    to ``base_rate * multiplier`` and then decays geometrically toward
    ``base_rate`` over ``decay_steps`` plateaus of ``step_duration``
    seconds; after the last plateau the rate is exactly ``base_rate``
    until the next crowd arrives.
    """

    name = "flash-crowd"

    def __init__(
        self,
        base_rate: float = 50.0,
        multiplier: float = 8.0,
        interval: float = 60.0,
        decay_steps: int = 6,
        step_duration: float = 2.0,
        clients: int = 1,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(rate=base_rate, clients=clients, sites=sites)
        if interval <= 0 or step_duration <= 0:
            raise ValueError("interval and step_duration must be positive")
        if decay_steps < 1:
            raise ValueError(f"need at least one decay step, got {decay_steps}")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if decay_steps * step_duration >= interval:
            raise ValueError(
                "decay must finish before the next crowd: "
                f"{decay_steps} * {step_duration} >= {interval}"
            )
        self.base_rate = base_rate
        self.multiplier = multiplier
        self.interval = interval
        self.decay_steps = decay_steps
        self.step_duration = step_duration
        #: Per-plateau geometric decay factor: after ``decay_steps``
        #: plateaus the excess over base has fallen to multiplier**-1 of
        #: itself -- close enough to base that the tail is cut there.
        self._decay = self.multiplier ** (-1.0 / decay_steps)

    def rate_at(self, t: float) -> float:
        offset = t % self.interval
        step = int(offset / self.step_duration)
        if step >= self.decay_steps:
            return self.base_rate
        return self.base_rate * self.multiplier * (self._decay ** step)

    def next_change(self, t: float) -> Optional[float]:
        offset = t % self.interval
        crowd_start = t - offset
        step = int(offset / self.step_duration)
        if step < self.decay_steps:
            boundary = crowd_start + (step + 1) * self.step_duration
        else:
            boundary = crowd_start + self.interval
        while boundary <= t:  # pragma: no cover - float-noise backstop
            boundary += self.step_duration
        return boundary
