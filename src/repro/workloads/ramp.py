"""Ramp workload: offered load rises from ``start_rate`` to ``end_rate``.

The ramp is discretized into ``steps`` piecewise-constant segments over
``ramp_duration`` seconds (then holds ``end_rate``), keeping the
boundary-restart sampling of the open-loop base class exact.  Used to
find the saturation knee of a protocol/deployment combination.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.open_loop import OpenLoopWorkload


class RampWorkload(OpenLoopWorkload):
    """Linearly increasing Poisson rate, discretized into steps."""

    name = "ramp"

    def __init__(
        self,
        start_rate: float = 10.0,
        end_rate: float = 200.0,
        ramp_duration: float = 30.0,
        steps: int = 20,
        clients: int = 1,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(rate=start_rate, clients=clients, sites=sites)
        if ramp_duration <= 0 or steps < 1:
            raise ValueError("ramp_duration must be positive and steps >= 1")
        self.start_rate = start_rate
        self.end_rate = end_rate
        self.ramp_duration = ramp_duration
        self.steps = steps

    def _step_of(self, t: float) -> int:
        if t >= self.ramp_duration:
            return self.steps
        return int(t / (self.ramp_duration / self.steps))

    def rate_at(self, t: float) -> float:
        step = self._step_of(t)
        if step >= self.steps:
            return self.end_rate
        fraction = step / (self.steps - 1) if self.steps > 1 else 1.0
        return self.start_rate + fraction * (self.end_rate - self.start_rate)

    def next_change(self, t: float) -> Optional[float]:
        step_size = self.ramp_duration / self.steps
        step = self._step_of(t)
        while step < self.steps:
            boundary = (step + 1) * step_size
            if boundary > t:  # strictly after t, or the sim would livelock
                return boundary
            step += 1
        return None
