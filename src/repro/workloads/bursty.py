"""Bursty (on/off) open-loop workload.

The rate alternates between ``on_rate`` for ``on_duration`` seconds and
``off_rate`` for ``off_duration`` seconds, starting in the on phase.
With ``off_rate=0`` the off phases are completely silent -- the
transition handling in :class:`~repro.workloads.open_loop.OpenLoopWorkload`
restarts the exponential draw at each boundary, so bursts have sharp
edges rather than exponential tails bleeding across phases.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.workloads.open_loop import OpenLoopWorkload


class BurstyWorkload(OpenLoopWorkload):
    """On/off phases: bursts of ``on_rate`` separated by quiet periods."""

    name = "bursty"

    def __init__(
        self,
        on_rate: float = 100.0,
        off_rate: float = 0.0,
        on_duration: float = 5.0,
        off_duration: float = 5.0,
        clients: int = 1,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(rate=on_rate, clients=clients, sites=sites)
        if on_duration <= 0 or off_duration <= 0:
            raise ValueError("phase durations must be positive")
        self.on_rate = on_rate
        self.off_rate = off_rate
        self.on_duration = on_duration
        self.off_duration = off_duration

    @property
    def period(self) -> float:
        return self.on_duration + self.off_duration

    def in_on_phase(self, t: float) -> bool:
        return (t % self.period) < self.on_duration

    def rate_at(self, t: float) -> float:
        return self.on_rate if self.in_on_phase(t) else self.off_rate

    def next_change(self, t: float) -> Optional[float]:
        # Must return a boundary STRICTLY after ``t``: with non-float-exact
        # durations, t // period noise can land a candidate exactly at (or
        # before) the clock, and rescheduling at the same virtual time
        # would livelock the simulation.
        cycle_start = (t // self.period) * self.period
        for boundary in (
            cycle_start + self.on_duration,
            cycle_start + self.period,
            cycle_start + self.period + self.on_duration,
        ):
            if boundary > t:
                return boundary
        return cycle_start + 2.0 * self.period  # float-noise backstop
