"""Workload generation.

The paper's workloads are simple by design (§7.3): replicas batch client
requests into blocks of 1000 proposals without transaction payload, and
clients are closed-loop issuers.  The closed-loop client lives with the
PBFT engine; this package re-exports it and provides the block-payload
constants used across experiments.
"""

from repro.consensus.pbft import ClosedLoopClient

#: Requests per block proposal (§7.3: "blocks of 1000 proposals").
REQUESTS_PER_BLOCK = 1000

#: Pipeline depth used for all pipelined runs (§7.3: "3 instances").
PIPELINE_DEPTH = 3

__all__ = ["ClosedLoopClient", "PIPELINE_DEPTH", "REQUESTS_PER_BLOCK"]
