"""Workload generation.

The paper evaluates under a single closed-loop, fixed-batch workload
(§7.3); this package generalises that into pluggable traffic shapes so
the role-assignment machinery can be stressed under bursts, skew and
open-loop saturation:

* :class:`ClosedLoopWorkload` -- the paper's client: one outstanding
  request per client, next issued on completion;
* :class:`OpenLoopWorkload` -- Poisson arrivals at a constant rate,
  independent of service progress;
* :class:`BurstyWorkload` -- on/off phases with sharp transitions;
* :class:`SkewedWorkload` -- Zipf-weighted clients pinned to the
  deployment's cities (multi-region skew);
* :class:`RampWorkload` -- rate ramping up to find the saturation knee.

All workloads draw randomness from
:meth:`repro.sim.engine.Simulator.derive_rng`, so runs are bit-identical
under a fixed seed.  Engines attach workloads through
``attach_workload`` / the ``workload=`` constructor argument on their
cluster classes, or declaratively through
:mod:`repro.experiments.runner`.
"""

from typing import Any, Dict, Type

from repro.workloads.base import (
    CLIENT_ID_BASE,
    ClusterBinding,
    Workload,
    WorkloadClient,
    percentile,
)
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.closed_loop import ClosedLoopClient, ClosedLoopWorkload
from repro.workloads.compositions import DiurnalWorkload, FlashCrowdWorkload
from repro.workloads.open_loop import OpenLoopWorkload
from repro.workloads.ramp import RampWorkload
from repro.workloads.skewed import SkewedWorkload, zipf_weights

#: Requests per block proposal (§7.3: "blocks of 1000 proposals").
REQUESTS_PER_BLOCK = 1000

#: Pipeline depth used for all pipelined runs (§7.3: "3 instances").
PIPELINE_DEPTH = 3

#: Registry used by the scenario runner and the ``python -m repro`` CLI.
#: ``"saturated"`` (no client traffic, engines self-clocked at
#: REQUESTS_PER_BLOCK per block) is handled by the runner, not here.
WORKLOADS: Dict[str, Type[Workload]] = {
    ClosedLoopWorkload.name: ClosedLoopWorkload,
    OpenLoopWorkload.name: OpenLoopWorkload,
    BurstyWorkload.name: BurstyWorkload,
    SkewedWorkload.name: SkewedWorkload,
    RampWorkload.name: RampWorkload,
    DiurnalWorkload.name: DiurnalWorkload,
    FlashCrowdWorkload.name: FlashCrowdWorkload,
}


def make_workload(name: str, **params: Any) -> Workload:
    """Instantiate a registered workload by name with keyword params."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise ValueError(f"unknown workload {name!r} (known: {known})") from None
    return factory(**params)


__all__ = [
    "CLIENT_ID_BASE",
    "BurstyWorkload",
    "ClosedLoopClient",
    "ClosedLoopWorkload",
    "ClusterBinding",
    "DiurnalWorkload",
    "FlashCrowdWorkload",
    "OpenLoopWorkload",
    "PIPELINE_DEPTH",
    "RampWorkload",
    "REQUESTS_PER_BLOCK",
    "SkewedWorkload",
    "WORKLOADS",
    "Workload",
    "WorkloadClient",
    "make_workload",
    "percentile",
    "zipf_weights",
]
