"""Workload abstraction: pluggable traffic generators for the engines.

A :class:`Workload` is a traffic source that can be attached to any
cluster (PBFT, HotStuff, Kauri).  The cluster hands the workload a
:class:`ClusterBinding` -- simulator, network, replica count and reply
quorum -- and the workload creates one or more :class:`WorkloadClient`
endpoints that issue :class:`~repro.consensus.messages.ClientRequest`
messages and collect :class:`~repro.consensus.messages.Reply` messages.

All randomness comes from generators derived via
:meth:`repro.sim.engine.Simulator.derive_rng`, so a scenario replays
bit-identically under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.engine import Simulator
from repro.sim.network import Network

#: Client node ids start here; ids below are replica ids.
CLIENT_ID_BASE = 1000

# The message classes live in repro.consensus, whose engine modules import
# this module at class-definition time -- so they resolve lazily (on first
# client construction) to break the import cycle, then stay cached in the
# module globals for the per-message hot path.
ClientRequest = None
Reply = None


def _import_messages() -> None:
    global ClientRequest, Reply
    if ClientRequest is None:
        from repro.consensus.messages import ClientRequest, Reply  # noqa: F811


@dataclass
class ClusterBinding:
    """What a cluster exposes to a workload when attaching it.

    Attributes
    ----------
    replies_needed:
        Distinct replica replies a client waits for before it counts a
        request as complete.  ``f + 1`` for PBFT/HotStuff (matching
        replies outvote faulty replicas); ``1`` for Kauri, where only the
        tree root tracks commits.
    place_client:
        Callback ``(client_id, site_index)`` registering where a client
        lives so the cluster's link-delay function can route its traffic;
        ``site_index=None`` leaves the cluster default (the observer
        city) in place.
    """

    sim: Simulator
    network: Network
    n: int
    f: int
    replies_needed: int
    place_client: Callable[[int, Optional[int]], None]


class ClientSiteRouter:
    """Routes client node ids onto replica cities for link-delay lookup.

    Clusters share this instead of each reimplementing the id-to-site
    mapping: replicas map to themselves, clients map to their pinned city
    (or ``default_site``), and co-located pairs fall back to a sub-ms
    local delay.
    """

    def __init__(self, one_way: Callable[[int, int], float], n: int,
                 default_site: int = 0, local_delay: float = 0.0005):
        self.one_way = one_way
        self.n = n
        self.default_site = default_site % n
        self.local_delay = local_delay
        self.sites: Dict[int, int] = {}

    def place(self, client_id: int, site: Optional[int]) -> None:
        """`place_client` callback for :class:`ClusterBinding`."""
        if site is not None:
            self.sites[client_id] = site % self.n

    def site_of(self, node: int) -> int:
        if node >= CLIENT_ID_BASE:
            return self.sites.get(node, self.default_site)
        return node

    def delay(self, a: int, b: int) -> float:
        # site_of() inlined: this runs once per simulated message on
        # client-driven clusters.
        if a >= CLIENT_ID_BASE:
            a = self.sites.get(a, self.default_site)
        if b >= CLIENT_ID_BASE:
            b = self.sites.get(b, self.default_site)
        return self.one_way(a, b) or self.local_delay

    # The router is installed as the network's delay provider directly
    # (``network.one_way_delay = router``) so its ``row`` view reaches
    # the multicast batch paths.
    __call__ = delay

    def row(self, src):
        """Row view for the network's batch send paths.

        Replica sources forward the underlying provider's row: replica
        multicasts only ever target replicas, every distinct replica
        pair's delay is >= 0.5 ms (the ``or local_delay`` floor never
        fires for them), and the network handles ``src == dst`` before
        row lookup -- so the raw row is exactly what :meth:`delay` would
        return per destination.  Client sources answer ``None``: their
        site mapping (and the co-located local-delay floor against their
        own site) needs the scalar path.
        """
        if src >= CLIENT_ID_BASE:
            return None
        row_fn = getattr(self.one_way, "row", None)
        return row_fn(src) if row_fn is not None else None

    def delay_floor(self) -> float:
        """Lower bound on every delay the router can answer: the
        underlying provider's floor, clamped by the co-located client
        fallback (``or local_delay`` turns any 0.0 into it).  Answers
        0.0 -- "no bound known" -- when the provider has none."""
        fn = getattr(self.one_way, "delay_floor", None)
        if fn is None:
            return 0.0
        floor = fn()
        if floor <= 0.0:
            return 0.0
        return min(floor, self.local_delay)


class WorkloadClient:
    """One client endpoint; supports multiple outstanding requests.

    Latency is measured from request send to the ``replies_needed``-th
    distinct replica reply, as in the paper's closed-loop clients.
    """

    def __init__(
        self,
        client_id: int,
        binding: ClusterBinding,
        on_complete: Optional[Callable[[int], None]] = None,
    ):
        _import_messages()
        self.id = client_id
        self.n = binding.n
        self.sim = binding.sim
        self.network = binding.network
        self.replies_needed = binding.replies_needed
        self.on_complete = on_complete
        self.next_request = 0
        self.sent = 0
        self.completed = 0
        self.latencies: List[Tuple[float, float]] = []  # (complete_time, latency)
        #: Streaming mode: a callable ``(complete_time, latency)`` that
        #: replaces (or, for the checked twin, shadows) the list above.
        self._latency_sink: Optional[Callable[[float, float], None]] = None
        self._send_times: Dict[int, float] = {}
        self._voters: Dict[int, set] = {}
        binding.network.register(client_id, self.on_message)
        # Columnar planes hand consecutive same-class reply runs to
        # handle_ReplyBatch in one call instead of per-row dispatch.
        binding.network.register_batch_endpoint(client_id, self)

    def __setstate__(self, state: Dict) -> None:
        # A client restored from a checkpoint skips __init__, but its
        # message hot path reads the lazily-imported module globals
        # (``Reply``/``ClientRequest``) -- resolve them before traffic
        # arrives in the resumed process.
        _import_messages()
        self.__dict__.update(state)

    def submit(self) -> int:
        """Broadcast one request to every replica; returns its id."""
        self.next_request += 1
        self.sent += 1
        request = ClientRequest(
            client_id=self.id,
            request_id=self.next_request,
            send_time=self.sim.now,
        )
        self._send_times[self.next_request] = self.sim.now
        self._voters[self.next_request] = set()
        for replica in range(self.n):
            self.network.send(self.id, replica, request, request.wire_size)
        return self.next_request

    def on_message(self, src: int, message) -> None:
        if not isinstance(message, Reply):
            return
        voters = self._voters.get(message.request_id)
        if voters is None:
            return
        voters.add(src)
        if len(voters) >= self.replies_needed:
            send_time = self._send_times.pop(message.request_id)
            del self._voters[message.request_id]
            self.completed += 1
            now = self.sim.now
            sink = self._latency_sink
            if sink is None:
                self.latencies.append((now, now - send_time))
            else:
                sink(now, now - send_time)
            if self.on_complete is not None:
                self.on_complete(message.request_id)

    def handle_ReplyBatch(self, srcs, messages, times) -> Optional[int]:
        """Batch twin of :meth:`on_message` for ``Reply`` runs
        (see ``Network.register_batch_endpoint``).

        Rows that only accumulate a voter mutate local state and are
        consumed freely; a row that completes a request sets ``sim.now``
        to its arrival time first (the latency sample and anything
        ``on_complete`` does must observe it) and, when an
        ``on_complete`` callback exists, stops the batch right after --
        the callback may submit a new request, and those sends must
        precede the remaining rows in global event order on the exact
        planes.
        """
        voters_map = self._voters
        needed = self.replies_needed
        sim = self.sim
        on_complete = self.on_complete
        k = 0
        for message in messages:
            voters = voters_map.get(message.request_id)
            if voters is not None:
                voters.add(srcs[k])
                if len(voters) >= needed:
                    sim.now = times[k]
                    send_time = self._send_times.pop(message.request_id)
                    del voters_map[message.request_id]
                    self.completed += 1
                    now = sim.now
                    sink = self._latency_sink
                    if sink is None:
                        self.latencies.append((now, now - send_time))
                    else:
                        sink(now, now - send_time)
                    if on_complete is not None:
                        on_complete(message.request_id)
                        return k + 1
            k += 1
        return None

    def latency_series(self, duration: float, bucket: float = 1.0):
        """Mean end-to-end latency per time bucket."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for time, latency in self.latencies:
            index = int(time / bucket)
            sums[index] = sums.get(index, 0.0) + latency
            counts[index] = counts.get(index, 0) + 1
        return [
            (index * bucket, sums[index] / counts[index]) for index in sorted(sums)
        ]


class _SketchSink:
    """Streams client completions into a shared sketch (one request per
    completion, so the sketch's block counter doubles as ``completed``).
    A class, not a closure: sinks sit inside the checkpointed object
    graph and must pickle."""

    __slots__ = ("sketch",)

    def __init__(self, sketch):
        self.sketch = sketch

    def __call__(self, complete_time: float, latency: float) -> None:
        self.sketch.observe(complete_time, latency, 1)


class _DualSink:
    """Checked-twin sink: exact list and sketch both see every sample."""

    __slots__ = ("latencies", "sketch")

    def __init__(self, latencies, sketch):
        self.latencies = latencies
        self.sketch = sketch

    def __call__(self, complete_time: float, latency: float) -> None:
        self.latencies.append((complete_time, latency))
        self.sketch.observe(complete_time, latency, 1)


class Workload:
    """Base class for traffic generators.

    Lifecycle: construct with shape parameters, :meth:`bind` to a
    cluster, :meth:`start` when the run begins, :meth:`stop` at the end.
    Subclasses override :meth:`_make_clients` (how many endpoints, where
    they live) and the generation logic.
    """

    name = "base"

    def __init__(self, clients: int = 1, sites: Optional[Sequence[int]] = None):
        if clients < 1:
            raise ValueError(f"need at least one client, got {clients}")
        self.num_clients = clients
        self.sites = list(sites) if sites is not None else None
        self.clients: List[WorkloadClient] = []
        self.binding: Optional[ClusterBinding] = None
        self.running = False
        #: Shared MetricsSketch when streaming measurement is on.
        self._stream_sketch = None
        self._stream_keep_exact = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, binding: ClusterBinding) -> None:
        # Re-binding (the same Workload instance run through a second
        # cluster) starts from a clean slate: clients wired to the old
        # simulator are dropped so metrics never mix runs.
        self.clients = []
        self.running = False
        self.binding = binding
        self.rng = binding.sim.derive_rng(f"workload:{self.name}")
        self._make_clients(binding)

    def _make_clients(self, binding: ClusterBinding) -> None:
        for k in range(self.num_clients):
            site = self._site_of(k, binding)
            binding.place_client(CLIENT_ID_BASE + k, site)
            client = WorkloadClient(CLIENT_ID_BASE + k, binding, self._on_complete)
            if self._stream_sketch is not None:
                self._wire_sink(client)
            self.clients.append(client)

    def enable_streaming(self, sketch, keep_exact: bool = False) -> None:
        """Stream client latencies into ``sketch`` instead of the
        per-request list (O(1) client memory).

        With ``keep_exact=True`` the list is kept too -- the dual-write
        configuration ``metrics="check"`` uses to compare paths.  Applies
        to existing clients and to any created by a later rebind.
        """
        self._stream_sketch = sketch
        self._stream_keep_exact = keep_exact
        for client in self.clients:
            self._wire_sink(client)

    def _wire_sink(self, client: WorkloadClient) -> None:
        if self._stream_keep_exact:
            client._latency_sink = _DualSink(client.latencies, self._stream_sketch)
        else:
            client._latency_sink = _SketchSink(self._stream_sketch)

    def _site_of(self, k: int, binding: ClusterBinding) -> Optional[int]:
        if self.sites is not None:
            return self.sites[k % len(self.sites)]
        # Multi-client workloads spread clients across replica cities;
        # a single client keeps the cluster's default observer city.
        return k % binding.n if self.num_clients > 1 else None

    def start(self) -> None:
        self.running = True

    def stop(self) -> None:
        self.running = False

    def _on_complete(self, request_id: int) -> None:
        """Hook called when any client's request completes."""

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def sent(self) -> int:
        return sum(client.sent for client in self.clients)

    @property
    def completed(self) -> int:
        return sum(client.completed for client in self.clients)

    def latencies(self) -> List[Tuple[float, float]]:
        """All (complete_time, latency) pairs, merged and time-sorted."""
        merged: List[Tuple[float, float]] = []
        for client in self.clients:
            merged.extend(client.latencies)
        merged.sort()
        return merged

    def summary(self) -> Dict[str, float]:
        out = {"requests_sent": self.sent, "requests_completed": self.completed}
        sketch = self._stream_sketch
        if sketch is not None and not self._stream_keep_exact:
            # Pure streaming: the exact list was never kept.
            stats = sketch.summary()
            if stats is not None:
                out.update(
                    mean_latency=stats["mean"],
                    p50_latency=stats["p50"],
                    p90_latency=stats["p90"],
                    p99_latency=stats["p99"],
                )
            return out
        values = sorted(latency for _, latency in self.latencies())
        if values:
            out.update(
                mean_latency=sum(values) / len(values),
                p50_latency=percentile(values, 0.50),
                p90_latency=percentile(values, 0.90),
                p99_latency=percentile(values, 0.99),
            )
        return out


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an already-sorted sequence.

    Matches ``numpy.quantile(values, q, method="linear")`` (and
    therefore ``numpy.percentile`` up to its internal ``q*100/100``
    round-trip) bit-for-bit: the virtual index is ``q * (n - 1)`` and the
    interpolation uses numpy's numerically-symmetric lerp (anchored at
    the *upper* order statistic once the fraction reaches 0.5).  ``q``
    outside ``[0, 1]`` clamps to the extremes; an empty input is NaN
    (numpy raises instead -- the callers here treat "no samples" as a
    missing metric, not an error).
    """
    if not sorted_values:
        return float("nan")
    if q <= 0.0:
        return sorted_values[0]
    if q >= 1.0:
        return sorted_values[-1]
    position = q * (len(sorted_values) - 1)
    lower_rank = int(position)
    fraction = position - lower_rank
    lower = sorted_values[lower_rank]
    if fraction == 0.0:
        return lower
    upper = sorted_values[lower_rank + 1]
    span = upper - lower
    if fraction < 0.5:
        return lower + span * fraction
    return upper - span * (1.0 - fraction)
