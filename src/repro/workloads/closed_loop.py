"""Closed-loop clients: the paper's workload (§7.3).

Each client keeps exactly one request outstanding and issues the next as
soon as the previous one completes (optionally after a think time).
Offered load therefore tracks service capacity -- the classic closed
loop.  :class:`ClosedLoopClient` is the standalone client the PBFT
engine has always used (it lived in ``repro.consensus.pbft`` before the
workload subsystem existed); :class:`ClosedLoopWorkload` wraps one or
more of them behind the :class:`~repro.workloads.base.Workload`
interface so HotStuff and Kauri can share the same traffic shape.

``ClosedLoopClient`` intentionally does NOT reuse
:class:`~repro.workloads.base.WorkloadClient`: its exact bookkeeping and
event ordering are what keep the Fig. 7 timeline bit-identical to the
pre-workload-subsystem runs, so it is preserved verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.workloads import base
from repro.workloads.base import CLIENT_ID_BASE, ClusterBinding, Workload


class ClosedLoopClient:
    """One closed-loop client (the paper's per-city clients; Fig. 7
    measures a representative one)."""

    def __init__(
        self,
        client_id: int,
        n: int,
        f: int,
        sim: Simulator,
        network: Network,
        think_time: float = 0.0,
        replies_needed: Optional[int] = None,
    ):
        base._import_messages()  # lazy: breaks the consensus import cycle
        self.id = client_id
        self.n = n
        self.f = f
        self.sim = sim
        self.network = network
        self.think_time = think_time
        self.replies_needed = replies_needed if replies_needed is not None else f + 1
        self.next_request = 0
        self.replies: Dict[int, Set[int]] = {}
        self.latencies: List = []  # (complete_time, latency)
        self.outstanding: Optional[int] = None
        self.running = False
        self._last_send_time = 0.0
        network.register(client_id, self.on_message)

    @property
    def sent(self) -> int:
        return self.next_request

    @property
    def completed(self) -> int:
        return len(self.latencies)

    def start(self) -> None:
        self.running = True
        self._send_next()

    def stop(self) -> None:
        self.running = False

    def _send_next(self) -> None:
        if not self.running:
            return
        self.next_request += 1
        request = base.ClientRequest(
            client_id=self.id,
            request_id=self.next_request,
            send_time=self.sim.now,
        )
        self.outstanding = self.next_request
        self._last_send_time = self.sim.now
        self.replies[self.next_request] = set()
        for replica in range(self.n):
            self.network.send(self.id, replica, request, request.wire_size)

    def on_message(self, src: int, message) -> None:
        if not isinstance(message, base.Reply) or not self.running:
            return
        if message.request_id != self.outstanding:
            return
        voters = self.replies.setdefault(message.request_id, set())
        voters.add(src)
        if len(voters) == self.replies_needed:
            # Latency from request send to the f+1-th matching reply.
            self.latencies.append(
                (self.sim.now, self.sim.now - self._last_send_time)
            )
            self.outstanding = None
            if self.think_time > 0:
                self.sim.schedule(self.think_time, self._send_next)
            else:
                self._send_next()

    def latency_series(self, duration: float, bucket: float = 1.0):
        """Mean end-to-end latency per time bucket, Fig. 7's series."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for time, latency in self.latencies:
            index = int(time / bucket)
            sums[index] = sums.get(index, 0.0) + latency
            counts[index] = counts.get(index, 0) + 1
        return [
            (index * bucket, sums[index] / counts[index]) for index in sorted(sums)
        ]


class ClosedLoopWorkload(Workload):
    """``clients`` closed-loop issuers, optionally pinned to cities."""

    name = "closed-loop"

    def __init__(
        self,
        clients: int = 1,
        think_time: float = 0.0,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(clients=clients, sites=sites)
        self.think_time = think_time

    def _make_clients(self, binding: ClusterBinding) -> None:
        for k in range(self.num_clients):
            binding.place_client(CLIENT_ID_BASE + k, self._site_of(k, binding))
            self.clients.append(
                ClosedLoopClient(
                    client_id=CLIENT_ID_BASE + k,
                    n=binding.n,
                    f=binding.f,
                    sim=binding.sim,
                    network=binding.network,
                    think_time=self.think_time,
                    replies_needed=binding.replies_needed,
                )
            )

    def start(self) -> None:
        super().start()
        for client in self.clients:
            client.start()

    def stop(self) -> None:
        super().stop()
        for client in self.clients:
            client.stop()
