"""Skewed multi-region workload: Zipf-weighted clients pinned to cities.

One client per region (a replica city from ``net.cities`` via the
deployment), with arrival mass distributed by a Zipf law: region ``i``
(0-based rank) receives weight proportional to ``1 / (i + 1)**skew``.
``skew=0`` is uniform; larger values concentrate traffic in the first
regions, producing the geographically-skewed demand under which role
placement (leader city, tree shape) matters most.
"""

from __future__ import annotations

from bisect import bisect_left
from itertools import accumulate
from typing import List, Optional, Sequence

from repro.workloads.base import ClusterBinding
from repro.workloads.open_loop import OpenLoopWorkload


def zipf_weights(k: int, skew: float = 1.0) -> List[float]:
    """Normalized Zipf weights for ``k`` ranks (sum exactly 1.0)."""
    if k < 1:
        raise ValueError("need at least one rank")
    raw = [1.0 / (rank + 1) ** skew for rank in range(k)]
    total = sum(raw)
    return [weight / total for weight in raw]


class SkewedWorkload(OpenLoopWorkload):
    """Poisson arrivals split across region-pinned clients by Zipf rank."""

    name = "skewed"

    def __init__(
        self,
        rate: float = 50.0,
        clients: int = 8,
        skew: float = 1.0,
        sites: Optional[Sequence[int]] = None,
    ):
        super().__init__(rate=rate, clients=clients, sites=sites)
        self.skew = skew
        self.requested_clients = clients
        self.weights: List[float] = []
        self._cumulative: List[float] = []

    def bind(self, binding: ClusterBinding) -> None:
        # Never more regions than cities in the deployment; recomputed
        # from the requested count so rebinding to a larger cluster is
        # not stuck with an earlier, smaller clamp.
        self.num_clients = min(self.requested_clients, binding.n)
        super().bind(binding)
        self.weights = zipf_weights(len(self.clients), self.skew)
        self._cumulative = list(accumulate(self.weights))
        self._cumulative[-1] = 1.0  # guard against float drift

    def _site_of(self, k: int, binding: ClusterBinding) -> Optional[int]:
        if self.sites is not None:
            return self.sites[k % len(self.sites)]
        return k % binding.n  # client k lives in replica k's city

    def _pick_client(self):
        return self.clients[bisect_left(self._cumulative, self.rng.random())]
