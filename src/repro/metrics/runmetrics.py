"""RunMetrics-compatible streaming twins.

:class:`StreamingRunMetrics` answers the same questions as
:class:`repro.consensus.base.RunMetrics` -- totals, mean latency,
percentile summary, timeline series -- from a constant-size
:class:`MetricsSketch` instead of the full commit list.
:class:`CheckedRunMetrics` dual-writes both and can :meth:`~.verify`
that the sketch stayed inside its documented error bound, the same
checked-twin pattern ``check_score``/``check_rebuild`` use for the
role-assignment fast paths.

The selector lives in the scenario runner:
``MeasurementPolicy(metrics="exact" | "sketch" | "check")``.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.metrics.hist import LogHistogram
from repro.metrics.streaming import StreamingStats
from repro.metrics.windows import ThroughputWindows


class MeasurementDivergence(AssertionError):
    """The sketch strayed outside its documented bound of the exact path."""


class MetricsSketch:
    """The mergeable unit of campaign measurement.

    One latency histogram + one scalar accumulator + one windowed
    timeline, plus exact block/request counters.  This is what a
    campaign shard serialises, checkpoints, and merges.
    """

    __slots__ = ("hist", "latency", "windows", "blocks", "requests")

    def __init__(
        self,
        bins_per_decade: int = 100,
        window: float = 1.0,
        lo: float = 1e-6,
        hi: float = 1e4,
    ):
        self.hist = LogHistogram(lo=lo, hi=hi, bins_per_decade=bins_per_decade)
        self.latency = StreamingStats()
        self.windows = ThroughputWindows(window=window)
        self.blocks = 0
        self.requests = 0

    def observe(self, commit_time: float, latency: float, payload: int) -> None:
        """Fold one committed block in (the campaign hot path)."""
        self.blocks += 1
        self.requests += payload
        self.latency.add(latency)
        self.hist.add(latency)
        self.windows.add(commit_time, latency, payload)

    def merge(self, other: "MetricsSketch") -> "MetricsSketch":
        """Fold ``other`` in; associative/commutative with a fresh sketch
        of the same configuration as identity (float sums are exact-order
        dependent, so shards merge in deterministic shard order)."""
        self.hist.merge(other.hist)
        self.latency.merge(other.latency)
        self.windows.merge(other.windows)
        self.blocks += other.blocks
        self.requests += other.requests
        return self

    def summary(self) -> Optional[Dict[str, float]]:
        """``commit_latency`` dict shaped like the exact path's, or None."""
        if self.blocks == 0:
            return None
        return {
            "mean": self.latency.mean(),
            "p50": self.hist.quantile(0.50),
            "p90": self.hist.quantile(0.90),
            "p99": self.hist.quantile(0.99),
        }

    def error_bound(self) -> float:
        return self.hist.error_bound()

    def state_dict(self) -> Dict[str, object]:
        return {
            "hist": self.hist.state_dict(),
            "latency": self.latency.state_dict(),
            "windows": self.windows.state_dict(),
            "blocks": self.blocks,
            "requests": self.requests,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "MetricsSketch":
        sketch = cls.__new__(cls)
        sketch.hist = LogHistogram.from_state(state["hist"])
        sketch.latency = StreamingStats.from_state(state["latency"])
        sketch.windows = ThroughputWindows.from_state(state["windows"])
        sketch.blocks = state["blocks"]
        sketch.requests = state["requests"]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsSketch(blocks={self.blocks}, requests={self.requests})"


class StreamingRunMetrics:
    """Drop-in ``RunMetrics`` twin backed by a :class:`MetricsSketch`.

    Replicas feed it through :meth:`commit_sink` -- a callable taking a
    :class:`~repro.consensus.base.CommitEvent` -- or
    :meth:`record_commit`; both fold into the sketch and keep no
    per-commit state.
    """

    __slots__ = ("sketch",)

    #: Distinguishes streaming observers without isinstance imports.
    streaming = True

    def __init__(self, sketch: Optional[MetricsSketch] = None):
        self.sketch = sketch if sketch is not None else MetricsSketch()

    # -- ingest --------------------------------------------------------
    def commit_sink(self) -> Callable[[Any], None]:
        """Hot-path sink matching ``RunMetrics.commits.append``."""
        return self._ingest_event

    def _ingest_event(self, event: Any) -> None:
        self.sketch.observe(
            event.commit_time,
            event.commit_time - event.propose_time,
            event.payload_count,
        )

    def record_commit(
        self, height: int, commit_time: float, propose_time: float, payload: int
    ) -> None:
        self.sketch.observe(commit_time, commit_time - propose_time, payload)

    # -- queries (RunMetrics API) --------------------------------------
    def total_requests(self) -> int:
        return self.sketch.requests

    def committed_blocks(self) -> int:
        return self.sketch.blocks

    def throughput(self, duration: float) -> float:
        if duration <= 0:
            return 0.0
        return self.sketch.requests / duration

    def mean_latency(self) -> float:
        if self.sketch.blocks == 0:
            return float("inf")
        return self.sketch.latency.mean()

    def latency_summary(self) -> Optional[Dict[str, float]]:
        return self.sketch.summary()

    def throughput_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        return self.sketch.windows.throughput_series(duration, bucket)

    def latency_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        return self.sketch.windows.latency_series(duration, bucket)


class CheckedRunMetrics:
    """Dual-write twin: exact ``RunMetrics`` plus a streaming sketch.

    Reads are served by the exact side (so ``metrics="check"`` output is
    byte-identical to ``metrics="exact"``); :meth:`verify` then asserts
    the sketch reproduced the exact totals and stayed within
    ``error_bound()`` on every quantile.  This is the reference harness
    the property tests and the CI smoke drive.
    """

    __slots__ = ("exact", "streaming_metrics")

    streaming = False  # reads are exact

    def __init__(self, exact: Any, streaming_metrics: StreamingRunMetrics):
        self.exact = exact
        self.streaming_metrics = streaming_metrics

    # -- ingest --------------------------------------------------------
    def commit_sink(self) -> Callable[[Any], None]:
        exact_sink = self.exact.commit_sink()
        sketch_sink = self.streaming_metrics.commit_sink()

        def dual_sink(event: Any) -> None:
            exact_sink(event)
            sketch_sink(event)

        return dual_sink

    def record_commit(
        self, height: int, commit_time: float, propose_time: float, payload: int
    ) -> None:
        self.exact.record_commit(height, commit_time, propose_time, payload)
        self.streaming_metrics.record_commit(
            height, commit_time, propose_time, payload
        )

    # -- queries: exact side answers -----------------------------------
    @property
    def commits(self):
        return self.exact.commits

    def total_requests(self) -> int:
        return self.exact.total_requests()

    def committed_blocks(self) -> int:
        return self.exact.committed_blocks()

    def throughput(self, duration: float) -> float:
        return self.exact.throughput(duration)

    def mean_latency(self) -> float:
        return self.exact.mean_latency()

    def latency_summary(self) -> Optional[Dict[str, float]]:
        return self.exact.latency_summary()

    def throughput_series(self, duration: float, bucket: float = 1.0):
        return self.exact.throughput_series(duration, bucket)

    def latency_series(self, duration: float, bucket: float = 1.0):
        return self.exact.latency_series(duration, bucket)

    # -- the check -----------------------------------------------------
    def verify(self, duration: Optional[float] = None) -> None:
        """Raise :class:`MeasurementDivergence` if the sketch disagrees
        with the exact path beyond its documented bound."""
        exact = self.exact
        sketch = self.streaming_metrics.sketch
        if exact.committed_blocks() != sketch.blocks:
            raise MeasurementDivergence(
                f"sketch saw {sketch.blocks} blocks, exact path "
                f"{exact.committed_blocks()}"
            )
        if exact.total_requests() != sketch.requests:
            raise MeasurementDivergence(
                f"sketch saw {sketch.requests} requests, exact path "
                f"{exact.total_requests()}"
            )
        exact_summary = exact.latency_summary()
        sketch_summary = sketch.summary()
        if (exact_summary is None) != (sketch_summary is None):
            raise MeasurementDivergence(
                f"summary presence disagrees: exact={exact_summary!r} "
                f"sketch={sketch_summary!r}"
            )
        if exact_summary is None:
            return
        # The streaming mean is the same sum in the same order; only the
        # exact side's re-sum over the *sorted* list can differ, by float
        # association alone.
        if not math.isclose(
            sketch_summary["mean"], exact_summary["mean"], rel_tol=1e-9
        ):
            raise MeasurementDivergence(
                f"mean diverged: sketch={sketch_summary['mean']!r} "
                f"exact={exact_summary['mean']!r}"
            )
        bound = sketch.error_bound()
        for key in ("p50", "p90", "p99"):
            got = sketch_summary[key]
            want = exact_summary[key]
            scale = max(abs(want), 1e-12)
            relative = abs(got - want) / scale
            if relative > bound * (1.0 + 1e-9):
                raise MeasurementDivergence(
                    f"{key} diverged by {relative:.3%} "
                    f"(bound {bound:.3%}): sketch={got!r} exact={want!r}"
                )
        if duration is not None:
            exact_tp = exact.throughput(duration)
            sketch_tp = self.streaming_metrics.throughput(duration)
            if exact_tp != sketch_tp:
                raise MeasurementDivergence(
                    f"throughput diverged: sketch={sketch_tp!r} exact={exact_tp!r}"
                )
