"""Streaming scalar accumulator: count / sum / min / max in O(1)."""

from __future__ import annotations

import math
from typing import Dict


class StreamingStats:
    """Mergeable running statistics over a stream of floats.

    ``add`` is exact for count, sum, min and max (``mean`` is their
    quotient), so any aggregate derived from these four matches the
    batch computation bit-for-bit as long as values arrive in the same
    order (float addition is order-sensitive; the campaign plane merges
    shards in deterministic shard order for exactly this reason).
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Fold ``other`` into ``self``; associative/commutative for
        count/min/max, associative-in-merge-order for the float sum."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def state_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "StreamingStats":
        stats = cls()
        stats.count = state["count"]
        stats.total = state["total"]
        stats.min = state["min"] if state["min"] is not None else math.inf
        stats.max = state["max"] if state["max"] is not None else -math.inf
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingStats(count={self.count}, mean={self.mean():.6g})"
