"""Windowed commit accounting: the timeline series in O(duration/window).

:class:`repro.consensus.base.RunMetrics` rebuilds its throughput and
latency timelines from the full commit list on every query.  The
streaming twin folds each commit into its fixed time window as it
happens, so memory scales with elapsed virtual time, never with request
volume.  Fed the same commits in the same order, the reconstructed
series are bit-identical to ``RunMetrics.throughput_series`` /
``latency_series`` at the same bucket width: requests per window are
integer sums (exact in floats far beyond any campaign size) and latency
sums accumulate in commit order, the same order the exact path reduces
them.

The window width is fixed at construction -- a sketch cannot answer a
finer granularity after the fact -- and querying or merging at a
mismatched width is a loud error rather than a silently rebinned
series.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class ThroughputWindows:
    """Per-window request / block / latency-sum accumulators."""

    __slots__ = ("window", "_requests", "_blocks", "_latency_sums")

    def __init__(self, window: float = 1.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = float(window)
        self._requests: Dict[int, int] = {}
        self._blocks: Dict[int, int] = {}
        self._latency_sums: Dict[int, float] = {}

    def add(self, commit_time: float, latency: float, payload: int) -> None:
        """Fold one committed block into its window (the hot path)."""
        index = int(commit_time / self.window)
        requests = self._requests
        requests[index] = requests.get(index, 0) + payload
        blocks = self._blocks
        blocks[index] = blocks.get(index, 0) + 1
        sums = self._latency_sums
        sums[index] = sums.get(index, 0.0) + latency

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "ThroughputWindows") -> "ThroughputWindows":
        if self.window != other.window:
            raise ValueError(
                f"cannot merge windows of width {self.window} and {other.window}"
            )
        for index, payload in other._requests.items():
            self._requests[index] = self._requests.get(index, 0) + payload
        for index, blocks in other._blocks.items():
            self._blocks[index] = self._blocks.get(index, 0) + blocks
        for index, total in other._latency_sums.items():
            self._latency_sums[index] = self._latency_sums.get(index, 0.0) + total
        return self

    # ------------------------------------------------------------------
    # Series reconstruction (RunMetrics-compatible shapes)
    # ------------------------------------------------------------------
    def _check_bucket(self, bucket: float) -> None:
        if bucket != self.window:
            raise ValueError(
                f"series recorded at window={self.window}; cannot answer "
                f"bucket={bucket} after the fact"
            )

    def throughput_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        """``[(window_start, requests_per_second), ...]`` over ``duration``."""
        self._check_bucket(bucket)
        buckets = int(duration / bucket) + 1
        requests = self._requests
        return [
            (index * bucket, requests.get(index, 0) / bucket)
            for index in range(buckets)
        ]

    def latency_series(
        self, duration: float, bucket: float = 1.0
    ) -> List[Tuple[float, float]]:
        """Mean commit latency per non-empty window, like
        ``RunMetrics.latency_series`` (which also ignores ``duration``)."""
        self._check_bucket(bucket)
        sums = self._latency_sums
        blocks = self._blocks
        return [(index * bucket, sums[index] / blocks[index]) for index in sorted(sums)]

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "windows": [
                [
                    index,
                    self._requests.get(index, 0),
                    self._blocks.get(index, 0),
                    self._latency_sums.get(index, 0.0),
                ]
                for index in sorted(self._blocks)
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ThroughputWindows":
        windows = cls(window=state["window"])
        for index, requests, blocks, latency_sum in state["windows"]:
            windows._requests[index] = requests
            windows._blocks[index] = blocks
            windows._latency_sums[index] = latency_sum
        return windows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThroughputWindows(window={self.window}, "
            f"populated={len(self._blocks)})"
        )
