"""Fixed-bin log-scale histogram with bounded-error quantiles.

The bins are geometrically spaced: with ``bins_per_decade`` = B, bin
``i`` covers ``[lo * r**i, lo * r**(i+1))`` where ``r = 10**(1/B)``.
A value is represented by the geometric midpoint of its bin, so any
single sample is reproduced within a multiplicative factor of
``sqrt(r)`` -- the **relative error bound**

    ``error_bound() = 10 ** (1 / (2 * bins_per_decade)) - 1``

(~1.16% at the default 100 bins/decade).  Quantile queries interpolate
between the bins holding the two bracketing order statistics exactly the
way :func:`repro.workloads.percentile` interpolates between the order
statistics themselves, and clamp into the exactly-tracked ``[min, max]``
envelope; the result therefore stays within ``error_bound()`` (relative)
of the exact linear-interpolated percentile for every distribution whose
values lie inside ``[lo, hi)``.  Constant and single-sample inputs are
exact thanks to the clamp.

Values outside ``[lo, hi)`` are clamped into the edge bins and counted
in ``clamped_low`` / ``clamped_high``; the error bound does not apply to
them (min/max stay exact either way).  The default domain --
1 microsecond to 10,000 seconds -- brackets every latency this simulator
can produce by orders of magnitude.

Merging requires identical bin geometry and is a per-bin integer add:
associative, commutative, with the empty histogram as identity.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


class LogHistogram:
    """Mergeable log-scale histogram over ``[lo, hi)``."""

    __slots__ = (
        "lo",
        "hi",
        "bins_per_decade",
        "counts",
        "count",
        "total",
        "min",
        "max",
        "clamped_low",
        "clamped_high",
        "_scale",
        "_log_lo",
        "_n_bins",
    )

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 1e4,
        bins_per_decade: int = 100,
    ):
        if not (0.0 < lo < hi):
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r} hi={hi!r}")
        if bins_per_decade < 1:
            raise ValueError(f"bins_per_decade must be >= 1, got {bins_per_decade!r}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_decade = int(bins_per_decade)
        self._log_lo = math.log10(self.lo)
        self._scale = float(self.bins_per_decade)
        self._n_bins = self._index_of(self.hi) + 1
        self.counts: List[int] = [0] * self._n_bins
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.clamped_low = 0
        self.clamped_high = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _index_of(self, value: float) -> int:
        return int((math.log10(value) - self._log_lo) * self._scale)

    def bin_edges(self, index: int) -> tuple:
        """``(low, high)`` edges of bin ``index``."""
        step = 1.0 / self.bins_per_decade
        return (
            10.0 ** (self._log_lo + index * step),
            10.0 ** (self._log_lo + (index + 1) * step),
        )

    def _bin_value(self, index: int) -> float:
        """Geometric midpoint of bin ``index`` (its representative value)."""
        return 10.0 ** (self._log_lo + (index + 0.5) / self.bins_per_decade)

    def error_bound(self) -> float:
        """Documented max relative error of :meth:`quantile` for in-domain
        values: half a bin, multiplicatively."""
        return 10.0 ** (1.0 / (2.0 * self.bins_per_decade)) - 1.0

    def compatible_with(self, other: "LogHistogram") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.bins_per_decade == other.bins_per_decade
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Record one observation (the campaign hot path)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value < self.lo:
            self.clamped_low += 1
            self.counts[0] += 1
            return
        index = int((math.log10(value) - self._log_lo) * self._scale)
        if index >= self._n_bins:
            self.clamped_high += 1
            index = self._n_bins - 1
        self.counts[index] += 1

    def add_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into ``self`` (in place); returns ``self``.

        Associative and commutative; a fresh histogram with the same
        geometry is the identity.  Histograms with different geometry
        cannot be merged -- quantiles would silently drift -- so that is
        a loud error.
        """
        if not self.compatible_with(other):
            raise ValueError(
                "cannot merge histograms with different geometry: "
                f"(lo={self.lo}, hi={self.hi}, bpd={self.bins_per_decade}) vs "
                f"(lo={other.lo}, hi={other.hi}, bpd={other.bins_per_decade})"
            )
        counts = self.counts
        for index, extra in enumerate(other.counts):
            if extra:
                counts[index] += extra
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.clamped_low += other.clamped_low
        self.clamped_high += other.clamped_high
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bounded-error analogue of ``percentile(sorted_values, q)``.

        Interpolates between the representative values of the bins
        holding the ``floor(pos)``-th and ``ceil(pos)``-th order
        statistics (``pos = q * (count - 1)``), then clamps into the
        exact ``[min, max]`` envelope.
        """
        if self.count == 0:
            return math.nan
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        pos = q * (self.count - 1)
        lo_rank = math.floor(pos)
        frac = pos - lo_rank
        value_lo = self._value_at_rank(lo_rank)
        if frac == 0.0:
            result = value_lo
        else:
            value_hi = self._value_at_rank(lo_rank + 1)
            result = value_lo + frac * (value_hi - value_lo)
        return min(self.max, max(self.min, result))

    def _value_at_rank(self, rank: int) -> float:
        """Representative value of the ``rank``-th (0-based) order statistic."""
        remaining = rank
        for index, bucket in enumerate(self.counts):
            if bucket:
                if remaining < bucket:
                    return self._bin_value(index)
                remaining -= bucket
        return self._bin_value(self._n_bins - 1)  # pragma: no cover - rank<count

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Plain-data state: JSON-able, merge-transportable across
        processes.  Bins are stored sparsely as ``[index, count]`` pairs
        in index order so the state stays small and deterministic."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins_per_decade": self.bins_per_decade,
            "bins": [
                [index, bucket]
                for index, bucket in enumerate(self.counts)
                if bucket
            ],
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "clamped_low": self.clamped_low,
            "clamped_high": self.clamped_high,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "LogHistogram":
        hist = cls(
            lo=state["lo"],
            hi=state["hi"],
            bins_per_decade=state["bins_per_decade"],
        )
        for index, bucket in state["bins"]:
            hist.counts[index] = bucket
        hist.count = state["count"]
        hist.total = state["total"]
        hist.min = state["min"] if state["min"] is not None else math.inf
        hist.max = state["max"] if state["max"] is not None else -math.inf
        hist.clamped_low = state["clamped_low"]
        hist.clamped_high = state["clamped_high"]
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, mean={self.mean():.6g}, "
            f"bpd={self.bins_per_decade})"
        )
