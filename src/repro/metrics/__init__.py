"""Streaming measurement plane: mergeable online sketches.

A million-request campaign cannot afford the exact measurement path --
one :class:`~repro.consensus.base.CommitEvent` per committed block at
every replica, one ``(time, latency)`` tuple per completed request at
every client, and a full sort at the end.  This package provides the
O(1)-memory twin:

* :class:`LogHistogram` -- fixed-bin log-scale latency histogram with
  quantile queries inside a documented relative-error bound;
* :class:`StreamingStats` -- count / sum / min / max / mean in five
  floats;
* :class:`ThroughputWindows` -- committed work per fixed time window
  (the timeline series the figures plot), O(duration / window) memory
  independent of request volume;
* :class:`MetricsSketch` -- the three combined, the unit a campaign
  shard checkpoints and merges;
* :class:`StreamingRunMetrics` / :class:`CheckedRunMetrics` -- drop-in
  twins of :class:`repro.consensus.base.RunMetrics` selected through
  ``MeasurementPolicy(metrics=...)`` in the scenario runner.

Every sketch is **mergeable**: ``merge`` is associative and commutative
with an identity (the freshly constructed sketch), so a sharded campaign
can combine per-shard sketches in shard order and land byte-identical to
the serial run.  Every sketch serialises to a plain dict
(``state_dict``/``from_state``) containing only ints and floats, so
checkpoints and cross-process merges never pickle live objects.
"""

from repro.metrics.hist import LogHistogram
from repro.metrics.runmetrics import (
    CheckedRunMetrics,
    MeasurementDivergence,
    MetricsSketch,
    StreamingRunMetrics,
)
from repro.metrics.streaming import StreamingStats
from repro.metrics.windows import ThroughputWindows

__all__ = [
    "CheckedRunMetrics",
    "LogHistogram",
    "MeasurementDivergence",
    "MetricsSketch",
    "StreamingRunMetrics",
    "StreamingStats",
    "ThroughputWindows",
]
