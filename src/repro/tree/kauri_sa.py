"""Kauri-sa: Kauri with simulated-annealing tree formation (§7.5).

The paper's ablation variant: Kauri benefits from annealed tree search,
but lacks OptiLog's estimate ``u`` and candidate bookkeeping.  Therefore

* trees are scored for the worst case ``k = q + f`` (it must budget for
  ``f`` missing votes, not the observed ``u``), and
* after every failed tree, *all* of its internal nodes are excluded from
  future candidacy -- a whole ``b + 1`` replicas per failure, which is
  why Kauri-sa runs out of good candidates long before OptiTree does
  (Fig. 10).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Set

import numpy as np

from repro.optimize.annealing import AnnealingSchedule
from repro.tree.optitree import optitree_search, optitree_search_sharded
from repro.tree.topology import TreeConfiguration, branch_factor_for


class KauriSaReconfigurer:
    """Sequence of annealed trees with internal-node blacklisting.

    ``shards > 1`` switches :meth:`next_tree` to the candidate-set-sharded
    search (:func:`optitree_search_sharded`): per-call root seeds are
    drawn from the reconfigurer's own RNG stream (so successive trees
    stay independent) and each shard's seed is derived from that root, so
    the chosen tree is byte-identical for any ``jobs`` value.
    """

    def __init__(
        self,
        latency: np.ndarray,
        n: int,
        f: int,
        rng: Optional[random.Random] = None,
        schedule: Optional[AnnealingSchedule] = None,
        shards: int = 1,
        jobs: int = 1,
    ):
        self.latency = latency
        self.n = n
        self.f = f
        self.branch_factor = branch_factor_for(n)
        self.rng = rng or random.Random(0)
        self.schedule = schedule or AnnealingSchedule(
            iterations=20_000, initial_temperature=0.05, cooling=0.9995
        )
        self.shards = shards
        self.jobs = jobs
        self.excluded: Set[int] = set()
        self.trees_formed = 0
        self._candidates: Optional[FrozenSet[int]] = None

    @property
    def candidates(self) -> FrozenSet[int]:
        # Cached: the search layer reads this per annealing run and the
        # set only changes when a tree fails (see tree_failed).
        if self._candidates is None:
            self._candidates = frozenset(
                r for r in range(self.n) if r not in self.excluded
            )
        return self._candidates

    def next_tree(self) -> Optional[TreeConfiguration]:
        """Best annealed tree among the remaining candidates.

        Returns None when fewer than ``b + 1`` candidates remain (the
        star-fallback point).
        """
        k = (self.n - self.f) + self.f  # q + f: no estimate u available
        if self.shards > 1:
            result = optitree_search_sharded(
                self.latency,
                self.n,
                self.f,
                self.candidates,
                u=0,
                root_seed=self.rng.getrandbits(63),
                shards=self.shards,
                jobs=self.jobs,
                schedule=self.schedule,
                k=k,
            )
        else:
            result = optitree_search(
                self.latency,
                self.n,
                self.f,
                self.candidates,
                u=0,
                rng=self.rng,
                schedule=self.schedule,
                k=k,
            )
        if result is None:
            return None
        self.trees_formed += 1
        return result.best_state

    def tree_failed(self, tree: TreeConfiguration) -> None:
        """Blacklist every internal node of the failed tree."""
        self.excluded.update(tree.internal_nodes)
        self._candidates = None
