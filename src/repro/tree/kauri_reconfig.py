"""Kauri's reconfiguration scheme: t-bounded conformity bins (§6.1.1).

Kauri divides the ``n`` replicas into ``t = n / i`` disjoint bins of size
``i`` (the number of internal nodes).  Tree ``j`` uses bin ``j`` as its
internal nodes; if ``f < t``, some bin contains no faulty replica, so one
of the ``t`` trees has all-correct internal nodes.  After ``t`` failed
trees, Kauri falls back to a star topology.  Trees (and the assignment of
the remaining replicas to leaf positions) are randomized, which is
exactly what OptiTree improves on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.tree.topology import TreeConfiguration, branch_factor_for


@dataclass
class StarFallback:
    """Marker returned once all bins are exhausted (revert to HotStuff)."""

    leader: int


class KauriReconfigurer:
    """Produces Kauri's sequence of randomized bin trees.

    Parameters
    ----------
    n:
        System size; the branch factor and bin size derive from it.
    rng:
        Source of the randomized permutation (the paper builds multiple
        randomized trees "to prevent targeted attacks").
    """

    def __init__(self, n: int, rng: Optional[random.Random] = None):
        self.n = n
        self.rng = rng or random.Random(0)
        self.branch_factor = branch_factor_for(n)
        self.internal_count = self.branch_factor + 1  # i = b + 1
        self.bin_count = n // self.internal_count      # t = n / i
        permutation = list(range(n))
        self.rng.shuffle(permutation)
        self._permutation = permutation
        self._bins: List[List[int]] = [
            permutation[j * self.internal_count : (j + 1) * self.internal_count]
            for j in range(self.bin_count)
        ]
        self.trials = 0

    @property
    def bins(self) -> List[List[int]]:
        """The disjoint internal-node bins (t-bounded conformity)."""
        return [list(b) for b in self._bins]

    def tree_for_bin(self, index: int) -> TreeConfiguration:
        """Tree ``index``: bin members internal, everyone else a leaf."""
        internal = self._bins[index]
        internal_set = set(internal)
        leaves = [r for r in self._permutation if r not in internal_set]
        self.rng.shuffle(leaves)
        layout = tuple(internal + leaves)
        return TreeConfiguration(layout=layout, branch_factor=self.branch_factor)

    def next_tree(self):
        """Next reconfiguration target: a bin tree, or the star fallback.

        Kauri supports only ``t ≈ √n`` reconfigurations; the ``t+1``-th
        call returns :class:`StarFallback` (Challenge 3 in §6.1.2).
        """
        if self.trials >= self.bin_count:
            return StarFallback(leader=self._permutation[0])
        tree = self.tree_for_bin(self.trials)
        self.trials += 1
        return tree

    def reset(self) -> None:
        self.trials = 0
