"""Tree scoring (Definition 1) and tree timeouts (Lemma 6).

``score(k, τ)`` is the minimum latency for the root to collect votes from
``k = q + u`` nodes: with aggregation latency
``Lagg(I) = max_{V ∈ Ch(I)} L[I][V]`` and subtree coverage
``|Ch(I)| + 1``, the score is

    score(k, τ) = min_{M ∈ M_{k-1}} max_{I ∈ M} (Lagg(I) + L[I][R])

where ``M_{k-1}`` are intermediate subsets whose subtrees cover at least
``k - 1`` votes (the root's own vote counts separately).  Because every
feasible set must cover ``k-1`` votes and each intermediate's contribution
is independent of the others, the optimum takes intermediates in ascending
``Lagg(I) + L[I][R]`` order until coverage is reached -- an O(b log b)
greedy rather than an exponential subset scan.

``tree_round_duration`` additionally counts dissemination
(``L[R][I] + 2·Lagg(I) + L[I][R]``), which is the ``d_rnd`` used for
timeouts (TR3 via Lemma 6);  Definition 1's score is the ranking metric
and the figures report it, like the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.suspicion import ExpectedMessage
from repro.tree.topology import TreeConfiguration

PHASE_PROPOSE = 1
PHASE_FORWARD = 2
PHASE_VOTE = 3
PHASE_AGGREGATE = 4


def aggregation_latency(
    latency: np.ndarray, tree: TreeConfiguration, intermediate: int
) -> float:
    """Lagg(I): the slowest child link of an intermediate node."""
    children = tree.children[intermediate]
    if not children:
        return 0.0
    return max(float(latency[intermediate, child]) for child in children)


def _collect_time(
    costs: List[Tuple[float, int]], votes_needed: int
) -> float:
    """Min-max cost to cover ``votes_needed`` votes from (cost, votes) subtrees."""
    if votes_needed <= 0:
        return 0.0
    covered = 0
    for cost, votes in sorted(costs):
        covered += votes
        if covered >= votes_needed:
            return cost
    return math.inf


def tree_score(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """Definition 1: minimum latency to collect votes from ``k`` nodes."""
    root = tree.root
    costs = [
        (
            aggregation_latency(latency, tree, intermediate)
            + float(latency[intermediate, root]),
            tree.subtree_size(intermediate),
        )
        for intermediate in tree.intermediates
    ]
    return _collect_time(costs, k - 1)  # the root's vote is added separately


def tree_round_duration(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """``d_rnd``: dissemination + aggregation along the critical subtrees."""
    root = tree.root
    costs = []
    for intermediate in tree.intermediates:
        lagg = aggregation_latency(latency, tree, intermediate)
        down = float(latency[root, intermediate])
        up = float(latency[intermediate, root])
        costs.append((down + 2.0 * lagg + up, tree.subtree_size(intermediate)))
    return _collect_time(costs, k - 1)


class TreeTimeouts:
    """Per-message ``d_m`` for a tree round (Lemma 6).

    Message pattern: Propose (root → intermediates), Forwarded Propose
    (intermediate → leaves), Vote (leaf → intermediate), Aggregated Vote
    (intermediate → root).  Per the optimization note in §6.3, suspicions
    on Forwarded Proposes are omitted (the vote timeout subsumes them).
    """

    def __init__(self, latency: np.ndarray, tree: TreeConfiguration, k: int):
        self.latency = latency
        self.tree = tree
        self.k = k

    def propose_arrival(self, intermediate: int) -> float:
        """TR1: Propose reaches an intermediate at L(R, I)."""
        return float(self.latency[self.tree.root, intermediate])

    def forward_arrival(self, leaf: int) -> float:
        """Forwarded Propose reaches a leaf via its parent (TR2)."""
        parent = self.tree.parent[leaf]
        return self.propose_arrival(parent) + float(self.latency[parent, leaf])

    def vote_arrival(self, leaf: int) -> float:
        """A leaf's Vote returns to its parent (TR2, one more link)."""
        parent = self.tree.parent[leaf]
        return self.forward_arrival(leaf) + float(self.latency[leaf, parent])

    def aggregate_arrival(self, intermediate: int) -> float:
        """An intermediate's Aggregated Vote reaches the root (TR2:
        slowest child vote plus the uplink)."""
        children = self.tree.children[intermediate]
        slowest_vote = max(
            (self.vote_arrival(child) for child in children), default=self.propose_arrival(intermediate)
        )
        return slowest_vote + float(self.latency[intermediate, self.tree.root])

    def round_duration(self) -> float:
        """TR3: d_rnd from the aggregate arrivals (equals
        :func:`tree_round_duration`)."""
        costs = [
            (self.aggregate_arrival(intermediate), self.tree.subtree_size(intermediate))
            for intermediate in self.tree.intermediates
        ]
        return _collect_time(costs, self.k - 1)

    # ------------------------------------------------------------------
    # SuspicionSensor feeds, per role
    # ------------------------------------------------------------------
    def expected_messages(self, replica: int) -> List[ExpectedMessage]:
        """Messages ``replica`` expects in one round, given its role."""
        tree = self.tree
        if replica == tree.root:
            return [
                ExpectedMessage(
                    sender=intermediate,
                    msg_type="aggregate",
                    phase=PHASE_AGGREGATE,
                    d_m=self.aggregate_arrival(intermediate),
                )
                for intermediate in tree.intermediates
            ]
        if replica in tree.internal_nodes:
            expected = [
                ExpectedMessage(
                    sender=tree.root,
                    msg_type="propose",
                    phase=PHASE_PROPOSE,
                    d_m=self.propose_arrival(replica),
                )
            ]
            expected.extend(
                ExpectedMessage(
                    sender=child,
                    msg_type="vote",
                    phase=PHASE_VOTE,
                    d_m=self.vote_arrival(child),
                )
                for child in tree.children[replica]
            )
            return expected
        # Leaf: per §6.3 leaves omit condition-(b) suspicion monitoring;
        # they only expect the forwarded proposal for latency measurement.
        return [
            ExpectedMessage(
                sender=tree.parent[replica],
                msg_type="forward",
                phase=PHASE_FORWARD,
                d_m=self.forward_arrival(replica),
            )
        ]


def default_k(n: int, f: int, u: int) -> int:
    """k = q + u with q = n - f (§6.3)."""
    return (n - f) + u
