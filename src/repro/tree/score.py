"""Tree scoring (Definition 1) and tree timeouts (Lemma 6).

``score(k, τ)`` is the minimum latency for the root to collect votes from
``k = q + u`` nodes: with aggregation latency
``Lagg(I) = max_{V ∈ Ch(I)} L[I][V]`` and subtree coverage
``|Ch(I)| + 1``, the score is

    score(k, τ) = min_{M ∈ M_{k-1}} max_{I ∈ M} (Lagg(I) + L[I][R])

where ``M_{k-1}`` are intermediate subsets whose subtrees cover at least
``k - 1`` votes (the root's own vote counts separately).  Because every
feasible set must cover ``k-1`` votes and each intermediate's contribution
is independent of the others, the optimum takes intermediates in ascending
``Lagg(I) + L[I][R]`` order until coverage is reached -- an O(b log b)
greedy rather than an exponential subset scan.

``tree_round_duration`` additionally counts dissemination
(``L[R][I] + 2·Lagg(I) + L[I][R]``), which is the ``d_rnd`` used for
timeouts (TR3 via Lemma 6);  Definition 1's score is the ranking metric
and the figures report it, like the paper.

The hot-path implementations run over the configuration's precomputed
:attr:`~repro.tree.topology.TreeConfiguration.score_arrays` (numpy child
index views); the scalar ``*_scalar`` twins are the checked reference --
bit-identical by construction (same IEEE ops in the same order), pinned
by ``tests/tree/test_score_equivalence.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.suspicion import ExpectedMessage
from repro.tree.topology import TreeConfiguration

PHASE_PROPOSE = 1
PHASE_FORWARD = 2
PHASE_VOTE = 3
PHASE_AGGREGATE = 4

#: Branch factor at which the vectorized scorer overtakes the scalar
#: loops (fixed numpy call overhead vs O(b²) Python link walks); both
#: produce bit-identical scores, so the dispatch is purely a speed
#: choice.  b >= 10 corresponds to n >= 111.
_VECTORIZE_MIN_BRANCH = 10


def aggregation_latency(
    latency: np.ndarray, tree: TreeConfiguration, intermediate: int
) -> float:
    """Lagg(I): the slowest child link of an intermediate node."""
    children = tree.children[intermediate]
    if not children:
        return 0.0
    return max(float(latency[intermediate, child]) for child in children)


def _collect_time(
    costs: List[Tuple[float, int]], votes_needed: int
) -> float:
    """Min-max cost to cover ``votes_needed`` votes from (cost, votes) subtrees."""
    if votes_needed <= 0:
        return 0.0
    covered = 0
    for cost, votes in sorted(costs):
        covered += votes
        if covered >= votes_needed:
            return cost
    return math.inf


def _collect_time_array(
    costs: np.ndarray, votes: np.ndarray, votes_needed: int
) -> float:
    """Vectorized :func:`_collect_time` over parallel cost/vote arrays."""
    if votes_needed <= 0:
        return 0.0
    order = np.lexsort((votes, costs))
    covered = np.cumsum(votes[order])
    index = int(np.searchsorted(covered, votes_needed))
    if index >= covered.shape[0]:
        return math.inf
    return float(costs[order[index]])


def _subtree_costs(
    latency: np.ndarray, tree: TreeConfiguration
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-intermediate ``(ids, Lagg, uplink cost, votes)`` arrays."""
    intermediates, child, mask, votes = tree.score_arrays
    if mask.shape[1]:
        links = np.where(mask, latency[intermediates[:, None], child], -np.inf)
        lagg = links.max(axis=1)
        lagg = np.where(mask.any(axis=1), lagg, 0.0)
    else:
        lagg = np.zeros(intermediates.shape[0])
    return intermediates, lagg, latency[intermediates, tree.root], votes


def tree_score(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """Definition 1: minimum latency to collect votes from ``k`` nodes."""
    if tree.branch_factor < _VECTORIZE_MIN_BRANCH:
        return tree_score_scalar(latency, tree, k)
    intermediates, lagg, uplink, votes = _subtree_costs(latency, tree)
    return _collect_time_array(lagg + uplink, votes, k - 1)


def tree_score_scalar(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """Reference implementation of :func:`tree_score` (Python loops)."""
    root = tree.root
    costs = [
        (
            aggregation_latency(latency, tree, intermediate)
            + float(latency[intermediate, root]),
            tree.subtree_size(intermediate),
        )
        for intermediate in tree.intermediates
    ]
    return _collect_time(costs, k - 1)  # the root's vote is added separately


def tree_round_duration(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """``d_rnd``: dissemination + aggregation along the critical subtrees."""
    if tree.branch_factor < _VECTORIZE_MIN_BRANCH:
        return tree_round_duration_scalar(latency, tree, k)
    intermediates, lagg, uplink, votes = _subtree_costs(latency, tree)
    costs = latency[tree.root, intermediates] + 2.0 * lagg + uplink
    return _collect_time_array(costs, votes, k - 1)


def tree_round_duration_scalar(
    latency: np.ndarray, tree: TreeConfiguration, k: int
) -> float:
    """Reference implementation of :func:`tree_round_duration`."""
    root = tree.root
    costs = []
    for intermediate in tree.intermediates:
        lagg = aggregation_latency(latency, tree, intermediate)
        down = float(latency[root, intermediate])
        up = float(latency[intermediate, root])
        costs.append((down + 2.0 * lagg + up, tree.subtree_size(intermediate)))
    return _collect_time(costs, k - 1)


class TreeTimeouts:
    """Per-message ``d_m`` for a tree round (Lemma 6).

    Message pattern: Propose (root → intermediates), Forwarded Propose
    (intermediate → leaves), Vote (leaf → intermediate), Aggregated Vote
    (intermediate → root).  Per the optimization note in §6.3, suspicions
    on Forwarded Proposes are omitted (the vote timeout subsumes them).

    The TR1/TR2 arrival chains are materialised lazily as per-replica
    numpy arrays the first time any chain value is read, so scoring a
    round or feeding the SuspicionSensor costs one vectorized pass
    instead of per-node Python recursion.
    """

    def __init__(self, latency: np.ndarray, tree: TreeConfiguration, k: int):
        self.latency = latency
        self.tree = tree
        self.k = k
        self._chains: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, float]]] = None

    def _materialise(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Dict[int, float]]:
        """(propose, forward, vote, aggregate) arrival chains, memoized.

        ``propose``/``forward``/``vote`` are arrays indexed by replica id
        (forward/vote only meaningful at leaf ids); ``aggregate`` maps
        intermediate id -> arrival.  Each chain applies TR2 in the same
        order as the scalar definitions, so values are bit-identical.
        """
        if self._chains is not None:
            return self._chains
        latency = self.latency
        tree = self.tree
        root = tree.root
        propose = np.array(latency[root], dtype=float, copy=True)
        forward = np.zeros_like(propose)
        vote = np.zeros_like(propose)
        leaves = np.fromiter(tree.leaves, dtype=np.intp, count=len(tree.leaves))
        if leaves.size:
            parents = np.fromiter(
                (tree.parent[int(leaf)] for leaf in leaves),
                dtype=np.intp,
                count=leaves.size,
            )
            forward[leaves] = propose[parents] + latency[parents, leaves]
            vote[leaves] = forward[leaves] + latency[leaves, parents]
        aggregate: Dict[int, float] = {}
        for intermediate in tree.intermediates:
            children = tree.children[intermediate]
            if children:
                slowest = float(vote[np.fromiter(children, dtype=np.intp)].max())
            else:
                slowest = float(propose[intermediate])
            aggregate[intermediate] = slowest + float(latency[intermediate, root])
        self._chains = (propose, forward, vote, aggregate)
        return self._chains

    def propose_arrival(self, intermediate: int) -> float:
        """TR1: Propose reaches an intermediate at L(R, I)."""
        return float(self.latency[self.tree.root, intermediate])

    def forward_arrival(self, leaf: int) -> float:
        """Forwarded Propose reaches a leaf via its parent (TR2)."""
        return float(self._materialise()[1][leaf])

    def vote_arrival(self, leaf: int) -> float:
        """A leaf's Vote returns to its parent (TR2, one more link)."""
        return float(self._materialise()[2][leaf])

    def aggregate_arrival(self, intermediate: int) -> float:
        """An intermediate's Aggregated Vote reaches the root (TR2:
        slowest child vote plus the uplink)."""
        return self._materialise()[3][intermediate]

    def round_duration(self) -> float:
        """TR3: d_rnd from the aggregate arrivals (equals
        :func:`tree_round_duration`)."""
        aggregate = self._materialise()[3]
        costs = [
            (aggregate[intermediate], self.tree.subtree_size(intermediate))
            for intermediate in self.tree.intermediates
        ]
        return _collect_time(costs, self.k - 1)

    # ------------------------------------------------------------------
    # SuspicionSensor feeds, per role
    # ------------------------------------------------------------------
    def expected_messages(self, replica: int) -> List[ExpectedMessage]:
        """Messages ``replica`` expects in one round, given its role."""
        tree = self.tree
        if replica == tree.root:
            aggregate = self._materialise()[3]
            return [
                ExpectedMessage(
                    sender=intermediate,
                    msg_type="aggregate",
                    phase=PHASE_AGGREGATE,
                    d_m=aggregate[intermediate],
                )
                for intermediate in tree.intermediates
            ]
        if replica in tree.internal_nodes:
            vote = self._materialise()[2]
            expected = [
                ExpectedMessage(
                    sender=tree.root,
                    msg_type="propose",
                    phase=PHASE_PROPOSE,
                    d_m=self.propose_arrival(replica),
                )
            ]
            expected.extend(
                ExpectedMessage(
                    sender=child,
                    msg_type="vote",
                    phase=PHASE_VOTE,
                    d_m=float(vote[child]),
                )
                for child in tree.children[replica]
            )
            return expected
        # Leaf: per §6.3 leaves omit condition-(b) suspicion monitoring;
        # they only expect the forwarded proposal for latency measurement.
        return [
            ExpectedMessage(
                sender=tree.parent[replica],
                msg_type="forward",
                phase=PHASE_FORWARD,
                d_m=self.forward_arrival(replica),
            )
        ]


def default_k(n: int, f: int, u: int) -> int:
    """k = q + u with q = n - f (§6.3)."""
    return (n - f) + u
