"""Tree candidate selection: the E_d / T rule (§6.4).

A tree only needs ``b + 1 ≈ √n`` internal nodes, so OptiTree swaps the
maximum-independent-set candidate rule for one that excludes *fewer*
replicas per suspicion yet guarantees faulty replicas are expelled within
``2f`` reconfigurations (Theorem D.2):

* ``E_d``: a maximal set of vertex-disjoint edges of the suspicion graph
  ``G``, maintained with the paper's augmenting step (an incoming edge may
  replace one matched edge by two).  Every edge has at least one faulty
  endpoint, so both endpoints are excluded.
* ``T``: vertices not covered by ``E_d`` that form a triangle with an
  ``E_d`` edge -- also excluded.
* ``K = V \\ V(E_d) \\ T`` and ``u = |E_d| + |T|``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.log import AppendOnlyLog
from repro.core.misbehavior import MisbehaviorMonitor
from repro.core.suspicion import SuspicionMonitor
from repro.optimize.graphs import Edge, Graph, ordered_edge


def build_disjoint_edge_set(
    graph: Graph, edge_order: Iterable[Edge]
) -> List[Edge]:
    """Maximal disjoint edge set, processing edges in arrival order.

    Implements the §6.4 maintenance rule: when a new edge cannot join
    ``E_d`` directly (an endpoint is already matched), try the augmenting
    exchange -- remove one matched edge and add two new disjoint ones.
    Edges in ``edge_order`` not present in ``graph`` are skipped, which
    lets callers replay a suspicion history against a pruned graph.
    """
    matched: dict[int, Edge] = {}  # vertex -> its E_d edge
    e_d: List[Edge] = []

    def try_add(a: int, b: int) -> bool:
        if a in matched or b in matched:
            return False
        edge = ordered_edge(a, b)
        e_d.append(edge)
        matched[a] = edge
        matched[b] = edge
        return True

    def remove(edge: Edge) -> None:
        e_d.remove(edge)
        for vertex in edge:
            matched.pop(vertex, None)

    def augment(a: int, b: int) -> None:
        """a is matched, b is free: replace (a, c) by (a, b) + (c, d) if
        some graph edge (c, d) with d free and d != b exists."""
        old = matched[a]
        c = old[0] if old[1] == a else old[1]
        for d in graph.neighbors(c):
            if d != b and d != a and d not in matched:
                remove(old)
                try_add(a, b)
                try_add(c, d)
                return

    for raw in edge_order:
        a, b = ordered_edge(*raw)
        if not graph.has_edge(a, b):
            continue
        if ordered_edge(a, b) in e_d:
            continue
        if try_add(a, b):
            continue
        a_matched = a in matched
        b_matched = b in matched
        if a_matched and not b_matched:
            augment(a, b)
        elif b_matched and not a_matched:
            augment(b, a)
        # both matched: the edge stays only in G (it may create triangles).
    return e_d


def triangle_set(graph: Graph, e_d: List[Edge]) -> FrozenSet[int]:
    """T: uncovered vertices forming a triangle with an ``E_d`` edge."""
    covered: Set[int] = set()
    for a, b in e_d:
        covered.add(a)
        covered.add(b)
    members: Set[int] = set()
    for a, b in e_d:
        common = set(graph.neighbors(a)) & set(graph.neighbors(b))
        members.update(v for v in common if v not in covered)
    return frozenset(members)


def tree_candidates(
    graph: Graph, edge_order: Iterable[Edge]
) -> Tuple[FrozenSet[int], int, List[Edge], FrozenSet[int]]:
    """(K, u, E_d, T) for a suspicion graph per §6.4."""
    e_d = build_disjoint_edge_set(graph, edge_order)
    t_set = triangle_set(graph, e_d)
    covered = {v for edge in e_d for v in edge}
    candidates = frozenset(
        v for v in graph.vertices() if v not in covered and v not in t_set
    )
    u = len(e_d) + len(t_set)
    return candidates, u, e_d, t_set


class TreeSuspicionMonitor(SuspicionMonitor):
    """SuspicionMonitor variant computing candidates via E_d and T.

    Also exposes ``E_d`` and ``T`` for the reconfiguration-bound analysis
    (Appendix D).  The minimum candidate threshold is the number of
    internal nodes a tree needs (``b + 1``); Theorem D.1 shows suspicions
    alone can never push K below f + 1, so for n ≥ 13 eviction only
    triggers on pre-GST noise.
    """

    name = "tree-suspicion-monitor"

    def __init__(
        self,
        replica_id: int,
        log: AppendOnlyLog,
        n: int,
        f: int,
        misbehavior: Optional[MisbehaviorMonitor] = None,
        stability_window: int = 10,
        exact_mis_threshold: int = 25,
        internal_nodes_needed: Optional[int] = None,
        check_rebuild: bool = False,
    ):
        if internal_nodes_needed is None:
            from repro.tree.topology import branch_factor_for

            internal_nodes_needed = branch_factor_for(n) + 1
        self.internal_nodes_needed = internal_nodes_needed
        self.e_d: List[Edge] = []
        self.t_set: FrozenSet[int] = frozenset()
        self._pending_edge_order: Optional[List[Edge]] = None
        super().__init__(
            replica_id,
            log,
            n=n,
            f=f,
            misbehavior=misbehavior,
            stability_window=stability_window,
            exact_mis_threshold=exact_mis_threshold,
            check_rebuild=check_rebuild,
        )

    def _min_candidates(self) -> int:
        return self.internal_nodes_needed

    def _edge_order(self) -> List[Edge]:
        return [
            ordered_edge(item.reporter, item.suspect)
            for item in self._effective_items()
            if not item.one_way
        ]

    def _structure_key(self, vertices, edges) -> tuple:
        # E_d depends on the *arrival order* of effective edges, not just
        # the graph, so the derive-skip fingerprint must include it.  The
        # order is stashed for the _derive call that may follow in the
        # same refresh iteration (items cannot change in between), so a
        # cache miss does not walk the item deque twice.
        order = self._edge_order()
        self._pending_edge_order = order
        base = super()._structure_key(vertices, edges)
        return base + (tuple(order),)

    def _derive(self, graph: Graph) -> Tuple[FrozenSet[int], int]:
        # Consume-and-clear: callers outside the refresh loop (the
        # checked mode's _reference_state) find no stash and recompute.
        order = self._pending_edge_order
        self._pending_edge_order = None
        if order is None:
            order = self._edge_order()
        candidates, u, e_d, t_set = tree_candidates(graph, order)
        self.e_d = e_d
        self.t_set = t_set
        return candidates, u
