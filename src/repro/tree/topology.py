"""Tree configurations (§6.1, §7.3).

All evaluation trees have height 3: a root, ``b`` intermediate nodes, and
``b²`` leaves, with the branch factor ``b = (√(4n-3) - 1) / 2`` so that
``n = 1 + b + b²`` exactly (all configuration sizes used in the paper --
13, 21, 43, 57, 73, 91, 111, 157, 183, 211 -- are such perfect sizes).
Sizes in between are supported by distributing the remaining replicas as
evenly as possible among the intermediates (Stellar's n = 56 needs this).

A :class:`TreeConfiguration` is a *layout*: a permutation of replica ids
over tree positions.  Position 0 is the root, positions 1..b the
intermediates, and the rest leaves, assigned to intermediates in blocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Dict, FrozenSet, Iterable, List, Tuple

import numpy as np

from repro.core.records import RECORD_HEADER_SIZE, Configuration


def branch_factor_for(n: int) -> int:
    """The paper's branch-factor rule ``b = (√(4n-3) - 1) / 2``, rounded
    down so that a height-3 tree with ``b`` intermediates fits ``n``."""
    if n < 4:
        raise ValueError(f"need at least 4 replicas for a tree, got {n}")
    return int((math.isqrt(4 * n - 3) - 1) // 2)


def is_perfect_tree_size(n: int) -> bool:
    """True iff ``n = 1 + b + b²`` for some integer ``b``."""
    b = branch_factor_for(n)
    return 1 + b + b * b == n


def perfect_tree_sizes(limit: int) -> List[int]:
    """All perfect height-3 sizes up to ``limit`` (13, 21, 31, 43, ...)."""
    sizes = []
    b = 3
    while True:
        n = 1 + b + b * b
        if n > limit:
            return sizes
        sizes.append(n)
        b += 1


@lru_cache(maxsize=None)
def tree_position_structure(
    n: int, branch_factor: int
) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[int, ...], Tuple[int, ...]]:
    """Layout-independent position structure of an (n, b) tree.

    Position 0 is the root, 1..b the intermediates, the rest leaves
    attached in blocks (the same split rule as
    :attr:`TreeConfiguration.children`).  Returns

    * ``spans``      -- per intermediate index, the ``[start, end)`` range
      of its leaf *positions*;
    * ``votes``      -- per intermediate index, ``|Ch(I)| + 1``;
    * ``subtree_of`` -- per position, the owning intermediate index
      (``-1`` for the root).

    Shared by every layout of the same shape, so the incremental search
    engine and the vectorized scorer look it up once per (n, b).
    """
    b = branch_factor
    leaf_count = n - 1 - b
    base, extra = divmod(leaf_count, b) if b else (0, 0)
    spans: List[Tuple[int, int]] = []
    start = 1 + b
    for index in range(b):
        size = base + (1 if index < extra else 0)
        spans.append((start, start + size))
        start += size
    votes = tuple(end - begin + 1 for begin, end in spans)
    subtree_of = [-1] * n
    for index in range(b):
        subtree_of[1 + index] = index
    for index, (begin, end) in enumerate(spans):
        for position in range(begin, end):
            subtree_of[position] = index
    return tuple(spans), votes, tuple(subtree_of)


@dataclass(frozen=True)
class TreeConfiguration(Configuration):
    """A height-3 tree over ``n`` replicas, as a position layout.

    ``layout[0]`` is the root, ``layout[1..b]`` the intermediates, and the
    remaining entries leaves.  Leaves are attached to intermediates in
    contiguous blocks, as balanced as the sizes allow.
    """

    layout: Tuple[int, ...]
    branch_factor: int

    @classmethod
    def from_layout(cls, layout: Iterable[int], branch_factor: int = 0) -> "TreeConfiguration":
        layout = tuple(layout)
        if branch_factor <= 0:
            branch_factor = branch_factor_for(len(layout))
        return cls(layout=layout, branch_factor=branch_factor)

    def __post_init__(self):
        n = len(self.layout)
        if self.branch_factor < 1:
            raise ValueError("branch factor must be positive")
        if 1 + self.branch_factor > n:
            raise ValueError(
                f"tree of branch factor {self.branch_factor} needs more than "
                f"{n} replicas"
            )
        if sorted(self.layout) != list(range(n)):
            raise ValueError("layout must be a permutation of replica ids")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.layout)

    @property
    def root(self) -> int:
        return self.layout[0]

    @property
    def intermediates(self) -> Tuple[int, ...]:
        """M: the intermediate nodes (internal nodes except the root)."""
        return self.layout[1 : 1 + self.branch_factor]

    @property
    def internal_nodes(self) -> FrozenSet[int]:
        """I = {root} ∪ intermediates."""
        return frozenset(self.layout[: 1 + self.branch_factor])

    @property
    def leaves(self) -> Tuple[int, ...]:
        return self.layout[1 + self.branch_factor :]

    @cached_property
    def children(self) -> Dict[int, Tuple[int, ...]]:
        """Children of each internal node (root's children are the
        intermediates; leaves are split among intermediates in blocks)."""
        mapping: Dict[int, Tuple[int, ...]] = {self.root: self.intermediates}
        leaves = self.leaves
        b = self.branch_factor
        count = len(self.intermediates)
        if count == 0:
            return mapping
        base = len(leaves) // count
        extra = len(leaves) % count
        start = 0
        for index, node in enumerate(self.intermediates):
            size = base + (1 if index < extra else 0)
            mapping[node] = tuple(leaves[start : start + size])
            start += size
        return mapping

    @cached_property
    def parent(self) -> Dict[int, int]:
        mapping: Dict[int, int] = {}
        for node, kids in self.children.items():
            for kid in kids:
                mapping[kid] = node
        return mapping

    def subtree_size(self, intermediate: int) -> int:
        """|Ch(I)| + 1: votes the subtree of ``intermediate`` contributes."""
        return len(self.children[intermediate]) + 1

    @cached_property
    def score_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed views for vectorized scoring:
        ``(intermediate ids, child-id matrix, child mask, subtree votes)``.

        The child matrix is padded to the widest subtree; ``mask`` marks
        real entries.  Cached per (immutable) configuration so repeated
        ``tree_score``/``TreeTimeouts`` calls skip the Python loops.
        """
        spans, votes, _ = tree_position_structure(self.n, self.branch_factor)
        b = self.branch_factor
        lay = np.fromiter(self.layout, dtype=np.intp, count=self.n)
        intermediates = lay[1 : 1 + b].copy()
        widest = max((end - begin for begin, end in spans), default=0)
        child = np.zeros((b, widest), dtype=np.intp)
        mask = np.zeros((b, widest), dtype=bool)
        for index, (begin, end) in enumerate(spans):
            size = end - begin
            child[index, :size] = lay[begin:end]
            mask[index, :size] = True
        return intermediates, child, mask, np.asarray(votes, dtype=np.int64)

    # ------------------------------------------------------------------
    # Configuration interface
    # ------------------------------------------------------------------
    def special_replicas(self) -> FrozenSet[int]:
        """Only internal nodes are special (§6.2)."""
        return self.internal_nodes

    def participants(self) -> FrozenSet[int]:
        return frozenset(self.layout)

    @property
    def wire_size(self) -> int:
        return RECORD_HEADER_SIZE + 2 * len(self.layout)

    def swap(self, position_a: int, position_b: int) -> "TreeConfiguration":
        """New configuration with the replicas at two positions swapped."""
        layout = list(self.layout)
        layout[position_a], layout[position_b] = layout[position_b], layout[position_a]
        return TreeConfiguration(layout=tuple(layout), branch_factor=self.branch_factor)
