"""Tree-based role assignment: Kauri substrate and OptiTree (§6).

* :mod:`repro.tree.topology` -- height-3 b-ary tree configurations and the
  paper's branch-factor rule ``b = (√(4n-3) - 1) / 2``;
* :mod:`repro.tree.score` -- Definition 1's ``score(k, τ)`` plus the
  tree timeout derivation of Lemma 6;
* :mod:`repro.tree.kauri_reconfig` -- Kauri's t-bounded-conformity bins
  and star fallback;
* :mod:`repro.tree.candidates` -- the tree SuspicionMonitor variant with
  the disjoint-edge set ``E_d`` and triangle set ``T`` (§6.4);
* :mod:`repro.tree.optitree` -- OptiTree's annealed tree search;
* :mod:`repro.tree.kauri_sa` -- the Kauri-sa comparison variant (§7.5).
"""

from repro.tree.candidates import TreeSuspicionMonitor, build_disjoint_edge_set
from repro.tree.kauri_reconfig import KauriReconfigurer
from repro.tree.kauri_sa import KauriSaReconfigurer
from repro.tree.optitree import IncrementalTreeSearch, OptiTree, optitree_search
from repro.tree.score import TreeTimeouts, tree_round_duration, tree_score
from repro.tree.topology import TreeConfiguration, branch_factor_for, perfect_tree_sizes

__all__ = [
    "IncrementalTreeSearch",
    "KauriReconfigurer",
    "KauriSaReconfigurer",
    "OptiTree",
    "TreeConfiguration",
    "TreeSuspicionMonitor",
    "TreeTimeouts",
    "branch_factor_for",
    "build_disjoint_edge_set",
    "optitree_search",
    "perfect_tree_sizes",
    "tree_round_duration",
    "tree_score",
]
