"""OptiTree: annealed search for correct, low-latency trees (§6.2-§6.4).

OptiTree assigns internal-node roles only to replicas from the candidate
set ``K`` (maintained by the :class:`TreeSuspicionMonitor`) and ranks
trees with Definition 1's ``score(k, τ)`` where ``k = q + u``; the
estimate ``u`` lets the score budget for the *actual* number of
misbehaving replicas instead of the worst-case ``f`` (§6.1.2, Challenge 2).

The search is simulated annealing over layouts: the ``mutate`` swaps two
positions and keeps internal positions inside ``K`` (§4.2.4).
"""

from __future__ import annotations

import math
import random
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import Configuration
from repro.crypto.signatures import KeyRegistry
from repro.optimize.annealing import AnnealingResult, AnnealingSchedule, anneal
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.score import TreeTimeouts, default_k, tree_score
from repro.tree.topology import TreeConfiguration, branch_factor_for


def random_tree(
    n: int,
    candidates: FrozenSet[int],
    rng: random.Random,
    branch_factor: int = 0,
) -> Optional[TreeConfiguration]:
    """A uniformly random layout whose internal nodes come from ``K``."""
    b = branch_factor or branch_factor_for(n)
    internal_count = b + 1
    pool = sorted(candidates)
    if len(pool) < internal_count:
        return None
    internal = rng.sample(pool, internal_count)
    internal_set = set(internal)
    others = [replica for replica in range(n) if replica not in internal_set]
    rng.shuffle(others)
    return TreeConfiguration(layout=tuple(internal + others), branch_factor=b)


def mutate_tree(
    tree: TreeConfiguration,
    candidates: FrozenSet[int],
    rng: random.Random,
) -> TreeConfiguration:
    """Swap two positions; internal positions only receive candidates."""
    n = tree.n
    internal_count = tree.branch_factor + 1
    position_a = rng.randrange(n)
    position_b = rng.randrange(n)
    if position_b == position_a:
        position_b = (position_a + 1) % n
    low, high = min(position_a, position_b), max(position_a, position_b)
    # If the swap moves a replica INTO an internal position, that replica
    # must be a candidate; otherwise resample the source from candidates
    # occupying non-internal positions.
    if low < internal_count <= high and tree.layout[high] not in candidates:
        candidate_positions = [
            position
            for position in range(internal_count, n)
            if tree.layout[position] in candidates
        ]
        if not candidate_positions:
            return tree
        high = rng.choice(candidate_positions)
    return tree.swap(low, high)


def optitree_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: FrozenSet[int],
    u: int,
    rng: Optional[random.Random] = None,
    schedule: Optional[AnnealingSchedule] = None,
    k: Optional[int] = None,
    initial: Optional[TreeConfiguration] = None,
) -> Optional[AnnealingResult]:
    """Annealed tree search; returns None when K is too small for a tree.

    ``k`` defaults to ``q + u = (n - f) + u`` (Definition 1); experiments
    exploring the robustness/latency trade-off (Fig. 14) override it.
    """
    rng = rng or random.Random(0)
    votes_needed = k if k is not None else default_k(n, f, u)

    if initial is None:
        initial = random_tree(n, candidates, rng)
        if initial is None:
            return None

    def score(tree: TreeConfiguration) -> float:
        if not tree.internal_nodes <= candidates:
            return math.inf
        return tree_score(latency, tree, votes_needed)

    def mutate(tree: TreeConfiguration, mutation_rng: random.Random) -> TreeConfiguration:
        return mutate_tree(tree, candidates, mutation_rng)

    schedule = schedule or AnnealingSchedule(
        iterations=20_000, initial_temperature=0.05, cooling=0.9995
    )
    return anneal(initial, score, mutate, rng, schedule)


class OptiTree:
    """One replica's OptiTree stack: tree scoring + OptiLog pipeline.

    Wires the tree variant of the SuspicionMonitor into the pipeline and
    attaches the annealed search as the ConfigSensor's strategy.  Used by
    the Kauri engine in :mod:`repro.consensus.kauri` and standalone by the
    analytical experiments.
    """

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        registry: Optional[KeyRegistry] = None,
        settings: Optional[PipelineSettings] = None,
        propose: Optional[Callable] = None,
        on_reconfigure: Optional[Callable] = None,
        search_schedule: Optional[AnnealingSchedule] = None,
    ):
        self.n = n
        self.f = f
        self.branch_factor = branch_factor_for(n)
        self.search_schedule = search_schedule
        settings = settings or PipelineSettings(n=n, f=f)
        self.pipeline = OptiLogPipeline(
            replica_id,
            settings,
            registry=registry,
            propose=propose,
            suspicion_monitor_factory=TreeSuspicionMonitor,
        )
        self.pipeline.attach_config(
            search=self._search,
            score=self._score,
            validator=self._validate,
            on_reconfigure=on_reconfigure,
        )

    # ------------------------------------------------------------------
    # OptiLog hooks (§6.3: score + timeout derivation)
    # ------------------------------------------------------------------
    def _score(self, configuration: Configuration) -> float:
        if not isinstance(configuration, TreeConfiguration):
            return math.inf
        k = default_k(self.n, self.f, self.pipeline.suspicion_monitor.u)
        return tree_score(self.pipeline.latency_matrix, configuration, k)

    def _search(
        self, candidates: FrozenSet[int], u: int, rng: random.Random
    ) -> Optional[TreeConfiguration]:
        result = optitree_search(
            self.pipeline.latency_matrix,
            self.n,
            self.f,
            candidates,
            u,
            rng=rng,
            schedule=self.search_schedule,
        )
        return result.best_state if result is not None else None

    def _validate(self, configuration: Configuration) -> bool:
        if not isinstance(configuration, TreeConfiguration):
            return False
        return (
            configuration.n == self.n
            and configuration.branch_factor == self.branch_factor
        )

    def timeouts_for(self, tree: TreeConfiguration) -> TreeTimeouts:
        """``d_m``/``d_rnd`` provider for the active tree (Lemma 6)."""
        k = default_k(self.n, self.f, self.pipeline.suspicion_monitor.u)
        return TreeTimeouts(self.pipeline.latency_matrix, tree, k)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def candidates(self) -> FrozenSet[int]:
        return self.pipeline.candidates

    @property
    def u(self) -> int:
        return self.pipeline.u

    @property
    def current_tree(self) -> Optional[TreeConfiguration]:
        monitor = self.pipeline.config_monitor
        current = monitor.current if monitor is not None else None
        return current if isinstance(current, TreeConfiguration) else None
