"""OptiTree: annealed search for correct, low-latency trees (§6.2-§6.4).

OptiTree assigns internal-node roles only to replicas from the candidate
set ``K`` (maintained by the :class:`TreeSuspicionMonitor`) and ranks
trees with Definition 1's ``score(k, τ)`` where ``k = q + u``; the
estimate ``u`` lets the score budget for the *actual* number of
misbehaving replicas instead of the worst-case ``f`` (§6.1.2, Challenge 2).

The search is simulated annealing over layouts: the ``mutate`` swaps two
positions and keeps internal positions inside ``K`` (§4.2.4).
"""

from __future__ import annotations

import math
import random
from typing import Callable, FrozenSet, Optional

import numpy as np

from repro.core.pipeline import OptiLogPipeline, PipelineSettings
from repro.core.records import Configuration
from repro.crypto.signatures import KeyRegistry
from repro.optimize.annealing import (
    AnnealingResult,
    AnnealingSchedule,
    IncrementalSearch,
    anneal,
    anneal_incremental,
)
from repro.experiments.parallel import derive_sweep_seed, parallel_map
from repro.tree.candidates import TreeSuspicionMonitor
from repro.tree.score import TreeTimeouts, _collect_time, default_k, tree_score
from repro.tree.topology import (
    TreeConfiguration,
    branch_factor_for,
    tree_position_structure,
)


def random_tree(
    n: int,
    candidates: FrozenSet[int],
    rng: random.Random,
    branch_factor: int = 0,
) -> Optional[TreeConfiguration]:
    """A uniformly random layout whose internal nodes come from ``K``."""
    b = branch_factor or branch_factor_for(n)
    internal_count = b + 1
    pool = sorted(candidates)
    if len(pool) < internal_count:
        return None
    internal = rng.sample(pool, internal_count)
    internal_set = set(internal)
    others = [replica for replica in range(n) if replica not in internal_set]
    rng.shuffle(others)
    return TreeConfiguration(layout=tuple(internal + others), branch_factor=b)


def mutate_tree(
    tree: TreeConfiguration,
    candidates: FrozenSet[int],
    rng: random.Random,
) -> TreeConfiguration:
    """Swap two positions; internal positions only receive candidates."""
    n = tree.n
    internal_count = tree.branch_factor + 1
    position_a = rng.randrange(n)
    position_b = rng.randrange(n)
    if position_b == position_a:
        position_b = (position_a + 1) % n
    low, high = min(position_a, position_b), max(position_a, position_b)
    # If the swap moves a replica INTO an internal position, that replica
    # must be a candidate; otherwise resample the source from candidates
    # occupying non-internal positions.
    if low < internal_count <= high and tree.layout[high] not in candidates:
        candidate_positions = [
            position
            for position in range(internal_count, n)
            if tree.layout[position] in candidates
        ]
        if not candidate_positions:
            return tree
        high = rng.choice(candidate_positions)
    return tree.swap(low, high)


class _TreeSwap:
    """One proposed position swap, with its tentatively computed entries."""

    __slots__ = ("low", "high", "changed", "new_costs", "new_bad", "score")

    def __init__(self, low: int, high: int):
        self.low = low
        self.high = high


class IncrementalTreeSearch(IncrementalSearch[TreeConfiguration]):
    """Delta-evaluated tree search state (the §4.2.4 hot path).

    Holds the layout as a mutable list plus per-intermediate cached
    ``(Lagg(I), Lagg(I) + L[I][R])`` entries.  A swap mutation touches at
    most two subtrees (plus, for a root swap, every uplink term), so
    re-scoring costs O(b) instead of the full path's O(n) rebuild -- with
    scores bit-identical to :func:`repro.tree.score.tree_score` because
    the same IEEE operations run in the same order on the same floats.

    Feasibility (internal nodes ⊆ K) is tracked as a count of
    non-candidate internal occupants, updated in O(1) per swap.
    """

    def __init__(
        self,
        latency: np.ndarray,
        initial: TreeConfiguration,
        candidates: FrozenSet[int],
        k: int,
    ):
        self.n = initial.n
        self.b = initial.branch_factor
        self.internal_count = self.b + 1
        self.rows = latency.tolist()  # Python floats: same IEEE doubles, faster ops
        self.layout = list(initial.layout)
        self.candidates = candidates
        self.needed = k - 1
        spans, votes, subtree_of = tree_position_structure(self.n, self.b)
        self.spans = spans
        self.votes = votes
        self.subtree_of = subtree_of
        self._bad = sum(
            1
            for replica in self.layout[: self.internal_count]
            if replica not in candidates
        )
        root_row_of = self.rows
        root = self.layout[0]
        self.lagg = [self._compute_lagg(index) for index in range(self.b)]
        self.costs = [
            self.lagg[index] + root_row_of[self.layout[1 + index]][root]
            for index in range(self.b)
        ]

    # -- cost plumbing --------------------------------------------------
    def _compute_lagg(self, index: int) -> float:
        """Lagg of intermediate ``index`` from the current layout."""
        begin, end = self.spans[index]
        if begin == end:
            return 0.0
        layout = self.layout
        row = self.rows[layout[1 + index]]
        slowest = row[layout[begin]]
        for position in range(begin + 1, end):
            link = row[layout[position]]
            if link > slowest:
                slowest = link
        return slowest

    def _score_from(self, costs: list) -> float:
        # One implementation of the quorum-collect rule repo-wide: the
        # shared helper keeps the incremental scores bit-identical to
        # tree_score by construction.
        return _collect_time(list(zip(costs, self.votes)), self.needed)

    # -- IncrementalSearch protocol -------------------------------------
    def initial_score(self) -> float:
        if self._bad:
            return math.inf
        return self._score_from(self.costs)

    def propose(self, rng: random.Random) -> Optional[_TreeSwap]:
        n = self.n
        layout = self.layout
        internal_count = self.internal_count
        position_a = rng.randrange(n)
        position_b = rng.randrange(n)
        if position_b == position_a:
            position_b = (position_a + 1) % n
        low, high = (
            (position_a, position_b)
            if position_a < position_b
            else (position_b, position_a)
        )
        if low < internal_count <= high and layout[high] not in self.candidates:
            candidate_positions = [
                position
                for position in range(internal_count, n)
                if layout[position] in self.candidates
            ]
            if not candidate_positions:
                return None  # the full path's "mutation falls through" case
            high = rng.choice(candidate_positions)
        return _TreeSwap(low, high)

    def delta_score(self, mutation: _TreeSwap) -> float:
        layout = self.layout
        low, high = mutation.low, mutation.high
        layout[low], layout[high] = layout[high], layout[low]
        bad = self._bad
        if low < self.internal_count <= high:
            candidates = self.candidates
            if layout[low] not in candidates:
                bad += 1
            if layout[high] not in candidates:
                bad -= 1
        mutation.new_bad = bad
        subtree_of = self.subtree_of
        index_high = subtree_of[high]
        if low == 0:
            # Root swap: every uplink term changes; Lagg only where the
            # other endpoint sits inside a subtree.
            changed = []
            if index_high >= 0:
                changed.append((index_high, self._compute_lagg(index_high)))
            root = layout[0]
            rows = self.rows
            lagg = self.lagg
            new_costs = [0.0] * self.b
            for index in range(self.b):
                value = lagg[index]
                if changed and index == changed[0][0]:
                    value = changed[0][1]
                new_costs[index] = value + rows[layout[1 + index]][root]
            mutation.changed = changed
            mutation.new_costs = new_costs
            score = math.inf if bad else self._score_from(new_costs)
        else:
            index_low = subtree_of[low]
            affected = (
                {index_low, index_high}
                if index_high != index_low
                else {index_low}
            )
            affected.discard(-1)
            root = layout[0]
            rows = self.rows
            costs = list(self.costs)
            changed = []
            for index in affected:
                new_lagg = self._compute_lagg(index)
                new_cost = new_lagg + rows[layout[1 + index]][root]
                changed.append((index, new_lagg, new_cost))
                costs[index] = new_cost
            mutation.changed = changed
            mutation.new_costs = None
            score = math.inf if bad else self._score_from(costs)
        mutation.score = score
        return score

    def apply(self, mutation: _TreeSwap) -> None:
        self._bad = mutation.new_bad
        if mutation.new_costs is not None:
            self.costs = mutation.new_costs
            for index, new_lagg in mutation.changed:
                self.lagg[index] = new_lagg
        else:
            for index, new_lagg, new_cost in mutation.changed:
                self.lagg[index] = new_lagg
                self.costs[index] = new_cost

    def revert(self, mutation: _TreeSwap) -> None:
        layout = self.layout
        layout[mutation.low], layout[mutation.high] = (
            layout[mutation.high],
            layout[mutation.low],
        )

    def snapshot(self) -> TreeConfiguration:
        return TreeConfiguration(
            layout=tuple(self.layout), branch_factor=self.b
        )


def optitree_search(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: FrozenSet[int],
    u: int,
    rng: Optional[random.Random] = None,
    schedule: Optional[AnnealingSchedule] = None,
    k: Optional[int] = None,
    initial: Optional[TreeConfiguration] = None,
    incremental: bool = True,
) -> Optional[AnnealingResult]:
    """Annealed tree search; returns None when K is too small for a tree.

    ``k`` defaults to ``q + u = (n - f) + u`` (Definition 1); experiments
    exploring the robustness/latency trade-off (Fig. 14) override it.

    The search runs on the delta-evaluated :class:`IncrementalTreeSearch`
    engine; ``incremental=False`` selects the full-scoring reference path
    (every mutation re-scores a fresh :class:`TreeConfiguration`), kept
    for the equivalence tests -- both return bit-identical results under
    the same seed.
    """
    rng = rng or random.Random(0)
    votes_needed = k if k is not None else default_k(n, f, u)

    if initial is None:
        initial = random_tree(n, candidates, rng)
        if initial is None:
            return None

    schedule = schedule or AnnealingSchedule(
        iterations=20_000, initial_temperature=0.05, cooling=0.9995
    )

    if incremental:
        engine = IncrementalTreeSearch(latency, initial, candidates, votes_needed)
        return anneal_incremental(engine, rng, schedule)

    def score(tree: TreeConfiguration) -> float:
        if not tree.internal_nodes <= candidates:
            return math.inf
        return tree_score(latency, tree, votes_needed)

    def mutate(tree: TreeConfiguration, mutation_rng: random.Random) -> TreeConfiguration:
        return mutate_tree(tree, candidates, mutation_rng)

    return anneal(initial, score, mutate, rng, schedule)


def shard_candidates(
    candidates: FrozenSet[int], shards: int
) -> list:
    """Deterministic partition of ``candidates`` into ``shards`` slices.

    Candidates are sorted and dealt round-robin, so every shard sees a
    spread of replica ids (contiguous slices would concentrate whole
    regions in one shard under region-sorted deployments).  The partition
    depends only on the set and the shard count -- never on worker
    scheduling -- which is what makes the sharded search reproducible.
    """
    ordered = sorted(candidates)
    return [frozenset(ordered[i::shards]) for i in range(shards)]


def _search_shard(point):
    """Process-pool worker: one full annealing run on one candidate shard."""
    latency, n, f, candidates, u, seed, schedule, k = point
    return optitree_search(
        latency,
        n,
        f,
        candidates,
        u,
        rng=random.Random(seed),
        schedule=schedule,
        k=k,
    )


def optitree_search_sharded(
    latency: np.ndarray,
    n: int,
    f: int,
    candidates: FrozenSet[int],
    u: int,
    root_seed: int = 0,
    shards: int = 1,
    jobs: int = 1,
    schedule: Optional[AnnealingSchedule] = None,
    k: Optional[int] = None,
) -> Optional[AnnealingResult]:
    """Candidate-set-sharded annealed search.

    The candidate set is partitioned into ``shards`` disjoint subsets
    (:func:`shard_candidates`); each shard runs a *complete* annealing
    search restricted to its subset, on the same delta-evaluated
    :class:`IncrementalTreeSearch` engine as the serial path.  Shards
    share nothing, so they fan out over the PR 4 sweep executor
    (:func:`repro.experiments.parallel.parallel_map`).

    Determinism contract (the "byte-identical merge"):

    * each shard's RNG is seeded with
      ``derive_sweep_seed(root_seed, "shard-<i>")`` -- a pure function of
      the root seed and the shard index, never of pool scheduling;
    * ``parallel_map`` returns results in submission order, and the merge
      scans that order keeping the strictly-best score -- ties go to the
      lowest shard index;

    so the returned result is identical for any ``jobs`` value, including
    the serial ``jobs=1`` loop.  Shards too small to form a tree (fewer
    than ``b + 1`` candidates) contribute ``None`` and are skipped.
    """
    if shards <= 1:
        return optitree_search(
            latency,
            n,
            f,
            candidates,
            u,
            rng=random.Random(derive_sweep_seed(root_seed, "shard-0")),
            schedule=schedule,
            k=k,
        )
    points = [
        (
            latency,
            n,
            f,
            subset,
            u,
            derive_sweep_seed(root_seed, f"shard-{index}"),
            schedule,
            k,
        )
        for index, subset in enumerate(shard_candidates(candidates, shards))
    ]
    best = None
    for result in parallel_map(_search_shard, points, jobs=jobs):
        if result is None:
            continue
        if best is None or result.best_score < best.best_score:
            best = result
    return best


class OptiTree:
    """One replica's OptiTree stack: tree scoring + OptiLog pipeline.

    Wires the tree variant of the SuspicionMonitor into the pipeline and
    attaches the annealed search as the ConfigSensor's strategy.  Used by
    the Kauri engine in :mod:`repro.consensus.kauri` and standalone by the
    analytical experiments.
    """

    def __init__(
        self,
        replica_id: int,
        n: int,
        f: int,
        registry: Optional[KeyRegistry] = None,
        settings: Optional[PipelineSettings] = None,
        propose: Optional[Callable] = None,
        on_reconfigure: Optional[Callable] = None,
        search_schedule: Optional[AnnealingSchedule] = None,
    ):
        self.n = n
        self.f = f
        self.branch_factor = branch_factor_for(n)
        self.search_schedule = search_schedule
        settings = settings or PipelineSettings(n=n, f=f)
        self.pipeline = OptiLogPipeline(
            replica_id,
            settings,
            registry=registry,
            propose=propose,
            suspicion_monitor_factory=TreeSuspicionMonitor,
        )
        self.pipeline.attach_config(
            search=self._search,
            score=self._score,
            validator=self._validate,
            on_reconfigure=on_reconfigure,
        )

    # ------------------------------------------------------------------
    # OptiLog hooks (§6.3: score + timeout derivation)
    # ------------------------------------------------------------------
    def _score(self, configuration: Configuration) -> float:
        if not isinstance(configuration, TreeConfiguration):
            return math.inf
        k = default_k(self.n, self.f, self.pipeline.suspicion_monitor.u)
        return tree_score(self.pipeline.latency_matrix, configuration, k)

    def _search(
        self, candidates: FrozenSet[int], u: int, rng: random.Random
    ) -> Optional[TreeConfiguration]:
        result = optitree_search(
            self.pipeline.latency_matrix,
            self.n,
            self.f,
            candidates,
            u,
            rng=rng,
            schedule=self.search_schedule,
        )
        return result.best_state if result is not None else None

    def _validate(self, configuration: Configuration) -> bool:
        if not isinstance(configuration, TreeConfiguration):
            return False
        return (
            configuration.n == self.n
            and configuration.branch_factor == self.branch_factor
        )

    def timeouts_for(self, tree: TreeConfiguration) -> TreeTimeouts:
        """``d_m``/``d_rnd`` provider for the active tree (Lemma 6)."""
        k = default_k(self.n, self.f, self.pipeline.suspicion_monitor.u)
        return TreeTimeouts(self.pipeline.latency_matrix, tree, k)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def candidates(self) -> FrozenSet[int]:
        return self.pipeline.candidates

    @property
    def u(self) -> int:
        return self.pipeline.u

    @property
    def current_tree(self) -> Optional[TreeConfiguration]:
        monitor = self.pipeline.config_monitor
        current = monitor.current if monitor is not None else None
        return current if isinstance(current, TreeConfiguration) else None
