"""``repro bench --scale``: internet-scale entries with peak-RSS tracking.

The other bench suites measure wall clock in-process; this one is about
the *memory ceiling* (ROADMAP item 1), so every entry runs in a fresh
subprocess and reports ``ru_maxrss`` -- a process-global high-water mark
that would smear across entries if they shared an interpreter.  The
parent enforces a wall-clock timeout and, for dense-path (baseline)
recording, an address-space cap, so an entry that cannot fit or finish
is recorded as ``status: "timeout"`` / ``"oom"`` instead of taking the
whole suite down with it.

Two variants share the entry list:

* the **dense** variant (``run_dense_suite``, ``repro bench
  --rebaseline scale``) runs ``wonderproxy-N`` deployments -- the O(n²)
  matrix path -- under a 2 GB address-space cap, documenting exactly
  where the dense substrate stops fitting or stops finishing;
* the default variant runs ``world-N`` deployments -- the hierarchical
  backend over the *same* city draw, which yields bit-identical link
  latencies -- so ``deliveries`` / ``committed_blocks`` must match the
  dense baseline wherever the dense run completed, and the wall-clock /
  RSS columns isolate the substrate and spine changes.

``SCALE_BASELINE`` (:mod:`repro.bench.scale_baseline`) holds the
pre-refactor dense measurements.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.scale_baseline import SCALE_BASELINE

#: Address-space cap (MB) for dense-path recording: comfortably above
#: any hierarchical-path entry, comfortably below what the dense n=4096
#: substrate plus an in-flight broadcast round wants.
DENSE_LIMIT_MB = 2048

#: Per-entry wall-clock bound, parent-enforced.  PBFT broadcasts
#: quadratically and gets the larger budget; a dense entry that cannot
#: finish inside it is the documented outcome, not a flake.
_TIMEOUTS = {"pbft": 420.0}
_DEFAULT_TIMEOUT = 300.0

_QUICK_MAX_N = 512

#: Sim-seconds per (engine, n): long enough that the steady state
#: dominates setup, short enough that the n=4096 entries stay minutes.
_DURATIONS = {
    "hotstuff": {512: 3.0, 1024: 2.0, 4096: 1.0},
    "kauri": {512: 3.0, 1024: 2.0, 4096: 1.0},
    "pbft": {512: 1.5, 1024: 0.6, 4096: 0.15},
}


@dataclass(frozen=True)
class ScaleEntry:
    """One fixed scale scenario."""

    id: str
    engine: str
    protocol: str
    n: int
    workload: str
    duration: float
    seed: int = 0
    plane: str = "columnar"

    def deployment(self, dense: bool) -> str:
        return f"wonderproxy-{self.n}" if dense else f"world-{self.n}"

    @property
    def timeout(self) -> float:
        return _TIMEOUTS.get(self.engine, _DEFAULT_TIMEOUT)


def _entries() -> List[ScaleEntry]:
    protocols = {"hotstuff": "hotstuff-rr", "kauri": "kauri", "pbft": "pbft"}
    workloads = {"hotstuff": "saturated", "kauri": "saturated", "pbft": "closed-loop"}
    entries: List[ScaleEntry] = []
    for engine in ("hotstuff", "kauri", "pbft"):
        for n in (512, 1024, 4096):
            entries.append(
                ScaleEntry(
                    id=f"{engine}/n{n}",
                    engine=engine,
                    protocol=protocols[engine],
                    n=n,
                    workload=workloads[engine],
                    duration=_DURATIONS[engine][n],
                )
            )
    return entries


SUITE: List[ScaleEntry] = _entries()


# ----------------------------------------------------------------------
# Child side: one scenario, measured, result as JSON on stdout
# ----------------------------------------------------------------------
def _worker(spec_json: str) -> int:
    import resource

    spec = json.loads(spec_json)
    limit_mb = spec.get("limit_mb")
    if limit_mb:
        limit = int(limit_mb) << 20
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    out: Dict[str, object] = {"status": "ok"}
    try:
        from repro.experiments.runner import Scenario, prepare_scenario

        scenario = Scenario(
            protocol=spec["protocol"],
            deployment=spec["deployment"],
            workload=spec["workload"],
            duration=spec["duration"],
            seed=spec["seed"],
            plane=spec["plane"],
            name=spec["name"],
        )
        build_start = time.perf_counter()
        result = prepare_scenario(scenario)
        run_start = time.perf_counter()
        run_metrics = result.cluster.run(scenario.duration)
        run_elapsed = time.perf_counter() - run_start
        sim = result.cluster.sim
        stats = result.cluster.network.stats
        out.update(
            build_seconds=round(run_start - build_start, 3),
            run_seconds=round(run_elapsed, 3),
            events=sim.events_processed,
            deliveries=stats.messages_delivered,
            committed_blocks=len(run_metrics.commits),
            events_per_sec=(
                round(sim.events_processed / run_elapsed, 1)
                if run_elapsed > 0
                else 0.0
            ),
            deliveries_per_sec=(
                round(stats.messages_delivered / run_elapsed, 1)
                if run_elapsed > 0
                else 0.0
            ),
        )
    except MemoryError:
        out = {"status": "oom"}
    out["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )
    print(json.dumps(out))
    return 0


# ----------------------------------------------------------------------
# Batch-tally microbench: the handler-level win, isolated
# ----------------------------------------------------------------------
def run_tally_microbench(
    ns: Iterable[int] = (1024, 4096), inner: int = 20
) -> List[Dict[str, object]]:
    """Per-column wall time of the batch-tally fast paths vs the loop.

    End-to-end scale entries mix substrate, spine and handler effects;
    this isolates the handler: one full-width vote/ack column per fresh
    height/seq, timed with the set-reduction fast path and again with
    the per-row loop (selected by raising ``_BATCH_TALLY_MIN``).  The
    shapes are the steady-state ones -- hotstuff votes arriving after
    the QC formed (bulk accumulate), pbft prepares racing ahead of
    their PrePrepare (weighted accumulate).  Equivalence of the two
    paths is pinned by ``tests/consensus/test_batch_tally.py``; this
    records only the speed.
    """
    import random as random_mod

    from repro.consensus import hotstuff as hotstuff_mod
    from repro.consensus import pbft as pbft_mod
    from repro.consensus.messages import Prepare, Vote
    from repro.net.deployments import random_world_deployment

    def best_us_per_column(handler, columns):
        # Best-of-3 over `inner` pre-built fresh columns each; min damps
        # scheduler noise.  Column construction stays outside the timed
        # region -- only the handler is being measured.
        best = float("inf")
        chunk = len(columns) // 3
        for index in range(3):
            batch = columns[index * chunk : (index + 1) * chunk]
            start = time.perf_counter()
            for srcs, messages, col_times in batch:
                handler(srcs, messages, col_times)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / len(batch) * 1e6)
        return best

    records: List[Dict[str, object]] = []
    for n in ns:
        deployment = random_world_deployment(
            n, random_mod.Random(0), hierarchical=True
        )

        cluster = hotstuff_mod.HotStuffCluster(
            deployment, leader_mode="rr", plane="columnar"
        )
        replica = cluster.replicas[1]
        replica.running = True
        senders = tuple(r for r in range(n) if r != 1)
        col_times = tuple(0.1 + k * 1e-7 for k in range(len(senders)))

        def hotstuff_columns(heights):
            for height in heights:
                replica.qc_heights.add(height)  # post-QC: bulk accumulate
            return [
                (senders, tuple(Vote(height, "h", s) for s in senders), col_times)
                for height in heights
            ]

        # Leader for height h under rr is h % n; heights 1 + k*n keep
        # replica 1 the leader so the handler takes its real path.
        heights = [1 + k * n for k in range(inner * 6)]
        timings = {}
        original = hotstuff_mod._BATCH_TALLY_MIN
        for label, threshold, half in (
            ("loop", 1 << 30, heights[: inner * 3]),
            ("fast", original, heights[inner * 3 :]),
        ):
            hotstuff_mod._BATCH_TALLY_MIN = threshold
            timings[label] = best_us_per_column(
                replica.handle_VoteBatch, hotstuff_columns(half)
            )
        hotstuff_mod._BATCH_TALLY_MIN = original
        records.append(
            {
                "handler": "hotstuff/VoteBatch",
                "n": n,
                "column_width": len(senders),
                "loop_us_per_column": round(timings["loop"], 1),
                "fast_us_per_column": round(timings["fast"], 1),
                "speedup": round(timings["loop"] / timings["fast"], 2),
            }
        )

        cluster = pbft_mod.PbftCluster(deployment, mode="static", plane="columnar")
        replica = cluster.replicas[1]
        replica.running = True
        senders = tuple(range(2, n))
        col_times = tuple(0.2 + k * 1e-7 for k in range(len(senders)))

        def pbft_columns(seqs):
            # No PrePrepare yet: the weighted-accumulate shape.
            return [
                (senders, tuple(Prepare(0, seq, "h", s) for s in senders), col_times)
                for seq in seqs
            ]

        seqs = list(range(1, inner * 6 + 1))
        timings = {}
        original = pbft_mod._BATCH_TALLY_MIN
        for label, threshold, half in (
            ("loop", 1 << 30, seqs[: inner * 3]),
            ("fast", original, seqs[inner * 3 :]),
        ):
            pbft_mod._BATCH_TALLY_MIN = threshold
            timings[label] = best_us_per_column(
                replica.handle_PrepareBatch, pbft_columns(half)
            )
        pbft_mod._BATCH_TALLY_MIN = original
        records.append(
            {
                "handler": "pbft/PrepareBatch",
                "n": n,
                "column_width": len(senders),
                "loop_us_per_column": round(timings["loop"], 1),
                "fast_us_per_column": round(timings["fast"], 1),
                "speedup": round(timings["loop"] / timings["fast"], 2),
            }
        )
    return records


# ----------------------------------------------------------------------
# Parent side: spawn, bound, collect
# ----------------------------------------------------------------------
def run_entry(
    entry: ScaleEntry,
    dense: bool = False,
    limit_mb: Optional[int] = None,
) -> Dict[str, object]:
    """Run one entry in a fresh subprocess and return its record."""
    deployment = entry.deployment(dense)
    spec = {
        "protocol": entry.protocol,
        "deployment": deployment,
        "workload": entry.workload,
        "duration": entry.duration,
        "seed": entry.seed,
        "plane": entry.plane,
        "name": f"scale:{entry.id}",
        "limit_mb": limit_mb,
    }
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    record: Dict[str, object] = {
        "id": entry.id,
        "engine": entry.engine,
        "protocol": entry.protocol,
        "n": entry.n,
        "workload": entry.workload,
        "sim_duration": entry.duration,
        "seed": entry.seed,
        "plane": entry.plane,
        "deployment": deployment,
        "limit_mb": limit_mb,
    }
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.scale", "--worker", json.dumps(spec)],
            capture_output=True,
            text=True,
            timeout=entry.timeout,
            env=env,
        )
    except subprocess.TimeoutExpired:
        record["status"] = "timeout"
        record["wall_seconds"] = round(entry.timeout, 1)
        return record
    record["wall_seconds"] = round(time.perf_counter() - start, 2)
    payload = None
    for line in reversed(proc.stdout.splitlines()):
        line = line.strip()
        if line.startswith("{"):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                payload = None
            break
    if payload is None:
        # The child died before reporting (a hard OOM kills the
        # interpreter mid-allocation faster than MemoryError unwinds).
        record["status"] = "oom" if "MemoryError" in proc.stderr else "error"
        if record["status"] == "error":
            record["stderr_tail"] = proc.stderr.strip().splitlines()[-3:]
        return record
    record.update(payload)
    return record


def run_scale_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    dense: bool = False,
    limit_mb: Optional[int] = None,
) -> Dict[str, object]:
    """Run the suite (or the ``only`` subset) and return the report dict.

    ``quick`` restricts to n <= 512 -- the CI variant.  ``dense`` runs
    the O(n²) ``wonderproxy-N`` path (what the recorded baseline pins);
    the default runs the hierarchical ``world-N`` path.
    """
    wanted = set(only) if only is not None else None
    if wanted is not None:
        unknown = wanted - {entry.id for entry in SUITE}
        if unknown:
            known = ", ".join(entry.id for entry in SUITE)
            raise ValueError(
                f"unknown scale entries {sorted(unknown)} (known: {known})"
            )
        entries = [entry for entry in SUITE if entry.id in wanted]
    else:
        entries = [
            entry for entry in SUITE if not quick or entry.n <= _QUICK_MAX_N
        ]
    results = []
    for entry in entries:
        if progress is not None:
            variant = "dense" if dense else "world"
            progress(f"scale {entry.id} ({variant}, n={entry.n}) ...")
        record = run_entry(entry, dense=dense, limit_mb=limit_mb)
        baseline = SCALE_BASELINE.get("entries", {}).get(entry.id)
        if baseline is not None and not dense:
            record["baseline"] = baseline
            base_rate = baseline.get("deliveries_per_sec")
            rate = record.get("deliveries_per_sec")
            if base_rate and rate:
                record["speedup_deliveries_per_sec"] = round(
                    float(rate) / float(base_rate), 2
                )
            base_rss = baseline.get("peak_rss_mb")
            rss = record.get("peak_rss_mb")
            if base_rss and rss:
                record["rss_vs_dense"] = round(float(rss) / float(base_rss), 3)
        results.append(record)
    report = {
        "bench_version": 1,
        "quick": quick,
        "dense": dense,
        "limit_mb": limit_mb,
        "python": sys.version.split()[0],
        "platform": __import__("platform").platform(),
        "baseline_note": SCALE_BASELINE.get("note", ""),
        "entries": results,
    }
    if not dense and not quick and wanted is None:
        if progress is not None:
            progress("tally microbench (n=1024, 4096) ...")
        report["tally_microbench"] = run_tally_microbench()
    return report


def run_dense_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """The dense-path variant under the documentation cap (the thing
    ``repro bench --rebaseline scale`` records)."""
    return run_scale_suite(
        quick=quick,
        only=only,
        progress=progress,
        dense=True,
        limit_mb=DENSE_LIMIT_MB,
    )


def format_scale_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI's stdout)."""
    lines = [
        f"{'entry':<14} {'n':>5} {'status':>8} {'build_s':>8} {'run_s':>8} "
        f"{'deliveries':>11} {'del/s':>10} {'rss_mb':>8} {'speedup':>8} {'rss_x':>6}"
    ]
    for rec in report["entries"]:
        status = rec.get("status", "?")
        speedup = rec.get("speedup_deliveries_per_sec")
        rss_ratio = rec.get("rss_vs_dense")
        lines.append(
            f"{rec['id']:<14} {rec['n']:>5} {status:>8} "
            f"{rec.get('build_seconds', float('nan')):>8.2f} "
            f"{rec.get('run_seconds', float('nan')):>8.2f} "
            f"{rec.get('deliveries', 0):>11,} "
            f"{rec.get('deliveries_per_sec', 0.0):>10,.0f} "
            f"{rec.get('peak_rss_mb', float('nan')):>8.1f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
            + (f" {rss_ratio:>5.2f}" if rss_ratio is not None else f" {'-':>5}")
        )
    tally = report.get("tally_microbench")
    if tally:
        lines.append("")
        lines.append(
            f"{'batch-tally handler':<22} {'n':>5} {'width':>6} "
            f"{'loop_us':>9} {'fast_us':>9} {'speedup':>8}"
        )
        for rec in tally:
            lines.append(
                f"{rec['handler']:<22} {rec['n']:>5} {rec['column_width']:>6} "
                f"{rec['loop_us_per_column']:>9,.1f} "
                f"{rec['fast_us_per_column']:>9,.1f} "
                f"{rec['speedup']:>7.2f}x"
            )
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.scale [--quick|--dense] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--worker":
        return _worker(argv[1])
    quick = "--quick" in argv
    dense = "--dense" in argv
    paths = [a for a in argv if not a.startswith("--")]
    run = run_dense_suite if dense else run_scale_suite
    report = run(quick=quick, progress=lambda msg: print(msg, file=sys.stderr))
    print(format_scale_table(report))
    if paths:
        write_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
