"""``repro bench --scale``: internet-scale entries with peak-RSS tracking.

The other bench suites measure wall clock in-process; this one is about
the *memory ceiling* (ROADMAP item 1), so every entry runs in a fresh
subprocess and reports ``ru_maxrss`` -- a process-global high-water mark
that would smear across entries if they shared an interpreter.  The
parent enforces a wall-clock timeout and, for dense-path (baseline)
recording, an address-space cap, so an entry that cannot fit or finish
is recorded as ``status: "timeout"`` / ``"oom"`` instead of taking the
whole suite down with it.

Two variants share the entry list:

* the **dense** variant (``run_dense_suite``, ``repro bench
  --rebaseline scale``) runs ``wonderproxy-N`` deployments -- the O(n²)
  matrix path -- under a 2 GB address-space cap, documenting exactly
  where the dense substrate stops fitting or stops finishing;
* the default variant runs ``world-N`` deployments -- the hierarchical
  backend over the *same* city draw, which yields bit-identical link
  latencies -- so ``deliveries`` / ``committed_blocks`` must match the
  dense baseline wherever the dense run completed, and the wall-clock /
  RSS columns isolate the substrate and spine changes.

``SCALE_BASELINE`` (:mod:`repro.bench.scale_baseline`) holds the
pre-refactor dense measurements.

The default variant additionally runs every ``plane="columnar"`` entry a
second time on ``plane="columnar-fast"`` (the relaxed append-order
spine) and embeds the measurement as a ``fast`` sub-record plus a
``fast_speedup_deliveries_per_sec`` ratio -- the "fast column".  The
open-loop entries (``pbft-open/n1024``, ``pbft-open/n4096``) are where
that column is expected to win big: reply unicasts into a huge in-flight
prepare/commit spine are exactly the sorted-insert traffic the relaxed
drain turns into O(1) appends.  ``pbft/n8192`` probes the memory diet
one octave past the roadmap ceiling and runs on the fast plane only.
``CHECK_SUITE`` holds jitter-free ``plane="check-fast"`` entries that
run both planes in one worker and assert the final metrics agree, so
every recorded fast number ships next to a green equivalence check.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.scale_baseline import SCALE_BASELINE

#: Address-space cap (MB) for dense-path recording: comfortably above
#: any hierarchical-path entry, comfortably below what the dense n=4096
#: substrate plus an in-flight broadcast round wants.
DENSE_LIMIT_MB = 2048

#: Per-entry wall-clock bound, parent-enforced.  Keyed by entry id
#: first (the n=8192 probe and the open-loop floods get their own
#: budgets), then by engine: PBFT broadcasts quadratically and gets the
#: larger budget; a dense entry that cannot finish inside it is the
#: documented outcome, not a flake.
_TIMEOUTS = {
    "pbft": 420.0,
    "pbft-open/n4096": 600.0,
    "pbft/n8192": 900.0,
}
_DEFAULT_TIMEOUT = 300.0

_QUICK_MAX_N = 512

#: Sim-seconds per (engine, n): long enough that the steady state
#: dominates setup, short enough that the n=4096 entries stay minutes.
_DURATIONS = {
    "hotstuff": {512: 3.0, 1024: 2.0, 4096: 1.0},
    "kauri": {512: 3.0, 1024: 2.0, 4096: 1.0},
    "pbft": {512: 1.5, 1024: 0.6, 4096: 0.15, 8192: 0.08},
}


@dataclass(frozen=True)
class ScaleEntry:
    """One fixed scale scenario."""

    id: str
    engine: str
    protocol: str
    n: int
    workload: str
    duration: float
    seed: int = 0
    plane: str = "columnar"
    #: Matches the Scenario default, so the pre-existing entries keep
    #: their recorded behaviour; check-fast entries pin 0.0 (the fast
    #: plane draws jitter in a different send order, so the harness
    #: only accepts jitter-free scenarios).
    jitter: float = 0.02
    #: Workload kwargs as a (key, value) pair tuple (frozen dataclasses
    #: need hashable fields); () means workload defaults.
    workload_params: tuple = ()

    def deployment(self, dense: bool) -> str:
        return f"wonderproxy-{self.n}" if dense else f"world-{self.n}"

    @property
    def timeout(self) -> float:
        return _TIMEOUTS.get(self.id, _TIMEOUTS.get(self.engine, _DEFAULT_TIMEOUT))


def _entries() -> List[ScaleEntry]:
    protocols = {"hotstuff": "hotstuff-rr", "kauri": "kauri", "pbft": "pbft"}
    workloads = {"hotstuff": "saturated", "kauri": "saturated", "pbft": "closed-loop"}
    entries: List[ScaleEntry] = []
    for engine in ("hotstuff", "kauri", "pbft"):
        for n in (512, 1024, 4096):
            entries.append(
                ScaleEntry(
                    id=f"{engine}/n{n}",
                    engine=engine,
                    protocol=protocols[engine],
                    n=n,
                    workload=workloads[engine],
                    duration=_DURATIONS[engine][n],
                )
            )
    # Open-loop PBFT floods: load keeps arriving while n^2 vote traffic
    # is in flight, so reply unicasts land in a huge pending spine --
    # the regime the fast column is measured on.
    for n, rate, duration in ((1024, 1200.0, 0.4), (4096, 300.0, 0.2)):
        entries.append(
            ScaleEntry(
                id=f"pbft-open/n{n}",
                engine="pbft",
                protocol="pbft",
                n=n,
                workload="open-loop",
                duration=duration,
                workload_params=(("rate", rate), ("clients", 4)),
            )
        )
    # The memory-diet probe: one octave past the roadmap's n=4096
    # ceiling, fast plane only (no columnar twin -- the point is the
    # compact runtime state, not a plane comparison).
    entries.append(
        ScaleEntry(
            id="pbft/n8192",
            engine="pbft",
            protocol="pbft",
            n=8192,
            workload="closed-loop",
            duration=_DURATIONS["pbft"][8192],
            plane="columnar-fast",
        )
    )
    return entries


SUITE: List[ScaleEntry] = _entries()


def _check_entries() -> List[ScaleEntry]:
    """Jitter-free ``check-fast`` runs: both planes in one worker, final
    metrics asserted equivalent (``PlaneDivergence`` fails the entry)."""
    shapes = [
        ("hotstuff", "hotstuff-rr", "saturated", 512, 1.0, ()),
        ("kauri", "kauri", "saturated", 512, 1.0, ()),
        ("pbft", "pbft", "open-loop", 512, 0.5, (("rate", 400.0), ("clients", 2))),
        ("pbft", "pbft", "open-loop", 1024, 0.3, (("rate", 600.0), ("clients", 2))),
    ]
    entries: List[ScaleEntry] = []
    for engine, protocol, workload, n, duration, params in shapes:
        suffix = "-open" if workload == "open-loop" else ""
        entries.append(
            ScaleEntry(
                id=f"check/{engine}{suffix}/n{n}",
                engine=engine,
                protocol=protocol,
                n=n,
                workload=workload,
                duration=duration,
                plane="check-fast",
                jitter=0.0,
                workload_params=params,
            )
        )
    return entries


CHECK_SUITE: List[ScaleEntry] = _check_entries()


# ----------------------------------------------------------------------
# Child side: one scenario, measured, result as JSON on stdout
# ----------------------------------------------------------------------
def _worker(spec_json: str) -> int:
    import resource

    spec = json.loads(spec_json)
    limit_mb = spec.get("limit_mb")
    if limit_mb:
        limit = int(limit_mb) << 20
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    out: Dict[str, object] = {"status": "ok"}
    try:
        from repro.experiments.runner import (
            PlaneDivergence,
            Scenario,
            prepare_scenario,
            run_scenario,
        )

        scenario = Scenario(
            protocol=spec["protocol"],
            deployment=spec["deployment"],
            workload=spec["workload"],
            workload_params=dict(spec.get("workload_params") or {}),
            duration=spec["duration"],
            seed=spec["seed"],
            jitter=spec.get("jitter", 0.02),
            plane=spec["plane"],
            name=spec["name"],
        )
        if scenario.plane in ("check", "check-fast"):
            # The harness runs both planes itself and raises on
            # divergence; report the (fast) run it hands back.
            build_start = run_start = time.perf_counter()
            try:
                result = run_scenario(scenario)
            except PlaneDivergence as divergence:
                out = {"status": "diverged", "detail": str(divergence)[:500]}
                result = None
            run_elapsed = time.perf_counter() - run_start
            if result is not None:
                out["check"] = "passed"
                out.update(
                    build_seconds=0.0,
                    run_seconds=round(run_elapsed, 3),
                    events=result.cluster.sim.events_processed,
                    deliveries=result.cluster.network.stats.messages_delivered,
                    committed_blocks=result.run_metrics.committed_blocks(),
                )
        else:
            build_start = time.perf_counter()
            result = prepare_scenario(scenario)
            run_start = time.perf_counter()
            run_metrics = result.cluster.run(scenario.duration)
            run_elapsed = time.perf_counter() - run_start
            sim = result.cluster.sim
            stats = result.cluster.network.stats
            out.update(
                build_seconds=round(run_start - build_start, 3),
                run_seconds=round(run_elapsed, 3),
                events=sim.events_processed,
                deliveries=stats.messages_delivered,
                committed_blocks=len(run_metrics.commits),
                events_per_sec=(
                    round(sim.events_processed / run_elapsed, 1)
                    if run_elapsed > 0
                    else 0.0
                ),
                deliveries_per_sec=(
                    round(stats.messages_delivered / run_elapsed, 1)
                    if run_elapsed > 0
                    else 0.0
                ),
            )
    except MemoryError:
        out = {"status": "oom"}
    out["peak_rss_mb"] = round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    )
    print(json.dumps(out))
    return 0


# ----------------------------------------------------------------------
# Batch-tally microbench: the handler-level win, isolated
# ----------------------------------------------------------------------
def run_tally_microbench(
    ns: Iterable[int] = (1024, 4096), inner: int = 20
) -> List[Dict[str, object]]:
    """Per-column wall time of the batch-tally fast paths vs the loop.

    End-to-end scale entries mix substrate, spine and handler effects;
    this isolates the handler: one full-width vote/ack column per fresh
    height/seq, timed with the set-reduction fast path and again with
    the per-row loop (selected by raising ``_BATCH_TALLY_MIN``).  The
    shapes are the steady-state ones -- hotstuff votes arriving after
    the QC formed (bulk accumulate), pbft prepares racing ahead of
    their PrePrepare (weighted accumulate).  Equivalence of the two
    paths is pinned by ``tests/consensus/test_batch_tally.py``; this
    records only the speed.
    """
    import random as random_mod

    from repro.consensus import hotstuff as hotstuff_mod
    from repro.consensus import pbft as pbft_mod
    from repro.consensus.messages import Prepare, Vote
    from repro.net.deployments import random_world_deployment

    def best_us_per_column(handler, columns):
        # Best-of-3 over `inner` pre-built fresh columns each; min damps
        # scheduler noise.  Column construction stays outside the timed
        # region -- only the handler is being measured.
        best = float("inf")
        chunk = len(columns) // 3
        for index in range(3):
            batch = columns[index * chunk : (index + 1) * chunk]
            start = time.perf_counter()
            for srcs, messages, col_times in batch:
                handler(srcs, messages, col_times)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed / len(batch) * 1e6)
        return best

    records: List[Dict[str, object]] = []
    for n in ns:
        deployment = random_world_deployment(
            n, random_mod.Random(0), hierarchical=True
        )

        cluster = hotstuff_mod.HotStuffCluster(
            deployment, leader_mode="rr", plane="columnar"
        )
        replica = cluster.replicas[1]
        replica.running = True
        senders = tuple(r for r in range(n) if r != 1)
        col_times = tuple(0.1 + k * 1e-7 for k in range(len(senders)))

        def hotstuff_columns(heights):
            for height in heights:
                replica.qc_heights.add(height)  # post-QC: bulk accumulate
            return [
                (senders, tuple(Vote(height, "h", s) for s in senders), col_times)
                for height in heights
            ]

        # Leader for height h under rr is h % n; heights 1 + k*n keep
        # replica 1 the leader so the handler takes its real path.
        heights = [1 + k * n for k in range(inner * 6)]
        timings = {}
        original = hotstuff_mod._BATCH_TALLY_MIN
        for label, threshold, half in (
            ("loop", 1 << 30, heights[: inner * 3]),
            ("fast", original, heights[inner * 3 :]),
        ):
            hotstuff_mod._BATCH_TALLY_MIN = threshold
            timings[label] = best_us_per_column(
                replica.handle_VoteBatch, hotstuff_columns(half)
            )
        hotstuff_mod._BATCH_TALLY_MIN = original
        records.append(
            {
                "handler": "hotstuff/VoteBatch",
                "n": n,
                "column_width": len(senders),
                "loop_us_per_column": round(timings["loop"], 1),
                "fast_us_per_column": round(timings["fast"], 1),
                "speedup": round(timings["loop"] / timings["fast"], 2),
            }
        )

        cluster = pbft_mod.PbftCluster(deployment, mode="static", plane="columnar")
        replica = cluster.replicas[1]
        replica.running = True
        senders = tuple(range(2, n))
        col_times = tuple(0.2 + k * 1e-7 for k in range(len(senders)))

        def pbft_columns(seqs):
            # No PrePrepare yet: the weighted-accumulate shape.
            return [
                (senders, tuple(Prepare(0, seq, "h", s) for s in senders), col_times)
                for seq in seqs
            ]

        seqs = list(range(1, inner * 6 + 1))
        timings = {}
        original = pbft_mod._BATCH_TALLY_MIN
        original_uniform = pbft_mod._BATCH_TALLY_MIN_UNIFORM
        for label, threshold, half in (
            ("loop", 1 << 30, seqs[: inner * 3]),
            ("fast", original, seqs[inner * 3 :]),
        ):
            pbft_mod._BATCH_TALLY_MIN = threshold
            # Static-mode pbft selects the numpy-free uniform tally by
            # its own (lower) threshold; raise both or the "loop" leg
            # silently measures the tally.
            pbft_mod._BATCH_TALLY_MIN_UNIFORM = threshold
            timings[label] = best_us_per_column(
                replica.handle_PrepareBatch, pbft_columns(half)
            )
        pbft_mod._BATCH_TALLY_MIN = original
        pbft_mod._BATCH_TALLY_MIN_UNIFORM = original_uniform
        records.append(
            {
                "handler": "pbft/PrepareBatch",
                "n": n,
                "column_width": len(senders),
                "loop_us_per_column": round(timings["loop"], 1),
                "fast_us_per_column": round(timings["fast"], 1),
                "speedup": round(timings["loop"] / timings["fast"], 2),
            }
        )
    return records


# ----------------------------------------------------------------------
# Parent side: spawn, bound, collect
# ----------------------------------------------------------------------
def run_entry(
    entry: ScaleEntry,
    dense: bool = False,
    limit_mb: Optional[int] = None,
    plane: Optional[str] = None,
) -> Dict[str, object]:
    """Run one entry in a fresh subprocess and return its record.

    ``plane`` overrides the entry's plane (the fast column reruns a
    ``columnar`` entry on ``columnar-fast`` without a second entry).
    """
    deployment = entry.deployment(dense)
    plane = entry.plane if plane is None else plane
    spec = {
        "protocol": entry.protocol,
        "deployment": deployment,
        "workload": entry.workload,
        "workload_params": list(entry.workload_params),
        "duration": entry.duration,
        "seed": entry.seed,
        "jitter": entry.jitter,
        "plane": plane,
        "name": f"scale:{entry.id}",
        "limit_mb": limit_mb,
    }
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    record: Dict[str, object] = {
        "id": entry.id,
        "engine": entry.engine,
        "protocol": entry.protocol,
        "n": entry.n,
        "workload": entry.workload,
        "workload_params": dict(entry.workload_params),
        "sim_duration": entry.duration,
        "seed": entry.seed,
        "jitter": entry.jitter,
        "plane": plane,
        "deployment": deployment,
        "limit_mb": limit_mb,
    }
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench.scale", "--worker", json.dumps(spec)],
            capture_output=True,
            text=True,
            timeout=entry.timeout,
            env=env,
        )
    except subprocess.TimeoutExpired:
        record["status"] = "timeout"
        record["wall_seconds"] = round(entry.timeout, 1)
        return record
    record["wall_seconds"] = round(time.perf_counter() - start, 2)
    payload = None
    for line in reversed(proc.stdout.splitlines()):
        line = line.strip()
        if line.startswith("{"):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                payload = None
            break
    if payload is None:
        # The child died before reporting (a hard OOM kills the
        # interpreter mid-allocation faster than MemoryError unwinds).
        record["status"] = "oom" if "MemoryError" in proc.stderr else "error"
        if record["status"] == "error":
            record["stderr_tail"] = proc.stderr.strip().splitlines()[-3:]
        return record
    record.update(payload)
    return record


def run_scale_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
    dense: bool = False,
    limit_mb: Optional[int] = None,
) -> Dict[str, object]:
    """Run the suite (or the ``only`` subset) and return the report dict.

    ``quick`` restricts to n <= 512 -- the CI variant.  ``dense`` runs
    the O(n²) ``wonderproxy-N`` path (what the recorded baseline pins);
    the default runs the hierarchical ``world-N`` path.
    """
    wanted = set(only) if only is not None else None
    if wanted is not None:
        unknown = wanted - {entry.id for entry in SUITE}
        if unknown:
            known = ", ".join(entry.id for entry in SUITE)
            raise ValueError(
                f"unknown scale entries {sorted(unknown)} (known: {known})"
            )
        entries = [entry for entry in SUITE if entry.id in wanted]
    else:
        entries = [
            entry for entry in SUITE if not quick or entry.n <= _QUICK_MAX_N
        ]
    results = []
    for entry in entries:
        if progress is not None:
            variant = "dense" if dense else "world"
            progress(f"scale {entry.id} ({variant}, n={entry.n}) ...")
        record = run_entry(entry, dense=dense, limit_mb=limit_mb)
        baseline = SCALE_BASELINE.get("entries", {}).get(entry.id)
        if baseline is not None and not dense:
            record["baseline"] = baseline
            base_rate = baseline.get("deliveries_per_sec")
            rate = record.get("deliveries_per_sec")
            if base_rate and rate:
                record["speedup_deliveries_per_sec"] = round(
                    float(rate) / float(base_rate), 2
                )
            base_rss = baseline.get("peak_rss_mb")
            rss = record.get("peak_rss_mb")
            if base_rss and rss:
                record["rss_vs_dense"] = round(float(rss) / float(base_rss), 3)
        if not dense and entry.plane == "columnar":
            # The fast column: the same entry on the relaxed spine.
            if progress is not None:
                progress(f"scale {entry.id} (columnar-fast) ...")
            fast = run_entry(
                entry, dense=dense, limit_mb=limit_mb, plane="columnar-fast"
            )
            record["fast"] = {
                key: fast[key]
                for key in (
                    "status",
                    "wall_seconds",
                    "build_seconds",
                    "run_seconds",
                    "events",
                    "deliveries",
                    "committed_blocks",
                    "deliveries_per_sec",
                    "peak_rss_mb",
                )
                if key in fast
            }
            base_rate = record.get("deliveries_per_sec")
            fast_rate = fast.get("deliveries_per_sec")
            if base_rate and fast_rate:
                record["fast_speedup_deliveries_per_sec"] = round(
                    float(fast_rate) / float(base_rate), 2
                )
        results.append(record)
    checks = []
    if not dense and wanted is None:
        for entry in CHECK_SUITE:
            if quick and entry.n > _QUICK_MAX_N:
                continue
            if progress is not None:
                progress(f"scale {entry.id} (check-fast, n={entry.n}) ...")
            checks.append(run_entry(entry, dense=dense, limit_mb=limit_mb))
    report = {
        "bench_version": 1,
        "quick": quick,
        "dense": dense,
        "limit_mb": limit_mb,
        "python": sys.version.split()[0],
        "platform": __import__("platform").platform(),
        "baseline_note": SCALE_BASELINE.get("note", ""),
        "entries": results,
    }
    if checks:
        report["check_fast"] = checks
    if not dense and not quick and wanted is None:
        if progress is not None:
            progress("tally microbench (n=1024, 4096) ...")
        report["tally_microbench"] = run_tally_microbench()
    return report


def run_dense_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """The dense-path variant under the documentation cap (the thing
    ``repro bench --rebaseline scale`` records)."""
    return run_scale_suite(
        quick=quick,
        only=only,
        progress=progress,
        dense=True,
        limit_mb=DENSE_LIMIT_MB,
    )


def format_scale_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI's stdout)."""
    lines = [
        f"{'entry':<15} {'n':>5} {'status':>8} {'build_s':>8} {'run_s':>8} "
        f"{'deliveries':>11} {'del/s':>10} {'rss_mb':>8} {'speedup':>8} {'rss_x':>6}"
        f" {'fast_del/s':>11} {'fast_x':>7}"
    ]
    for rec in report["entries"]:
        status = rec.get("status", "?")
        speedup = rec.get("speedup_deliveries_per_sec")
        rss_ratio = rec.get("rss_vs_dense")
        fast = rec.get("fast") or {}
        fast_rate = fast.get("deliveries_per_sec")
        fast_x = rec.get("fast_speedup_deliveries_per_sec")
        lines.append(
            f"{rec['id']:<15} {rec['n']:>5} {status:>8} "
            f"{rec.get('build_seconds', float('nan')):>8.2f} "
            f"{rec.get('run_seconds', float('nan')):>8.2f} "
            f"{rec.get('deliveries', 0):>11,} "
            f"{rec.get('deliveries_per_sec', 0.0):>10,.0f} "
            f"{rec.get('peak_rss_mb', float('nan')):>8.1f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
            + (f" {rss_ratio:>5.2f}" if rss_ratio is not None else f" {'-':>5}")
            + (f" {fast_rate:>11,.0f}" if fast_rate is not None else f" {'-':>11}")
            + (f" {fast_x:>6.2f}x" if fast_x is not None else f" {'-':>7}")
        )
    checks = report.get("check_fast")
    if checks:
        lines.append("")
        lines.append(
            f"{'check-fast entry':<22} {'n':>5} {'status':>8} {'check':>8} "
            f"{'run_s':>8} {'deliveries':>11} {'blocks':>7}"
        )
        for rec in checks:
            lines.append(
                f"{rec['id']:<22} {rec['n']:>5} {rec.get('status', '?'):>8} "
                f"{rec.get('check', '-'):>8} "
                f"{rec.get('run_seconds', float('nan')):>8.2f} "
                f"{rec.get('deliveries', 0):>11,} "
                f"{rec.get('committed_blocks', 0):>7}"
            )
    tally = report.get("tally_microbench")
    if tally:
        lines.append("")
        lines.append(
            f"{'batch-tally handler':<22} {'n':>5} {'width':>6} "
            f"{'loop_us':>9} {'fast_us':>9} {'speedup':>8}"
        )
        for rec in tally:
            lines.append(
                f"{rec['handler']:<22} {rec['n']:>5} {rec['column_width']:>6} "
                f"{rec['loop_us_per_column']:>9,.1f} "
                f"{rec['fast_us_per_column']:>9,.1f} "
                f"{rec['speedup']:>7.2f}x"
            )
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.scale [--quick|--dense] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--worker":
        return _worker(argv[1])
    quick = "--quick" in argv
    dense = "--dense" in argv
    paths = [a for a in argv if not a.startswith("--")]
    run = run_dense_suite if dense else run_scale_suite
    report = run(quick=quick, progress=lambda msg: print(msg, file=sys.stderr))
    print(format_scale_table(report))
    if paths:
        write_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
