"""``make bench-all``: every bench suite, one consolidated report.

Runs the five suites -- ``simulator`` (the original ``repro bench``
scenarios), ``search``, ``pipeline``, ``metrics`` and ``plane`` -- in
sequence and nests their individual reports under one top-level JSON, so
a single artifact captures the whole perf trajectory at a commit.  Each
nested report is byte-identical in shape to what its own CLI flag would
have written, baselines included.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Callable, Dict, List, Optional, Tuple


def _suites() -> List[Tuple[str, Callable, Callable]]:
    from repro.bench import metrics, pipeline, plane, search, suite

    return [
        ("simulator", suite.run_suite, suite.format_table),
        ("search", search.run_search_suite, search.format_search_table),
        ("pipeline", pipeline.run_pipeline_suite, pipeline.format_pipeline_table),
        ("metrics", metrics.run_metrics_suite, metrics.format_metrics_table),
        ("plane", plane.run_plane_suite, plane.format_plane_table),
    ]


def run_all_suites(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every suite and return the consolidated report dict."""
    suites: Dict[str, object] = {}
    for name, run, _format in _suites():
        if progress is not None:
            progress(f"suite {name} ...")
        suites[name] = run(quick=quick, progress=progress)
    return {
        "bench_version": 1,
        "suite": "all",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "suites": suites,
    }


def format_all_tables(report: Dict[str, object]) -> str:
    """Every suite's table, separated by headed sections."""
    sections = []
    formats = {name: fmt for name, _run, fmt in _suites()}
    for name, sub_report in report["suites"].items():
        sections.append(f"== {name} ==\n{formats[name](sub_report)}")
    return "\n\n".join(sections)


def write_all_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.all [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_all_suites(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_all_tables(report))
    output = paths[0] if paths else (
        "BENCH_all_quick.json" if quick else "BENCH_all.json"
    )
    write_all_report(report, output)
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
