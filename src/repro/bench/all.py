"""``make bench-all``: every bench suite, one consolidated report.

Runs the seven suites -- ``simulator`` (the original ``repro bench``
scenarios), ``search``, ``pipeline``, ``metrics``, ``plane``, ``scale``
and ``attack`` -- in sequence and nests their individual reports under one
top-level JSON, so a single artifact captures the whole perf trajectory
at a commit.  Each nested report is byte-identical in shape to what its
own CLI flag would have written, baselines included.

Memory numbers live in a separate top-level ``host`` section: peak RSS
is a host-dependent high-water mark (allocator, page size, interpreter
build), so it stays out of the per-suite reports whose baselines must
remain comparable across machines.  The section collects the parent
process's own ``ru_maxrss`` plus the per-entry peaks from the scale
suite, whose subprocess isolation makes them per-scenario rather than
run-order-dependent.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
from typing import Callable, Dict, List, Optional, Tuple


def _suites() -> List[Tuple[str, Callable, Callable]]:
    from repro.bench import attack, metrics, pipeline, plane, scale, search, suite

    return [
        ("simulator", suite.run_suite, suite.format_table),
        ("search", search.run_search_suite, search.format_search_table),
        ("pipeline", pipeline.run_pipeline_suite, pipeline.format_pipeline_table),
        ("metrics", metrics.run_metrics_suite, metrics.format_metrics_table),
        ("plane", plane.run_plane_suite, plane.format_plane_table),
        ("scale", scale.run_scale_suite, scale.format_scale_table),
        ("attack", attack.run_attack_suite, attack.format_attack_table),
    ]


def _peak_rss_mb() -> float:
    return round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1)


def host_section(suites: Dict[str, object]) -> Dict[str, object]:
    """The host-dependent memory numbers, isolated from suite baselines."""
    scale_rss = {}
    scale_report = suites.get("scale")
    if isinstance(scale_report, dict):
        for record in scale_report.get("entries", []):
            rss = record.get("peak_rss_mb")
            if rss is not None:
                scale_rss[record["id"]] = rss
    return {
        "bench_process_peak_rss_mb": _peak_rss_mb(),
        "scale_entry_peak_rss_mb": scale_rss,
    }


def run_all_suites(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run every suite and return the consolidated report dict."""
    suites: Dict[str, object] = {}
    for name, run, _format in _suites():
        if progress is not None:
            progress(f"suite {name} ...")
        suites[name] = run(quick=quick, progress=progress)
    return {
        "bench_version": 1,
        "suite": "all",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "host": host_section(suites),
        "suites": suites,
    }


def format_all_tables(report: Dict[str, object]) -> str:
    """Every suite's table, separated by headed sections."""
    sections = []
    formats = {name: fmt for name, _run, fmt in _suites()}
    for name, sub_report in report["suites"].items():
        sections.append(f"== {name} ==\n{formats[name](sub_report)}")
    host = report.get("host")
    if host:
        lines = [
            f"bench process peak RSS: {host['bench_process_peak_rss_mb']} MB"
        ]
        for entry_id, rss in sorted(host["scale_entry_peak_rss_mb"].items()):
            lines.append(f"  scale {entry_id:<14} {rss:>8.1f} MB")
        sections.append("== host ==\n" + "\n".join(lines))
    return "\n\n".join(sections)


def write_all_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.all [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_all_suites(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_all_tables(report))
    output = paths[0] if paths else (
        "BENCH_all_quick.json" if quick else "BENCH_all.json"
    )
    write_all_report(report, output)
    print(f"wrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
