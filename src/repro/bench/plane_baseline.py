"""Recorded baseline for the ``repro bench --plane`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate with ``repro bench --rebaseline plane``
(see :mod:`repro.bench.rebaseline`) when the suite changes shape or the
trajectory gets a new anchor commit.

Only the object-plane side is recorded: it is the
pre-refactor delivery path, preserved bit-for-bit, so
reports are self-contained evidence against pre-refactor
behaviour.
"""

PLANE_BASELINE = {'entries': {'fallback/faulted': {'deliveries': 17298,
                                  'deliveries_per_sec_object': 305731.8,
                                  'events_per_delivery_object': 1.0215,
                                  'heap_events_object': 17670,
                                  'sim_duration': 3.0,
                                  'wall_seconds_object': 0.0566},
             'hotstuff/n128/open-loop': {'deliveries': 140372,
                                         'deliveries_per_sec_object': 387384.7,
                                         'events_per_delivery_object': 1.0042,
                                         'heap_events_object': 140965,
                                         'sim_duration': 3.0,
                                         'wall_seconds_object': 0.3624},
             'hotstuff/n128/steady': {'deliveries': 6393,
                                      'deliveries_per_sec_object': 379261.4,
                                      'events_per_delivery_object': 1.0,
                                      'heap_events_object': 6393,
                                      'sim_duration': 3.0,
                                      'wall_seconds_object': 0.0169},
             'kauri/n128/steady': {'deliveries': 7522,
                                   'deliveries_per_sec_object': 457444.3,
                                   'events_per_delivery_object': 1.0,
                                   'heap_events_object': 7522,
                                   'sim_duration': 3.0,
                                   'wall_seconds_object': 0.0164},
             'pbft/n31/open-loop': {'deliveries': 51830,
                                    'deliveries_per_sec_object': 452435.2,
                                    'events_per_delivery_object': 1.0072,
                                    'heap_events_object': 52202,
                                    'sim_duration': 3.0,
                                    'wall_seconds_object': 0.1146}},
 'note': 'PR7: object-plane (pre-refactor delivery path) recorded at the '
         'columnar-plane commit, best of three runs per entry'}
