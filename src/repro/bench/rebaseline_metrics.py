"""Rewrite :mod:`repro.bench.metrics_baseline` from a fresh suite run.

Run this at a known-good commit so subsequent ``repro bench --metrics``
reports compare against it::

    PYTHONPATH=src python -m repro.bench.rebaseline_metrics "note"
"""

from __future__ import annotations

import pprint
import sys
from pathlib import Path

from repro.bench.metrics import _RATE_KEYS, run_metrics_suite

_HEADER = '''"""Recorded baseline for the ``repro bench --metrics`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate (see :mod:`repro.bench.rebaseline_metrics`)
when the suite changes shape or the measurement plane gets a new anchor
commit.
"""

METRICS_BASELINE = '''

#: Deterministic smoke fields worth pinning alongside the rates.
_SMOKE_KEYS = (
    "bin_checksum",
    "query_sum",
    "request_total",
    "blocks",
    "requests",
)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    note = argv[0] if argv else "rebaselined"
    report = run_metrics_suite(
        quick=False, progress=lambda msg: print(msg, file=sys.stderr)
    )
    entries = {}
    for rec in report["entries"]:
        entry = {"wall_seconds": rec["wall_seconds"]}
        for key in _RATE_KEYS + _SMOKE_KEYS:
            if key in rec:
                entry[key] = rec[key]
        entries[rec["id"]] = entry
    baseline = {"note": note, "entries": entries}
    path = Path(__file__).with_name("metrics_baseline.py")
    path.write_text(_HEADER + pprint.pformat(baseline, sort_dicts=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
