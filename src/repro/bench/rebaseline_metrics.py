"""Back-compat shim: rewrite :mod:`repro.bench.metrics_baseline`.

The per-suite rebaseline scripts were unified behind
``repro bench --rebaseline <suite>`` (see
:mod:`repro.bench.rebaseline`); this module keeps the original
entry point working::

    PYTHONPATH=src python -m repro.bench.rebaseline_metrics "note"
"""

from __future__ import annotations

import sys

from repro.bench.rebaseline import main as _rebaseline_main


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    note = argv[0] if argv else "rebaselined"
    return _rebaseline_main(["metrics", note])


if __name__ == "__main__":
    sys.exit(main())
