"""The ``repro bench --pipeline`` suite: monitoring-pipeline throughput.

The simulator bench (:mod:`repro.bench.suite`) pins events/sec and the
search bench (:mod:`repro.bench.search`) pins the optimizer, but the
paper's *monitoring* loop -- sensors append records, the log dispatches
them, the SuspicionMonitor folds them into the suspicion graph and the
candidate set ``K`` is a maximum independent set (§4.2.3, Fig. 8) -- has
its own hot path.  This suite pins it:

* ``log-append/plain``    -- raw :meth:`AppendOnlyLog.append` throughput
  (no subscribers) over a fixed mixed record stream;
* ``log-append/dispatch`` -- the same stream with typed subscribers
  (exact, second exact, catch-all), i.e. the dispatch path;
* ``log-append/batched``  -- the same stream through the batched
  :meth:`AppendOnlyLog.append_many` gossip-burst path (falls back to the
  per-record loop where the batched API is absent, e.g. when
  rebaselining at an old commit);
* ``suspicion-entries/nN`` -- entries/sec of a SuspicionMonitor replaying
  a fixed seeded interleaving of slow suspicions, reciprocations,
  round-leader notes and view advances at n ∈ {31, 100, 211};
* ``mis-exact/n26``       -- exact Bron-Kerbosch candidate-set solves/sec
  over a fixed pool of Erdős–Rényi suspicion graphs at the fig8 exact
  threshold;
* ``mis-greedy/nN``       -- greedy-heuristic solves/sec at n ∈ {31,
  100, 211}.

Simulated fields (final ``K``/``u``/``C``, edge counts, candidate-id
checksums) are deterministic under the fixed seeds and double as a smoke
check that an optimisation did not change behaviour.
``PIPELINE_BASELINE`` (see :mod:`repro.bench.pipeline_baseline`) holds
the recorded pre-refactor numbers; reports embed it so a
``BENCH_PR5.json`` is self-contained evidence of a speedup.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.pipeline_baseline import PIPELINE_BASELINE

#: SuspicionMonitor replay sizes (n=211 matches the paper's largest
#: deployment; 31/100 bracket the exact-MIS threshold).
SUSPICION_SIZES = (31, 100, 211)
#: Ops per suspicion replay -- enough that monitor work dominates setup.
SUSPICION_OPS = {31: 1500, 100: 1200, 211: 800}
#: Fixed mixed-record stream length for the log entries.
LOG_STREAM_LEN = 20_000
#: Erdős–Rényi pools for the MIS entries.
MIS_EXACT_N = 26  # the fig8 exact-solver threshold
MIS_EXACT_POOL = 40
MIS_GREEDY_SIZES = (31, 100, 211)
MIS_GREEDY_POOL = {31: 60, 100: 40, 211: 30}
MIS_EDGE_PROBABILITY = 0.5

_QUICK_SKIP = {"suspicion-entries/n211", "mis-greedy/n211"}


# ----------------------------------------------------------------------
# Deterministic workloads
# ----------------------------------------------------------------------
def suspicion_workload(n: int, count: int, seed: int) -> List[Tuple]:
    """A fixed, seeded op stream for a SuspicionMonitor.

    Ops are ``("leader", round_id, leader)``, ``("record", record)`` and
    ``("view", view)``; the mix (~70% slow suspicions, ~15%
    reciprocations of recently seen pairs, ~15% view advances) exercises
    edge growth, causal filtering, crash aging and overflow eviction.
    Pure function of ``(n, count, seed)`` -- the baseline and the code
    under test replay byte-identical streams.
    """
    from repro.core.records import SuspicionKind, SuspicionRecord

    rng = random.Random((seed, n, count).__repr__())
    ops: List[Tuple] = []
    view = 0
    recent: List[Tuple[int, int]] = []
    for index in range(count):
        roll = rng.random()
        if roll < 0.15 and recent:
            reporter, suspect = recent[rng.randrange(len(recent))]
            ops.append(
                (
                    "record",
                    SuspicionRecord(
                        reporter=suspect,
                        suspect=reporter,
                        kind=SuspicionKind.FALSE,
                        round_id=index // 6,
                        msg_type="reciprocation",
                        phase=rng.randrange(4),
                        view=view,
                    ),
                )
            )
        elif roll < 0.30:
            view += rng.randrange(1, 3)
            ops.append(("view", view))
        else:
            a, b = rng.sample(range(n), 2)
            round_id = index // 6
            if rng.random() < 0.2:
                ops.append(("leader", round_id, rng.randrange(n)))
            ops.append(
                (
                    "record",
                    SuspicionRecord(
                        reporter=a,
                        suspect=b,
                        kind=SuspicionKind.SLOW,
                        round_id=round_id,
                        msg_type=rng.choice(("write", "aggregate", "propose")),
                        phase=rng.randrange(4),
                        view=view,
                    ),
                )
            )
            recent.append((a, b))
            if len(recent) > 32:
                recent.pop(0)
    return ops


def replay_suspicion_workload(n: int, f: int, ops: List[Tuple]):
    """Replay ``ops`` through a fresh log + SuspicionMonitor; returns the
    monitor (its final state is the smoke check)."""
    from repro.core.log import AppendOnlyLog
    from repro.core.suspicion import SuspicionMonitor

    log = AppendOnlyLog()
    monitor = SuspicionMonitor(0, log, n=n, f=f)
    append = log.append
    for op in ops:
        tag = op[0]
        if tag == "record":
            append(op[1])
        elif tag == "view":
            monitor.advance_view(op[1])
        else:
            monitor.note_round_leader(op[1], op[2])
    return monitor


def log_record_stream(count: int, seed: int) -> List[object]:
    """A fixed mixed stream of latency vectors and suspicions."""
    from repro.core.records import (
        LatencyVectorRecord,
        SuspicionKind,
        SuspicionRecord,
    )

    rng = random.Random((seed, count).__repr__())
    vector = tuple(rng.random() for _ in range(32))
    records: List[object] = []
    for index in range(count):
        if rng.random() < 0.5:
            records.append(LatencyVectorRecord(sender=index % 32, vector=vector))
        else:
            records.append(
                SuspicionRecord(
                    reporter=index % 32,
                    suspect=(index + 1) % 32,
                    kind=SuspicionKind.SLOW,
                    round_id=index // 8,
                )
            )
    return records


def mis_graph_pool(n: int, count: int, seed: int) -> List[object]:
    """Seeded Erdős–Rényi suspicion graphs (the Fig. 8 distribution)."""
    from repro.experiments.fig8 import random_suspicion_graph

    rng = random.Random((seed, n).__repr__())
    return [
        random_suspicion_graph(n, MIS_EDGE_PROBABILITY, rng) for _ in range(count)
    ]


def _candidate_checksum(sets) -> int:
    """Deterministic fingerprint of a sequence of candidate sets."""
    total = 0
    for chosen in sets:
        total += len(chosen) * 1000 + sum(chosen)
    return total


def _time_best_of(fn: Callable[[], object], repeats: int) -> tuple:
    """(best wall seconds, last result): best-of-N to shed scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
def _bench_log_append(mode: str, repeats: int) -> Dict[str, object]:
    from repro.core.log import AppendOnlyLog
    from repro.core.records import LatencyVectorRecord, SuspicionRecord

    records = log_record_stream(LOG_STREAM_LEN, seed=3)

    def build_log() -> AppendOnlyLog:
        log = AppendOnlyLog()
        if mode == "dispatch":
            counters = [0, 0, 0]

            def make(index):
                def callback(entry):
                    counters[index] += 1

                return callback

            log.subscribe(SuspicionRecord, make(0))
            log.subscribe(LatencyVectorRecord, make(1))
            log.subscribe(object, make(2))
            log._bench_counters = counters  # smoke readback
        return log

    def run():
        log = build_log()
        if mode == "batched":
            append_many = getattr(log, "append_many", None)
            if append_many is not None:
                for start in range(0, len(records), 64):
                    append_many(records[start : start + 64])
            else:  # pre-refactor fallback: the per-record loop
                for record in records:
                    log.append(record)
        else:
            append = log.append
            for record in records:
                append(record)
        return log

    wall, log = _time_best_of(run, repeats)
    record: Dict[str, object] = {
        "id": f"log-append/{mode}",
        "records": len(records),
        "wall_seconds": round(wall, 6),
        "records_per_sec": round(len(records) / wall, 1) if wall > 0 else 0.0,
        "total_wire_size": log.total_wire_size(),
        "histogram": log.type_histogram(),
    }
    if mode == "dispatch":
        record["dispatched"] = list(log._bench_counters)
    return record


def _bench_suspicion_entries(n: int, repeats: int) -> Dict[str, object]:
    f = (n - 1) // 3
    ops = suspicion_workload(n, SUSPICION_OPS[n], seed=11)

    wall, monitor = _time_best_of(
        lambda: replay_suspicion_workload(n, f, ops), repeats
    )
    return {
        "id": f"suspicion-entries/n{n}",
        "n": n,
        "ops": len(ops),
        "wall_seconds": round(wall, 6),
        "entries_per_sec": round(len(ops) / wall, 1) if wall > 0 else 0.0,
        "candidates": len(monitor.K),
        "candidate_sum": sum(monitor.K),
        "u": monitor.u,
        "crashed": len(monitor.C),
        "edges": monitor.graph.edge_count(),
        "filtered": monitor.filtered_count,
        "active": len(monitor.active_suspicions()),
    }


def _bench_mis(solver_name: str, n: int, pool: int, repeats: int) -> Dict[str, object]:
    from repro.optimize.maxindset import (
        greedy_independent_set,
        maximum_independent_set,
    )

    solver = (
        maximum_independent_set if solver_name == "exact" else greedy_independent_set
    )
    graphs = mis_graph_pool(n, pool, seed=23)

    def run():
        # Drop the per-graph adjacency memo so every repeat pays full
        # per-solve setup, like the monitor's fresh-graph-per-refresh
        # path (and like the recorded pre-bitset baseline did).
        for graph in graphs:
            graph._bitmasks = None
        return [solver(graph) for graph in graphs]

    wall, results = _time_best_of(run, repeats)
    return {
        "id": f"mis-{solver_name}/n{n}",
        "n": n,
        "graphs": len(graphs),
        "wall_seconds": round(wall, 6),
        "solves_per_sec": round(len(graphs) / wall, 1) if wall > 0 else 0.0,
        "candidate_checksum": _candidate_checksum(results),
    }


def _pipeline_entries(repeats: int) -> List[tuple]:
    entries: List[tuple] = []
    for mode in ("plain", "dispatch", "batched"):
        entries.append(
            (f"log-append/{mode}", lambda mode=mode: _bench_log_append(mode, repeats))
        )
    for n in SUSPICION_SIZES:
        entries.append(
            (
                f"suspicion-entries/n{n}",
                lambda n=n: _bench_suspicion_entries(n, repeats),
            )
        )
    entries.append(
        (
            f"mis-exact/n{MIS_EXACT_N}",
            lambda: _bench_mis("exact", MIS_EXACT_N, MIS_EXACT_POOL, repeats),
        )
    )
    for n in MIS_GREEDY_SIZES:
        entries.append(
            (
                f"mis-greedy/n{n}",
                lambda n=n: _bench_mis("greedy", n, MIS_GREEDY_POOL[n], repeats),
            )
        )
    return entries


_RATE_KEYS = ("records_per_sec", "entries_per_sec", "solves_per_sec")


def run_pipeline_suite(
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the pipeline suite and return the report dict.

    ``quick`` drops the slowest entries (n=211 replay and greedy pool)
    and runs single-shot -- the CI variant.
    """
    if quick:
        repeats = 1
    results = []
    for entry_id, runner in _pipeline_entries(repeats):
        if quick and entry_id in _QUICK_SKIP:
            continue
        if progress is not None:
            progress(f"bench {entry_id} ...")
        record = runner()
        baseline = PIPELINE_BASELINE.get("entries", {}).get(entry_id)
        if baseline is not None:
            record["baseline"] = baseline
            for rate_key in _RATE_KEYS:
                base_rate = baseline.get(rate_key)
                if base_rate and record.get(rate_key):
                    record["speedup"] = round(
                        float(record[rate_key]) / float(base_rate), 2
                    )
                    break
        results.append(record)
    return {
        "bench_version": 1,
        "suite": "pipeline",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": PIPELINE_BASELINE.get("note", ""),
        "entries": results,
    }


def format_pipeline_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a pipeline report (the CLI's stdout)."""
    lines = [
        f"{'entry':<24} {'items':>7} {'wall_s':>9} {'rate':>12} {'speedup':>8}"
    ]
    for rec in report["entries"]:
        rate = 0.0
        for rate_key in _RATE_KEYS:
            if rec.get(rate_key):
                rate = rec[rate_key]
                break
        items = rec.get("records") or rec.get("ops") or rec.get("graphs") or 0
        speedup = rec.get("speedup")
        lines.append(
            f"{rec['id']:<24} {items:>7} {rec['wall_seconds']:>9.4f} "
            f"{rate:>12,.0f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
        )
    return "\n".join(lines)


def write_pipeline_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.pipeline [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_pipeline_suite(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_pipeline_table(report))
    if paths:
        write_pipeline_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
