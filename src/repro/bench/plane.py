"""The ``repro bench --plane`` suite: object vs columnar message plane.

Each entry runs the *same* scenario twice -- once per message plane --
and records both sides next to each other, so a single report answers
the three questions the refactor is accountable for:

* **Equivalence** (``trace_equal``): the columnar run's
  :func:`~repro.experiments.trace.state_trace_hash` must equal the
  object run's.  A report with any ``trace_equal: false`` is a bug, not
  a slow entry.
* **Steady-state event reduction** (``event_reduction``): engine heap
  events per delivered message, object over columnar.  This is the
  acceptance metric: the columnar plane drains whole runs of deliveries
  per heap pop, so steady-state entries see 100-1000x fewer events for
  the same message count.  Wall clock is *not* the headline number --
  full-protocol runs are handler-dominated (Amdahl), so removing the
  heap traffic buys event reduction at roughly wall parity; the honest
  wall numbers are recorded anyway (``wall_speedup``).
* **Fallback cost** (the ``fallback/faulted`` entry): a faulted
  scenario requested on the columnar plane runs the literal object
  path, so its wall clock must stay within noise (~5%) of an explicit
  object run and its ``event_reduction`` is ~1.

``PLANE_BASELINE`` (see :mod:`repro.bench.plane_baseline`) records the
object-plane numbers -- the pre-refactor delivery path, preserved
bit-for-bit -- so a ``BENCH_*.json`` is self-contained evidence against
the pre-refactor baseline.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bench.plane_baseline import PLANE_BASELINE

#: Quick mode shrinks every entry to this replica count and duration --
#: the CI variant, cheap enough to run on every push.
_QUICK_N = {128: 16, 31: 7}
_QUICK_DURATION = 1.0
#: A faulted columnar run is the object path; its wall clock must stay
#: within this fraction of the explicit object run.
FALLBACK_TOLERANCE = 0.05


@dataclass(frozen=True)
class PlaneEntry:
    """One fixed two-plane scenario."""

    id: str
    protocol: str
    n: int
    workload: str
    duration: float
    seed: int = 7
    workload_params: Dict[str, object] = field(default_factory=dict)
    faulted: bool = False

    def deployment(self, quick: bool) -> str:
        n = _QUICK_N.get(self.n, self.n) if quick else self.n
        return f"wonderproxy-{n}"


SUITE: List[PlaneEntry] = [
    # Steady-state saturated runs: the drain's best case (long pristine
    # runs, the whole simulation collapses into a handful of heap pops).
    PlaneEntry("hotstuff/n128/steady", "hotstuff-rr", 128, "saturated", 3.0),
    PlaneEntry("kauri/n128/steady", "kauri", 128, "saturated", 3.0),
    # Open-loop runs interleave client timers with protocol traffic, the
    # drain's adversarial case (short runs, frequent barrier stops).
    PlaneEntry(
        "hotstuff/n128/open-loop",
        "hotstuff-rr",
        128,
        "open-loop",
        3.0,
        workload_params={"rate": 200.0, "clients": 4},
    ),
    PlaneEntry(
        "pbft/n31/open-loop",
        "pbft",
        31,
        "open-loop",
        3.0,
        workload_params={"rate": 120.0, "clients": 2},
    ),
    # Faulted scenario on plane='columnar': exercises the automatic
    # object-path fallback; measures its (absence of) overhead.
    PlaneEntry(
        "fallback/faulted",
        "pbft",
        31,
        "open-loop",
        3.0,
        workload_params={"rate": 120.0, "clients": 2},
        faulted=True,
    ),
]


def _scenario(entry: PlaneEntry, plane: str, quick: bool):
    from repro.experiments.runner import FaultSpec, Scenario

    faults = []
    if entry.faulted:
        faults = [
            FaultSpec(kind="loss", start=0.5, end=2.5, params={"rate": 0.2})
        ]
    return Scenario(
        protocol=entry.protocol,
        deployment=entry.deployment(quick),
        workload=entry.workload,
        workload_params=dict(entry.workload_params),
        duration=_QUICK_DURATION if quick else entry.duration,
        seed=entry.seed,
        faults=faults,
        plane=plane,
        name=f"bench-plane:{entry.id}:{plane}",
    )


def _run_plane(entry: PlaneEntry, plane: str, quick: bool, repeats: int):
    """(best wall, last result) for one plane of one entry."""
    from repro.experiments.runner import run_scenario

    wall = float("inf")
    result = None
    for _ in range(1 if quick else max(1, repeats)):
        gc.collect()
        scenario = _scenario(entry, plane, quick)
        start = time.perf_counter()
        attempt = run_scenario(scenario)
        elapsed = time.perf_counter() - start
        if elapsed < wall:
            wall = elapsed
            result = attempt
    return wall, result


def run_plane_entry(
    entry: PlaneEntry, quick: bool = False, repeats: int = 3
) -> Dict[str, object]:
    """Run one entry on both planes and return the paired record."""
    from repro.experiments.trace import state_trace_hash

    wall_obj, res_obj = _run_plane(entry, "object", quick, repeats)
    wall_col, res_col = _run_plane(entry, "columnar", quick, repeats)

    events_obj = res_obj.cluster.sim.events_processed
    events_col = res_col.cluster.sim.events_processed
    delivered = res_obj.cluster.network.stats.messages_delivered
    record: Dict[str, object] = {
        "id": entry.id,
        "protocol": entry.protocol,
        "deployment": entry.deployment(quick),
        "workload": entry.workload,
        "sim_duration": _QUICK_DURATION if quick else entry.duration,
        "seed": entry.seed,
        "faulted": entry.faulted,
        "trace_equal": (
            state_trace_hash(res_col.cluster)
            == state_trace_hash(res_obj.cluster)
        ),
        "deliveries": delivered,
        "deliveries_match": (
            res_col.cluster.network.stats.messages_delivered == delivered
        ),
        "wall_seconds_object": round(wall_obj, 4),
        "wall_seconds_columnar": round(wall_col, 4),
        "wall_speedup": round(wall_obj / wall_col, 3) if wall_col > 0 else 0.0,
        "heap_events_object": events_obj,
        "heap_events_columnar": events_col,
        "events_per_delivery_object": (
            round(events_obj / delivered, 4) if delivered else 0.0
        ),
        "events_per_delivery_columnar": (
            round(events_col / delivered, 4) if delivered else 0.0
        ),
        "event_reduction": (
            round(events_obj / events_col, 1) if events_col else 0.0
        ),
        "deliveries_per_sec_object": (
            round(delivered / wall_obj, 1) if wall_obj > 0 else 0.0
        ),
        "deliveries_per_sec_columnar": (
            round(delivered / wall_col, 1) if wall_col > 0 else 0.0
        ),
    }
    if entry.faulted:
        # The columnar-requested run fell back to the literal object
        # path; record that it did, and that doing so cost nothing.
        record["fallback_active"] = res_col.cluster.network.plane == "object"
        record["fallback_within_tolerance"] = (
            abs(wall_col - wall_obj) <= FALLBACK_TOLERANCE * wall_obj
        )
    return record


def run_plane_suite(
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the plane suite and return the report dict."""
    results = []
    for entry in SUITE:
        if progress is not None:
            progress(f"bench {entry.id} (object vs columnar) ...")
        record = run_plane_entry(entry, quick=quick, repeats=repeats)
        baseline = PLANE_BASELINE.get("entries", {}).get(entry.id)
        if baseline is not None and not quick:
            record["baseline"] = baseline
        results.append(record)
    return {
        "bench_version": 1,
        "suite": "plane",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": PLANE_BASELINE.get("note", ""),
        "entries": results,
    }


def format_plane_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a plane report (the CLI's stdout)."""
    lines = [
        f"{'entry':<24} {'deliv':>8} {'wall_obj':>9} {'wall_col':>9} "
        f"{'ev_obj':>8} {'ev_col':>7} {'ev_redux':>9} {'trace':>6}"
    ]
    for rec in report["entries"]:
        trace = "EQUAL" if rec["trace_equal"] else "DIVERGE"
        lines.append(
            f"{rec['id']:<24} {rec['deliveries']:>8} "
            f"{rec['wall_seconds_object']:>9.3f} "
            f"{rec['wall_seconds_columnar']:>9.3f} "
            f"{rec['heap_events_object']:>8} {rec['heap_events_columnar']:>7} "
            f"{rec['event_reduction']:>8.1f}x {trace:>6}"
        )
    return "\n".join(lines)


def write_plane_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.plane [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_plane_suite(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_plane_table(report))
    if paths:
        write_plane_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
