"""The ``repro bench --search`` suite: optimizer-layer throughput.

The simulator bench (:mod:`repro.bench.suite`) pins events/sec; this
suite pins the *search* trajectory the ConfigSensor depends on (§4.2.4):
configuration quality is bounded by how many score evaluations the
annealer completes inside its wall-clock search timer, so score
evals/sec and SA iterations/sec are the numbers a perf PR must move.

Entries (fixed inputs, fixed seeds -- only the code under test varies):

* ``tree-score/nN``   -- full ``tree_score`` evaluations/sec over a fixed
  pool of random layouts (the optimizer's innermost call);
* ``sa-tree/nN``      -- ``optitree_search`` iterations/sec at a fixed
  budget (the Fig. 12 hot path);
* ``sa-weights/nN``   -- ``annealed_weight_search`` iterations/sec;
* ``exhaustive-weights/nN`` -- one deterministic
  ``exhaustive_weight_search`` wall-clock.

Simulated outcomes (``best_score``, chosen leader) are deterministic
under the fixed seeds and double as a smoke check that an optimisation
did not change search behaviour.  ``SEARCH_BASELINE`` (see
:mod:`repro.bench.search_baseline`) holds the recorded pre-refactor
numbers; reports embed it so a ``BENCH_PR4.json`` is self-contained
evidence of a speedup.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.search_baseline import SEARCH_BASELINE

#: Tree sizes the paper sweeps (Fig. 12 ends at n=211).
TREE_SIZES = (57, 211)
#: Weight-search sizes (PBFT-scale; the paper's Aware experiments).
WEIGHT_SIZES = (21, 57)
#: Annealing budgets per entry -- large enough to dominate setup cost.
SA_TREE_ITERATIONS = {57: 4000, 211: 2000}
SA_WEIGHT_ITERATIONS = {21: 1500, 57: 600}
#: tree-score evaluations per timing pass.
SCORE_POOL = 64

_QUICK_SKIP = {"sa-tree/n211", "exhaustive-weights/n57", "sa-weights/n57"}


def _tree_latency(n: int, seed: int = 0):
    """The Fig. 12 deployment rule, shared with the figure driver so the
    bench always measures the input the figure reports."""
    from repro.experiments.fig12 import _latency_for

    return _latency_for(n, seed)


def _time_best_of(fn: Callable[[], object], repeats: int) -> tuple:
    """(best wall seconds, last result): best-of-N to shed scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def _bench_tree_score(n: int, repeats: int) -> Dict[str, object]:
    from repro.tree.optitree import random_tree
    from repro.tree.score import tree_score

    latency = _tree_latency(n)
    f = (n - 1) // 3
    k = 2 * f + 1
    rng = random.Random(1234 + n)
    pool = [random_tree(n, frozenset(range(n)), rng) for _ in range(SCORE_POOL)]

    def evaluate() -> float:
        total = 0.0
        for tree in pool:
            total += tree_score(latency, tree, k)
        return total

    checksum = evaluate()  # warm caches outside the timing loop
    wall, _ = _time_best_of(evaluate, repeats)
    return {
        "id": f"tree-score/n{n}",
        "n": n,
        "evals": SCORE_POOL,
        "wall_seconds": round(wall, 6),
        "evals_per_sec": round(SCORE_POOL / wall, 1) if wall > 0 else 0.0,
        "score_checksum": checksum,
    }


def _bench_sa_tree(n: int, repeats: int) -> Dict[str, object]:
    from repro.optimize.annealing import AnnealingSchedule
    from repro.tree.optitree import optitree_search

    latency = _tree_latency(n)
    f = (n - 1) // 3
    iterations = SA_TREE_ITERATIONS[n]
    schedule = AnnealingSchedule(
        iterations=iterations, initial_temperature=0.05, cooling=0.9995
    )

    def search():
        return optitree_search(
            latency,
            n,
            f,
            candidates=frozenset(range(n)),
            u=0,
            rng=random.Random(7 + n),
            schedule=schedule,
            k=2 * f + 1,
        )

    wall, result = _time_best_of(search, repeats)
    return {
        "id": f"sa-tree/n{n}",
        "n": n,
        "iterations": result.iterations_used,
        "wall_seconds": round(wall, 6),
        "iterations_per_sec": round(result.iterations_used / wall, 1)
        if wall > 0
        else 0.0,
        "best_score": result.best_score,
        "accepted": result.accepted,
    }


def _bench_sa_weights(n: int, repeats: int) -> Dict[str, object]:
    from repro.aware.search import annealed_weight_search
    from repro.aware.score import weight_config_round_duration
    from repro.optimize.annealing import AnnealingSchedule

    latency = _tree_latency(n)
    f = (n - 1) // 3
    iterations = SA_WEIGHT_ITERATIONS[n]
    schedule = AnnealingSchedule(iterations=iterations, initial_temperature=0.05)

    def search():
        return annealed_weight_search(
            latency, n, f, rng=random.Random(11 + n), schedule=schedule
        )

    wall, best = _time_best_of(search, repeats)
    return {
        "id": f"sa-weights/n{n}",
        "n": n,
        "iterations": iterations,
        "wall_seconds": round(wall, 6),
        "iterations_per_sec": round(iterations / wall, 1) if wall > 0 else 0.0,
        "best_score": weight_config_round_duration(latency, best),
        "leader": best.leader,
    }


def _bench_exhaustive_weights(n: int, repeats: int) -> Dict[str, object]:
    from repro.aware.search import exhaustive_weight_search
    from repro.aware.score import weight_config_round_duration

    latency = _tree_latency(n)
    f = (n - 1) // 3

    def search():
        return exhaustive_weight_search(latency, n, f)

    wall, best = _time_best_of(search, repeats)
    return {
        "id": f"exhaustive-weights/n{n}",
        "n": n,
        "leaders": n,
        "wall_seconds": round(wall, 6),
        "leaders_per_sec": round(n / wall, 1) if wall > 0 else 0.0,
        "best_score": weight_config_round_duration(latency, best),
        "leader": best.leader,
    }


def _search_entries(repeats: int) -> List[tuple]:
    entries: List[tuple] = []
    for n in TREE_SIZES:
        entries.append((f"tree-score/n{n}", lambda n=n: _bench_tree_score(n, repeats)))
    for n in TREE_SIZES:
        entries.append((f"sa-tree/n{n}", lambda n=n: _bench_sa_tree(n, repeats)))
    for n in WEIGHT_SIZES:
        entries.append((f"sa-weights/n{n}", lambda n=n: _bench_sa_weights(n, repeats)))
    for n in WEIGHT_SIZES:
        entries.append(
            (f"exhaustive-weights/n{n}", lambda n=n: _bench_exhaustive_weights(n, repeats))
        )
    return entries


def run_search_suite(
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the search suite and return the report dict.

    ``quick`` drops the slowest entries (n=211 annealing, n=57 weight
    searches) and runs single-shot -- the CI variant.
    """
    if quick:
        repeats = 1
    results = []
    for entry_id, runner in _search_entries(repeats):
        if quick and entry_id in _QUICK_SKIP:
            continue
        if progress is not None:
            progress(f"bench {entry_id} ...")
        record = runner()
        baseline = SEARCH_BASELINE.get("entries", {}).get(entry_id)
        if baseline is not None:
            record["baseline"] = baseline
            for rate_key in ("evals_per_sec", "iterations_per_sec", "leaders_per_sec"):
                base_rate = baseline.get(rate_key)
                if base_rate and record.get(rate_key):
                    record["speedup"] = round(
                        float(record[rate_key]) / float(base_rate), 2
                    )
                    break
        results.append(record)
    return {
        "bench_version": 1,
        "suite": "search",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": SEARCH_BASELINE.get("note", ""),
        "entries": results,
    }


def format_search_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a search report (the CLI's stdout)."""
    lines = [
        f"{'entry':<24} {'n':>4} {'wall_s':>9} {'rate':>12} {'best_score':>12} {'speedup':>8}"
    ]
    for rec in report["entries"]:
        rate = (
            rec.get("evals_per_sec")
            or rec.get("iterations_per_sec")
            or rec.get("leaders_per_sec")
            or 0.0
        )
        score = rec.get("best_score", rec.get("score_checksum", 0.0))
        speedup = rec.get("speedup")
        lines.append(
            f"{rec['id']:<24} {rec['n']:>4} {rec['wall_seconds']:>9.4f} "
            f"{rate:>12,.0f} {score:>12.6f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
        )
    return "\n".join(lines)


def write_search_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.search [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_search_suite(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_search_table(report))
    if paths:
        write_search_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
