"""``make profile-search``: cProfile over the fixed search hot path.

Profiles the same searches every time (OptiTree annealing at n=211 with
a 20k-iteration budget, then one annealed weight search at n=57) so
successive profiles are comparable, and prints the top functions by
internal time::

    PYTHONPATH=src python -m repro.bench.profile_search [top_n]
"""

from __future__ import annotations

import cProfile
import pstats
import random
import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    top = int(argv[0]) if argv else 30
    from repro.aware.search import annealed_weight_search
    from repro.net.deployments import random_world_deployment
    from repro.optimize.annealing import AnnealingSchedule
    from repro.tree.optitree import optitree_search

    n, f = 211, 70
    latency = (
        random_world_deployment(n, random.Random(n)).latency.matrix_seconds() / 2.0
    )
    wn, wf = 57, 18
    weight_latency = (
        random_world_deployment(wn, random.Random(wn)).latency.matrix_seconds() / 2.0
    )
    schedule = AnnealingSchedule(
        iterations=20_000, initial_temperature=0.05, cooling=0.9995
    )

    def workload() -> None:
        optitree_search(
            latency,
            n,
            f,
            candidates=frozenset(range(n)),
            u=0,
            rng=random.Random(7),
            schedule=schedule,
            k=2 * f + 1,
        )
        annealed_weight_search(
            weight_latency,
            wn,
            wf,
            rng=random.Random(11),
            schedule=AnnealingSchedule(iterations=2000, initial_temperature=0.05),
        )

    workload()  # warm imports and caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
