"""Recorded baseline for the ``repro bench --attack`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate with ``repro bench --rebaseline attack``
(see :mod:`repro.bench.rebaseline`) when the suite changes shape or the
trajectory gets a new anchor commit.

The deterministic simulated fields double as behaviour pins: the suite
tests replay the same seeds and assert the recorded values, so a
rebaseline at a behaviour-changing commit will (correctly) fail them.
"""

ATTACK_BASELINE = {'entries': {'attack-eval/pbft': {'arena': 'pbft',
                                  'degradations': {'churn': 1.008348,
                                                   'crash': 6.987406,
                                                   'delay': 1.0,
                                                   'loss': 1.005554,
                                                   'partition': 16.067921,
                                                   'stealth': 1.000187},
                                  'genomes': 6,
                                  'runs_per_sec': 3.25,
                                  'scenario_runs': 6,
                                  'wall_seconds': 1.84648},
             'attack-search/optiaware-suspicion': {'arena': 'optiaware',
                                                   'beats_reference': True,
                                                   'best_label': 'genome '
                                                                 'victims=[18, '
                                                                 '19, 20] '
                                                                 'moves=smear[0:32]',
                                                   'best_reference': 0.0,
                                                   'iterations': 6,
                                                   'objective': 'suspicion',
                                                   'references': {'smear-campaign': 0.0},
                                                   'restarts': 1,
                                                   'runs_per_sec': 0.04,
                                                   'scenario_runs': 5,
                                                   'synthesized_degradation': 1.0,
                                                   'wall_seconds': 114.967136},
             'attack-search/pbft-f6': {'arena': 'pbft',
                                       'beats_reference': True,
                                       'best_label': 'genome victims=[8, 13, '
                                                     '17, 18, 19, 20] '
                                                     'moves=partition[0:32]',
                                       'best_reference': 8.060149765578673,
                                       'iterations': 16,
                                       'objective': 'latency',
                                       'references': {'lossy-wan': 1.009790734787116,
                                                      'partition-heal': 8.060149765578673},
                                       'restarts': 3,
                                       'runs_per_sec': 1.54,
                                       'scenario_runs': 72,
                                       'synthesized_degradation': 48.86813230785674,
                                       'wall_seconds': 46.890462},
             'attack-search/pbft-quick': {'arena': 'pbft',
                                          'beats_reference': True,
                                          'best_label': 'genome victims=[13, '
                                                        '15, 17, 18, 19, 20] '
                                                        'moves=partition[0:32]',
                                          'best_reference': 4.040662963394356,
                                          'iterations': 8,
                                          'objective': 'latency',
                                          'references': {'lossy-wan': 3.9860411734233763,
                                                         'partition-heal': 4.040662963394356},
                                          'restarts': 2,
                                          'runs_per_sec': 3.76,
                                          'scenario_runs': 13,
                                          'synthesized_degradation': 25.10447796703234,
                                          'wall_seconds': 3.45348}},
 'note': 'initial adversary-synthesis baseline'}
