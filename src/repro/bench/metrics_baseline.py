"""Recorded baseline for the ``repro bench --metrics`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate (see :mod:`repro.bench.rebaseline_metrics`)
when the suite changes shape or the measurement plane gets a new anchor
commit.
"""

METRICS_BASELINE = {'entries': {'hist-add/heavy-tail': {'bin_checksum': 106110741,
                                     'values_per_sec': 1934011.2,
                                     'wall_seconds': 0.103412},
             'hist-add/uniform': {'bin_checksum': 99949878,
                                  'values_per_sec': 1923765.2,
                                  'wall_seconds': 0.103963},
             'sketch-merge/k64': {'bin_checksum': 67921281,
                                  'blocks': 128000,
                                  'merges_per_sec': 8532.0,
                                  'wall_seconds': 0.007384},
             'sketch-observe': {'bin_checksum': 53065057,
                                'commits_per_sec': 539329.2,
                                'requests': 100000000,
                                'wall_seconds': 0.185416},
             'sketch-quantile': {'queries_per_sec': 13910.9,
                                 'query_sum': 4121.815344,
                                 'wall_seconds': 0.431317},
             'state-roundtrip': {'bin_checksum': 13266406,
                                 'blocks': 25000,
                                 'cycles_per_sec': 3389.9,
                                 'wall_seconds': 0.058998},
             'windows-series': {'queries_per_sec': 421.2,
                                'request_total': 7174000.0,
                                'wall_seconds': 1.187179}},
 'note': 'PR6: streaming measurement plane landed'}
