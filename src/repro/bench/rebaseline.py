"""Rewrite a recorded bench baseline from a fresh full-suite run.

One generic writer serves every suite -- ``simulator`` (the original
``repro bench`` scenarios), ``metrics``, ``search``, ``pipeline`` and
``plane`` -- replacing the per-suite copies of the same script (and the
hand-paste workflow the search/pipeline baselines used to document).
Run it at a known-good commit so subsequent reports compare against it::

    repro bench --rebaseline simulator --note "note about the commit"
    PYTHONPATH=src python -m repro.bench.rebaseline <suite> ["note"]

Each suite declares which record keys get pinned: wall-clock rates (the
trajectory being tracked) plus the deterministic simulated fields that
double as behaviour pins for the equivalence tests.  The writer renders
the ``<suite>_baseline.py`` module with a pprint'd dict, exactly the
shape the suites import.
"""

from __future__ import annotations

import pprint
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

#: Report keys never pinned into a baseline: identity, embedded
#: comparisons against the *previous* baseline, and derived speedups.
_EXCLUDED = {
    "id",
    "baseline",
    "speedup",
    "speedup_events_per_sec",
}

_HEADER_TEMPLATE = '''"""Recorded baseline for the ``{title}`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate with ``repro bench --rebaseline {name}``
(see :mod:`repro.bench.rebaseline`) when the suite changes shape or the
trajectory gets a new anchor commit.{extra}
"""

{variable} = '''

_PINS_NOTE = """

The deterministic simulated fields double as behaviour pins: the suite
tests replay the same seeds and assert the recorded values, so a
rebaseline at a behaviour-changing commit will (correctly) fail them."""


@dataclass(frozen=True)
class SuiteSpec:
    """How to rebaseline one suite."""

    name: str
    title: str
    baseline_file: str
    variable: str
    #: Record keys to pin; ``None`` pins every key except ``_EXCLUDED``.
    keys: Optional[Tuple[str, ...]]
    run: Callable[..., Dict[str, object]]
    extra: str = ""


def _specs() -> Dict[str, SuiteSpec]:
    # Imports live here so ``repro.bench.rebaseline`` stays importable
    # without dragging in every suite module at startup.
    from repro.bench import attack, metrics, pipeline, plane, scale, search, suite

    return {
        "attack": SuiteSpec(
            name="attack",
            title="repro bench --attack",
            baseline_file="attack_baseline.py",
            variable="ATTACK_BASELINE",
            keys=None,
            run=attack.run_attack_suite,
            extra=_PINS_NOTE,
        ),
        "simulator": SuiteSpec(
            name="simulator",
            title="repro bench",
            baseline_file="baseline.py",
            variable="BASELINE",
            keys=(
                "events",
                "events_per_sec",
                "wall_seconds",
                "throughput_rps",
                "committed_blocks",
                "sim_duration",
            ),
            run=suite.run_suite,
        ),
        "metrics": SuiteSpec(
            name="metrics",
            title="repro bench --metrics",
            baseline_file="metrics_baseline.py",
            variable="METRICS_BASELINE",
            keys=("wall_seconds",)
            + metrics._RATE_KEYS
            + ("bin_checksum", "query_sum", "request_total", "blocks", "requests"),
            run=metrics.run_metrics_suite,
        ),
        "search": SuiteSpec(
            name="search",
            title="repro bench --search",
            baseline_file="search_baseline.py",
            variable="SEARCH_BASELINE",
            keys=None,
            run=search.run_search_suite,
            extra=_PINS_NOTE,
        ),
        "pipeline": SuiteSpec(
            name="pipeline",
            title="repro bench --pipeline",
            baseline_file="pipeline_baseline.py",
            variable="PIPELINE_BASELINE",
            keys=None,
            run=pipeline.run_pipeline_suite,
            extra=_PINS_NOTE,
        ),
        "scale": SuiteSpec(
            name="scale",
            title="repro bench --scale",
            baseline_file="scale_baseline.py",
            variable="SCALE_BASELINE",
            keys=None,
            run=scale.run_dense_suite,
            extra=(
                "\n\nThe baseline records the *dense* variant"
                "\n(``wonderproxy-N``: the O(n²) matrix substrate) under a"
                "\n2 GB address-space cap and the per-entry wall-clock"
                "\ntimeouts -- ``status`` values other than ``\"ok\"`` are the"
                "\ndocumented dense-path failures the hierarchical backend"
                "\nexists to fix, not flakes.  The deterministic simulated"
                "\nfields (``deliveries``, ``committed_blocks``) double as"
                "\nbehaviour pins for the ``world-N`` runs, which use the"
                "\nsame city draw and must simulate identically."
            ),
        ),
        "plane": SuiteSpec(
            name="plane",
            title="repro bench --plane",
            baseline_file="plane_baseline.py",
            variable="PLANE_BASELINE",
            # Pin the object-plane side only: the pre-refactor delivery
            # path, preserved bit-for-bit, is the thing reports compare
            # against; columnar numbers are the trajectory under test.
            keys=(
                "wall_seconds_object",
                "heap_events_object",
                "deliveries",
                "deliveries_per_sec_object",
                "events_per_delivery_object",
                "sim_duration",
            ),
            run=plane.run_plane_suite,
            extra=(
                "\n\nOnly the object-plane side is recorded: it is the"
                "\npre-refactor delivery path, preserved bit-for-bit, so"
                "\nreports are self-contained evidence against pre-refactor"
                "\nbehaviour."
            ),
        ),
    }


def _pin(record: Dict[str, object], keys: Optional[Tuple[str, ...]]):
    if keys is None:
        return {k: v for k, v in record.items() if k not in _EXCLUDED}
    return {k: record[k] for k in keys if k in record}


def rebaseline(
    suite_name: str,
    note: str = "rebaselined",
    progress: Optional[Callable[[str], None]] = None,
) -> Path:
    """Run ``suite_name`` in full and rewrite its baseline module."""
    specs = _specs()
    spec = specs.get(suite_name)
    if spec is None:
        known = ", ".join(sorted(specs))
        raise ValueError(f"unknown bench suite {suite_name!r} (known: {known})")
    report = spec.run(quick=False, progress=progress)
    baseline = {
        "note": note,
        "entries": {
            rec["id"]: _pin(rec, spec.keys) for rec in report["entries"]
        },
    }
    header = _HEADER_TEMPLATE.format(
        title=spec.title, name=spec.name, extra=spec.extra,
        variable=spec.variable,
    )
    path = Path(__file__).with_name(spec.baseline_file)
    path.write_text(header + pprint.pformat(baseline, sort_dicts=True) + "\n")
    return path


def known_suites() -> Tuple[str, ...]:
    return tuple(sorted(_specs()))


def main(argv=None) -> int:
    """``python -m repro.bench.rebaseline [suite] ["note"]``

    Back-compat: the original script took only a note and always meant
    the simulator suite, so a first argument that is not a suite name is
    still treated as the note.
    """
    argv = sys.argv[1:] if argv is None else argv
    suite_name = "simulator"
    note = "rebaselined"
    if argv:
        if argv[0] in _specs():
            suite_name = argv[0]
            if len(argv) > 1:
                note = argv[1]
        else:
            note = argv[0]
    path = rebaseline(
        suite_name, note, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
