"""Rewrite :mod:`repro.bench.baseline` from a fresh full-suite run.

Run this *before* a hot-path change lands (or at a known-good commit) so
subsequent ``repro bench`` reports compare against it::

    PYTHONPATH=src python -m repro.bench.rebaseline "note about the commit"
"""

from __future__ import annotations

import pprint
import sys
from pathlib import Path

from repro.bench.suite import run_suite

_HEADER = '''"""Pre-refactor baseline for the ``repro bench`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Regenerate (see :mod:`repro.bench.rebaseline`) when the
suite changes shape or the trajectory gets a new anchor commit.
"""

BASELINE = '''


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    note = argv[0] if argv else "rebaselined"
    report = run_suite(quick=False, progress=lambda msg: print(msg, file=sys.stderr))
    baseline = {
        "note": note,
        "entries": {
            rec["id"]: {
                "events": rec["events"],
                "events_per_sec": rec["events_per_sec"],
                "wall_seconds": rec["wall_seconds"],
                "throughput_rps": rec["throughput_rps"],
                "committed_blocks": rec["committed_blocks"],
                "sim_duration": rec["sim_duration"],
            }
            for rec in report["entries"]
        },
    }
    path = Path(__file__).with_name("baseline.py")
    path.write_text(_HEADER + pprint.pformat(baseline, sort_dicts=True) + "\n")
    print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
