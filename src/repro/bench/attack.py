"""The ``repro bench --attack`` suite: adversary-synthesis throughput.

The synthesis loop's budget is scenario runs: every annealing step costs
one full seeded simulation per evaluation seed, so runs/sec bounds how
much strategy space a search can cover.  This suite pins that rate plus
the searches' *outcomes* -- the synthesized worst-of-seeds degradation
against the best hand-authored reference on the same arena -- so a
``BENCH_PR9.json`` is self-contained evidence that the synthesized
adversary strictly beats the strongest hand-written scenario on its own
objective (``beats_reference`` per search entry).

Entries (fixed arenas, budgets, schedules and seeds -- only the code
under test varies):

* ``attack-eval/pbft``        -- objective-evaluation throughput over
  the fixed seed-genome rotation (the search's innermost cost);
* ``attack-search/pbft-quick`` -- a small full search on the quick pbft
  arena (CI-sized; also the determinism canary);
* ``attack-search/pbft-f6``   -- the headline: a 3-chain search at
  budget ``max_faulty=6`` on the two-seed pbft arena vs the
  partition-heal / lossy-wan references;
* ``attack-search/optiaware-suspicion`` -- the false-suspicion
  objective on the OptiAware arena vs the smear-campaign reference.

Everything is deterministic (seeded chains, event-budget timeouts), so
the degradations and best-genome labels double as behaviour pins:
``ATTACK_BASELINE`` (see :mod:`repro.bench.attack_baseline`) records
them, and the suite tests replay the quick entries bit-for-bit.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import replace as dc_replace
from typing import Callable, Dict, List, Optional

from repro.bench.attack_baseline import ATTACK_BASELINE

#: (arena, duration, seeds) for the quick-sized pbft battlefield.
QUICK_ARENA = ("pbft", 4.0, (0,))
#: Search schedules: (iterations, restarts) per entry.
QUICK_SEARCH = (8, 2)
HEADLINE_SEARCH = (16, 3)
SUSPICION_SEARCH = (6, 1)

_QUICK_SKIP = {"attack-search/pbft-f6", "attack-search/optiaware-suspicion"}


def _make_arena(name: str, duration: Optional[float], seeds):
    from repro.experiments.attack import ensure_baselines, make_arena

    arena = make_arena(name, duration=duration, seeds=seeds)
    ensure_baselines(arena)
    return arena


def _bench_eval(entry_id: str) -> Dict[str, object]:
    """Evaluation throughput: the seed-genome rotation, scored serially."""
    from repro.experiments.attack import evaluate_genome
    from repro.faults.genome import AdversaryBudget, seed_genome

    name, duration, seeds = QUICK_ARENA
    arena = _make_arena(name, duration, seeds)
    budget = AdversaryBudget(max_faulty=6)
    genomes = [seed_genome(budget, arena.profile, variant=v) for v in range(6)]
    degradations: Dict[str, float] = {}
    start = time.perf_counter()
    for genome in genomes:
        evaluation = evaluate_genome(arena, budget, "latency", genome)
        degradations[genome.moves[0].kind] = round(evaluation["degradation"], 6)
    wall = time.perf_counter() - start
    runs = len(genomes) * len(arena.seeds)
    return {
        "id": entry_id,
        "arena": name,
        "genomes": len(genomes),
        "scenario_runs": runs,
        "wall_seconds": round(wall, 6),
        "runs_per_sec": round(runs / wall, 2) if wall > 0 else 0.0,
        "degradations": degradations,
    }


def _bench_search(
    entry_id: str,
    arena_name: str,
    duration: Optional[float],
    seeds,
    objective: str,
    budget,
    iterations: int,
    restarts: int,
) -> Dict[str, object]:
    from repro.experiments.attack import (
        best_reference_degradation,
        evaluate_references,
    )
    from repro.optimize.adversary import DEFAULT_SCHEDULE, attack_search

    arena = _make_arena(arena_name, duration, seeds)
    references = evaluate_references(arena, objective)
    best_ref = best_reference_degradation(references)
    schedule = dc_replace(DEFAULT_SCHEDULE, iterations=iterations)
    start = time.perf_counter()
    report = attack_search(
        arena, budget, objective, seed=0, restarts=restarts, schedule=schedule
    )
    wall = time.perf_counter() - start
    runs = report["scenario_runs"]
    synthesized = report["best"]["degradation"]
    return {
        "id": entry_id,
        "arena": arena_name,
        "objective": objective,
        "iterations": iterations,
        "restarts": restarts,
        "scenario_runs": runs,
        "wall_seconds": round(wall, 6),
        "runs_per_sec": round(runs / wall, 2) if wall > 0 else 0.0,
        "synthesized_degradation": synthesized,
        "best_label": report["best"]["label"],
        "best_reference": best_ref,
        "references": {
            ref["name"]: ref["degradation"] for ref in references
        },
        "beats_reference": bool(
            best_ref is not None and synthesized > best_ref
        ),
    }


def _attack_entries() -> List[tuple]:
    from repro.faults.genome import AdversaryBudget

    name, duration, seeds = QUICK_ARENA
    return [
        ("attack-eval/pbft", lambda: _bench_eval("attack-eval/pbft")),
        (
            "attack-search/pbft-quick",
            lambda: _bench_search(
                "attack-search/pbft-quick",
                name,
                duration,
                seeds,
                "latency",
                AdversaryBudget(max_faulty=6),
                *QUICK_SEARCH,
            ),
        ),
        (
            "attack-search/pbft-f6",
            lambda: _bench_search(
                "attack-search/pbft-f6",
                "pbft",
                None,
                (0, 1),
                "latency",
                AdversaryBudget(max_faulty=6),
                *HEADLINE_SEARCH,
            ),
        ),
        (
            "attack-search/optiaware-suspicion",
            lambda: _bench_search(
                "attack-search/optiaware-suspicion",
                "optiaware",
                None,
                (0,),
                "suspicion",
                AdversaryBudget(),
                *SUSPICION_SEARCH,
            ),
        ),
    ]


def run_attack_suite(
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the attack suite and return the report dict.

    ``quick`` keeps only the CI-sized entries (the quick pbft arena);
    the full run adds the headline two-seed search and the suspicion
    objective.  Searches are single-shot -- they are deterministic, and
    their wall-clock is dominated by scenario runs, not noise.
    """
    results = []
    for entry_id, runner in _attack_entries():
        if quick and entry_id in _QUICK_SKIP:
            continue
        if progress is not None:
            progress(f"bench {entry_id} ...")
        record = runner()
        baseline = ATTACK_BASELINE.get("entries", {}).get(entry_id)
        if baseline is not None:
            record["baseline"] = baseline
            base_rate = baseline.get("runs_per_sec")
            if base_rate and record.get("runs_per_sec"):
                record["speedup"] = round(
                    float(record["runs_per_sec"]) / float(base_rate), 2
                )
        results.append(record)
    return {
        "bench_version": 1,
        "suite": "attack",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": ATTACK_BASELINE.get("note", ""),
        "entries": results,
    }


def format_attack_table(report: Dict[str, object]) -> str:
    """Human-readable summary of an attack report (the CLI's stdout)."""
    lines = [
        f"{'entry':<34} {'runs':>5} {'wall_s':>9} {'runs/s':>8} "
        f"{'synthesized':>12} {'best_ref':>9} {'beats':>6}"
    ]
    for rec in report["entries"]:
        synth = rec.get("synthesized_degradation")
        ref = rec.get("best_reference")
        beats = rec.get("beats_reference")
        lines.append(
            f"{rec['id']:<34} {rec['scenario_runs']:>5} "
            f"{rec['wall_seconds']:>9.3f} {rec['runs_per_sec']:>8.2f} "
            + (f"{synth:>12.3f}" if synth is not None else f"{'-':>12}")
            + (f" {ref:>9.3f}" if ref is not None else f" {'-':>9}")
            + (f" {'yes' if beats else 'no':>6}" if beats is not None else f" {'-':>6}")
        )
    return "\n".join(lines)


def write_attack_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.attack [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_attack_suite(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_attack_table(report))
    if paths:
        write_attack_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
