"""The ``repro bench --metrics`` suite: measurement-plane throughput.

Campaigns put a :class:`~repro.metrics.MetricsSketch` on the commit hot
path of every replica, so the sketch's ingest cost is pure overhead on
top of the simulator loop the main suite pins.  This suite pins that
overhead and the campaign-plane operations around it:

* ``hist-add/<shape>``    -- raw :meth:`LogHistogram.add` throughput
  over fixed seeded value streams (``uniform`` spans the domain,
  ``heavy-tail`` is the lognormal commit-latency shape campaigns see);
* ``sketch-observe``      -- :meth:`MetricsSketch.observe` over a fixed
  synthetic commit stream, i.e. the full per-commit campaign cost
  (histogram + scalar stats + window fold);
* ``sketch-merge/k64``    -- campaign-style fold of 64 per-shard
  sketches in shard order, the ``run_campaign`` merge step;
* ``sketch-quantile``     -- ``quantile(0.5/0.9/0.99)`` query rate on a
  populated histogram (the per-slice progress-report path);
* ``state-roundtrip``     -- ``state_dict`` -> ``from_state`` cycles,
  the serialisation cost a checkpoint or cross-process merge pays;
* ``windows-series``      -- timeline reconstruction from windowed
  accumulators (``throughput_series`` + ``latency_series``).

Simulated fields (counts, checksums, quantile values) are deterministic
under the fixed seeds and double as a smoke check that an optimisation
did not change behaviour.  ``METRICS_BASELINE`` (see
:mod:`repro.bench.metrics_baseline`) holds the recorded numbers; reports
embed it so a ``BENCH_*.json`` is self-contained evidence of a change.
"""

from __future__ import annotations

import gc
import json
import math
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.bench.metrics_baseline import METRICS_BASELINE
from repro.metrics import LogHistogram, MetricsSketch, ThroughputWindows

#: Values per histogram-ingest stream: large enough that ``add`` work
#: dominates stream setup, small enough for a sub-second entry.
HIST_STREAM_LEN = 200_000
#: Synthetic commits for the sketch-observe entry.
OBSERVE_STREAM_LEN = 100_000
#: Shard count for the merge entry (a plausible large campaign fan-out).
MERGE_SHARDS = 64
#: Commits folded into each shard sketch before merging.
MERGE_SHARD_COMMITS = 2_000
#: Quantile queries per timing run.
QUANTILE_QUERIES = 2_000
#: state_dict -> from_state cycles per timing run.
ROUNDTRIP_CYCLES = 200
#: Series reconstructions per timing run.
SERIES_QUERIES = 500
#: Virtual seconds the windows-series entry spans.
SERIES_DURATION = 3_600.0

_QUICK_SKIP = {"sketch-merge/k64", "state-roundtrip"}


# ----------------------------------------------------------------------
# Deterministic streams
# ----------------------------------------------------------------------
def value_stream(shape: str, count: int, seed: int) -> List[float]:
    """A fixed seeded latency stream; pure function of the arguments."""
    rng = random.Random((seed, shape, count).__repr__())
    if shape == "uniform":
        # Log-uniform across the histogram's whole domain: every decade
        # of bins gets traffic, the worst case for bin-index locality.
        return [10.0 ** rng.uniform(-6.0, 4.0) for _ in range(count)]
    if shape == "heavy-tail":
        # Lognormal around ~200ms with a long tail: the commit-latency
        # shape a WAN campaign actually produces.
        return [math.exp(rng.gauss(math.log(0.2), 0.8)) for _ in range(count)]
    raise ValueError(f"unknown stream shape {shape!r}")


def commit_stream(count: int, seed: int) -> List[tuple]:
    """Fixed ``(commit_time, latency, payload)`` triples in time order."""
    rng = random.Random((seed, count).__repr__())
    stream = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(50.0)
        latency = math.exp(rng.gauss(math.log(0.2), 0.5))
        stream.append((now, latency, 1000))
    return stream


def _hist_checksum(hist: LogHistogram) -> int:
    """Order-sensitive fingerprint of the populated bins."""
    total = 0
    for index, bucket in enumerate(hist.counts):
        if bucket:
            total += (index + 1) * bucket
    return total


def _time_best_of(fn: Callable[[], object], repeats: int) -> tuple:
    """(best wall seconds, last result): best-of-N to shed scheduler noise."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# ----------------------------------------------------------------------
# Entries
# ----------------------------------------------------------------------
def _bench_hist_add(shape: str, repeats: int) -> Dict[str, object]:
    values = value_stream(shape, HIST_STREAM_LEN, seed=5)

    def run() -> LogHistogram:
        hist = LogHistogram()
        add = hist.add
        for value in values:
            add(value)
        return hist

    wall, hist = _time_best_of(run, repeats)
    return {
        "id": f"hist-add/{shape}",
        "values": len(values),
        "wall_seconds": round(wall, 6),
        "values_per_sec": round(len(values) / wall, 1) if wall > 0 else 0.0,
        "bin_checksum": _hist_checksum(hist),
        "clamped": hist.clamped_low + hist.clamped_high,
        "p99": hist.quantile(0.99),
    }


def _bench_sketch_observe(repeats: int) -> Dict[str, object]:
    commits = commit_stream(OBSERVE_STREAM_LEN, seed=7)

    def run() -> MetricsSketch:
        sketch = MetricsSketch()
        observe = sketch.observe
        for commit_time, latency, payload in commits:
            observe(commit_time, latency, payload)
        return sketch

    wall, sketch = _time_best_of(run, repeats)
    return {
        "id": "sketch-observe",
        "commits": len(commits),
        "wall_seconds": round(wall, 6),
        "commits_per_sec": round(len(commits) / wall, 1) if wall > 0 else 0.0,
        "requests": sketch.requests,
        "bin_checksum": _hist_checksum(sketch.hist),
        "p90": sketch.hist.quantile(0.90),
    }


def _shard_states(shards: int) -> List[Dict[str, object]]:
    """Pre-built shard sketch states (build cost is not what we time)."""
    states = []
    for shard in range(shards):
        sketch = MetricsSketch()
        for commit_time, latency, payload in commit_stream(
            MERGE_SHARD_COMMITS, seed=100 + shard
        ):
            sketch.observe(commit_time, latency, payload)
        states.append(sketch.state_dict())
    return states


def _bench_sketch_merge(repeats: int) -> Dict[str, object]:
    states = _shard_states(MERGE_SHARDS)

    def run() -> MetricsSketch:
        # Rebuild from state each time so every repeat merges fresh
        # sketches, exactly like run_campaign's cross-process fold.
        merged = MetricsSketch.from_state(states[0])
        for state in states[1:]:
            merged.merge(MetricsSketch.from_state(state))
        return merged

    wall, merged = _time_best_of(run, repeats)
    return {
        "id": f"sketch-merge/k{MERGE_SHARDS}",
        "shards": MERGE_SHARDS,
        "wall_seconds": round(wall, 6),
        "merges_per_sec": (
            round((MERGE_SHARDS - 1) / wall, 1) if wall > 0 else 0.0
        ),
        "blocks": merged.blocks,
        "bin_checksum": _hist_checksum(merged.hist),
        "p50": merged.hist.quantile(0.50),
    }


def _bench_sketch_quantile(repeats: int) -> Dict[str, object]:
    hist = LogHistogram()
    for value in value_stream("heavy-tail", HIST_STREAM_LEN, seed=5):
        hist.add(value)
    qs = (0.50, 0.90, 0.99)

    def run() -> float:
        total = 0.0
        quantile = hist.quantile
        for _ in range(QUANTILE_QUERIES):
            for q in qs:
                total += quantile(q)
        return total

    wall, total = _time_best_of(run, repeats)
    queries = QUANTILE_QUERIES * len(qs)
    return {
        "id": "sketch-quantile",
        "queries": queries,
        "wall_seconds": round(wall, 6),
        "queries_per_sec": round(queries / wall, 1) if wall > 0 else 0.0,
        "query_sum": round(total, 6),
    }


def _bench_state_roundtrip(repeats: int) -> Dict[str, object]:
    sketch = MetricsSketch()
    for commit_time, latency, payload in commit_stream(
        OBSERVE_STREAM_LEN // 4, seed=9
    ):
        sketch.observe(commit_time, latency, payload)

    def run() -> MetricsSketch:
        current = sketch
        for _ in range(ROUNDTRIP_CYCLES):
            current = MetricsSketch.from_state(current.state_dict())
        return current

    wall, final = _time_best_of(run, repeats)
    return {
        "id": "state-roundtrip",
        "cycles": ROUNDTRIP_CYCLES,
        "wall_seconds": round(wall, 6),
        "cycles_per_sec": (
            round(ROUNDTRIP_CYCLES / wall, 1) if wall > 0 else 0.0
        ),
        "blocks": final.blocks,
        "bin_checksum": _hist_checksum(final.hist),
    }


def _bench_windows_series(repeats: int) -> Dict[str, object]:
    windows = ThroughputWindows(window=1.0)
    rng = random.Random("windows-series")
    now = 0.0
    while now < SERIES_DURATION:
        now += rng.expovariate(2.0)
        windows.add(now, rng.random(), 1000)

    def run() -> tuple:
        throughput = latency = None
        for _ in range(SERIES_QUERIES):
            throughput = windows.throughput_series(SERIES_DURATION, 1.0)
            latency = windows.latency_series(SERIES_DURATION, 1.0)
        return throughput, latency

    wall, (throughput, latency) = _time_best_of(run, repeats)
    return {
        "id": "windows-series",
        "queries": SERIES_QUERIES,
        "wall_seconds": round(wall, 6),
        "queries_per_sec": (
            round(SERIES_QUERIES / wall, 1) if wall > 0 else 0.0
        ),
        "throughput_points": len(throughput),
        "latency_points": len(latency),
        "request_total": round(sum(rate for _, rate in throughput), 1),
    }


def _metrics_entries(repeats: int) -> List[tuple]:
    entries: List[tuple] = []
    for shape in ("uniform", "heavy-tail"):
        entries.append(
            (f"hist-add/{shape}", lambda shape=shape: _bench_hist_add(shape, repeats))
        )
    entries.append(("sketch-observe", lambda: _bench_sketch_observe(repeats)))
    entries.append(
        (f"sketch-merge/k{MERGE_SHARDS}", lambda: _bench_sketch_merge(repeats))
    )
    entries.append(("sketch-quantile", lambda: _bench_sketch_quantile(repeats)))
    entries.append(("state-roundtrip", lambda: _bench_state_roundtrip(repeats)))
    entries.append(("windows-series", lambda: _bench_windows_series(repeats)))
    return entries


_RATE_KEYS = (
    "values_per_sec",
    "commits_per_sec",
    "merges_per_sec",
    "queries_per_sec",
    "cycles_per_sec",
)


def run_metrics_suite(
    quick: bool = False,
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the metrics suite and return the report dict.

    ``quick`` drops the slower batch entries and runs single-shot -- the
    CI variant.
    """
    if quick:
        repeats = 1
    results = []
    for entry_id, runner in _metrics_entries(repeats):
        if quick and entry_id in _QUICK_SKIP:
            continue
        if progress is not None:
            progress(f"bench {entry_id} ...")
        record = runner()
        baseline = METRICS_BASELINE.get("entries", {}).get(entry_id)
        if baseline is not None:
            record["baseline"] = baseline
            for rate_key in _RATE_KEYS:
                base_rate = baseline.get(rate_key)
                if base_rate and record.get(rate_key):
                    record["speedup"] = round(
                        float(record[rate_key]) / float(base_rate), 2
                    )
                    break
        results.append(record)
    return {
        "bench_version": 1,
        "suite": "metrics",
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": METRICS_BASELINE.get("note", ""),
        "entries": results,
    }


def format_metrics_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a metrics report (the CLI's stdout)."""
    lines = [
        f"{'entry':<22} {'items':>8} {'wall_s':>9} {'rate':>14} {'speedup':>8}"
    ]
    for rec in report["entries"]:
        rate = 0.0
        for rate_key in _RATE_KEYS:
            if rec.get(rate_key):
                rate = rec[rate_key]
                break
        items = (
            rec.get("values")
            or rec.get("commits")
            or rec.get("shards")
            or rec.get("queries")
            or rec.get("cycles")
            or 0
        )
        speedup = rec.get("speedup")
        lines.append(
            f"{rec['id']:<22} {items:>8} {rec['wall_seconds']:>9.4f} "
            f"{rate:>14,.0f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
        )
    return "\n".join(lines)


def write_metrics_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    """``python -m repro.bench.metrics [--quick] [output.json]``"""
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    paths = [a for a in argv if not a.startswith("--")]
    report = run_metrics_suite(
        quick=quick, progress=lambda msg: print(msg, file=sys.stderr)
    )
    print(format_metrics_table(report))
    if paths:
        write_metrics_report(report, paths[0])
        print(f"wrote {paths[0]}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
