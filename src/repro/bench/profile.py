"""``make profile``: cProfile over a fixed hot-path scenario.

Profiles the same scenario every time (HotStuff-rr, wonderproxy-128,
saturated, 30 simulated seconds, seed 0) so successive profiles are
comparable, and prints the top functions by internal time::

    PYTHONPATH=src python -m repro.bench.profile [top_n]
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    top = int(argv[0]) if argv else 30
    from repro.experiments.runner import Scenario, run_scenario

    scenario = Scenario(
        protocol="hotstuff-rr",
        deployment="wonderproxy-128",
        workload="saturated",
        duration=30.0,
        seed=0,
        name="profile:hotstuff/n128",
    )
    run_scenario(scenario)  # warm imports and caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_scenario(scenario)
    profiler.disable()
    sim = result.cluster.sim
    print(f"events: {sim.events_processed}  peak queue depth: {sim.max_queue_depth}")
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
