"""The ``repro bench`` suite: fixed scenarios, measured wall-clock.

The suite is deliberately boring: the *same* scenarios (protocol,
deployment, workload, duration, seed) every run, so the only thing that
changes between two reports is the code under test.  Simulated results
(committed blocks, messages) are deterministic under the fixed seeds and
double as a smoke check that an optimisation did not change behaviour;
wall-clock numbers (``wall_seconds``, ``events_per_sec``) are the
trajectory being pinned.

``BASELINE`` (see :mod:`repro.bench.baseline`) holds the pre-refactor
measurements; every report embeds it next to the fresh numbers so a
``BENCH_*.json`` is self-contained evidence of a speedup.
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.baseline import BASELINE

#: Sim-seconds per (engine, n): long enough to dominate setup cost,
#: short enough that the full suite stays a couple of minutes.
_QUICK_MAX_N = 32
_QUICK_MAX_DURATION = 10.0


@dataclass(frozen=True)
class BenchEntry:
    """One fixed suite scenario."""

    id: str
    engine: str
    protocol: str
    n: int
    workload: str
    duration: float
    seed: int = 0

    @property
    def deployment(self) -> str:
        return f"wonderproxy-{self.n}"


def _entries() -> List[BenchEntry]:
    entries: List[BenchEntry] = []
    durations = {
        # Saturated engines self-clock; event volume grows ~n per round.
        # Large-n entries run long enough that per-run noise (scheduler,
        # allocator) stays small relative to the simulation loop.
        "hotstuff": {4: 60.0, 32: 30.0, 128: 60.0, 256: 30.0},
        "kauri": {4: 60.0, 32: 30.0, 128: 60.0, 256: 30.0},
        # PBFT broadcasts quadratically (n^2 Prepares/Commits per batch),
        # so large-n entries get short horizons.
        "pbft": {4: 60.0, 32: 20.0, 128: 5.0, 256: 2.0},
    }
    protocols = {"hotstuff": "hotstuff-rr", "kauri": "kauri", "pbft": "pbft"}
    workloads = {"hotstuff": "saturated", "kauri": "saturated", "pbft": "closed-loop"}
    for engine in ("pbft", "hotstuff", "kauri"):
        for n in (4, 32, 128, 256):
            entries.append(
                BenchEntry(
                    id=f"{engine}/n{n}",
                    engine=engine,
                    protocol=protocols[engine],
                    n=n,
                    workload=workloads[engine],
                    duration=durations[engine][n],
                )
            )
    return entries


SUITE: List[BenchEntry] = _entries()


def run_entry(
    entry: BenchEntry, quick: bool = False, repeats: int = 3
) -> Dict[str, object]:
    """Run one suite entry and return its measured record.

    The scenario executes ``repeats`` times (once in quick mode) and the
    best wall clock wins -- standard best-of-N to shed scheduler and
    allocator noise.  The simulated outcome is deterministic, so repeats
    differ only in wall time.
    """
    from repro.experiments.runner import Scenario, run_scenario

    duration = min(entry.duration, _QUICK_MAX_DURATION) if quick else entry.duration
    scenario = Scenario(
        protocol=entry.protocol,
        deployment=entry.deployment,
        workload=entry.workload,
        duration=duration,
        seed=entry.seed,
        name=f"bench:{entry.id}",
    )
    wall = float("inf")
    result = None
    for _ in range(1 if quick else max(1, repeats)):
        # Collect leftovers first so a previous run's garbage is not
        # charged to this run's wall clock.
        gc.collect()
        start = time.perf_counter()
        attempt = run_scenario(scenario)
        elapsed = time.perf_counter() - start
        if elapsed < wall:
            wall = elapsed
            result = attempt
    sim = result.cluster.sim
    events = sim.events_processed
    record: Dict[str, object] = {
        **asdict(entry),
        "deployment": entry.deployment,
        "sim_duration": duration,
        "wall_seconds": round(wall, 4),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "throughput_rps": round(result.run_metrics.throughput(duration), 2),
        "committed_blocks": len(result.run_metrics.commits),
        "messages_sent": result.cluster.network.stats.messages_sent,
        "messages_multicast": getattr(
            result.cluster.network.stats, "messages_multicast", 0
        ),
        "peak_queue_depth": getattr(sim, "max_queue_depth", 0),
    }
    baseline = BASELINE.get("entries", {}).get(entry.id)
    if baseline is not None and not quick:
        record["baseline"] = baseline
        base_eps = baseline.get("events_per_sec", 0.0)
        if base_eps:
            record["speedup_events_per_sec"] = round(
                float(record["events_per_sec"]) / float(base_eps), 2
            )
    return record


def run_suite(
    quick: bool = False,
    only: Optional[Iterable[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the suite (or the ``only`` subset) and return the report dict.

    ``quick`` restricts to entries with n <= 32 and caps durations -- the
    CI variant, cheap enough to run on every push.  Entries named
    explicitly via ``only`` are always run (quick then only caps their
    durations), so a requested entry can never silently drop out.
    """
    wanted = set(only) if only is not None else None
    if wanted is not None:
        unknown = wanted - {entry.id for entry in SUITE}
        if unknown:
            known = ", ".join(entry.id for entry in SUITE)
            raise ValueError(
                f"unknown bench entries {sorted(unknown)} (known: {known})"
            )
        entries = [entry for entry in SUITE if entry.id in wanted]
    else:
        entries = [
            entry for entry in SUITE if not quick or entry.n <= _QUICK_MAX_N
        ]
    results = []
    for entry in entries:
        if progress is not None:
            progress(f"bench {entry.id} (n={entry.n}, {entry.workload}) ...")
        results.append(run_entry(entry, quick=quick))
    return {
        "bench_version": 1,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "baseline_note": BASELINE.get("note", ""),
        "entries": results,
    }


def format_table(report: Dict[str, object]) -> str:
    """Human-readable summary of a report (the CLI's stdout)."""
    lines = [
        f"{'entry':<14} {'n':>4} {'events':>9} {'wall_s':>8} "
        f"{'events/s':>10} {'tput_rps':>9} {'queue':>6} {'speedup':>8}"
    ]
    for rec in report["entries"]:
        speedup = rec.get("speedup_events_per_sec")
        lines.append(
            f"{rec['id']:<14} {rec['n']:>4} {rec['events']:>9} "
            f"{rec['wall_seconds']:>8.2f} {rec['events_per_sec']:>10,.0f} "
            f"{rec['throughput_rps']:>9,.0f} {rec['peak_queue_depth']:>6} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'-':>8}")
        )
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
