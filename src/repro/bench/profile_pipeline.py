"""``make profile-pipeline``: cProfile over the fixed monitoring hot path.

Profiles the same pipeline workload every time (the n=100 suspicion
replay, the exact-MIS pool at the fig8 threshold and the n=211 greedy
pool) so successive profiles are comparable, and prints the top
functions by internal time::

    PYTHONPATH=src python -m repro.bench.profile_pipeline [top_n]
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    top = int(argv[0]) if argv else 30
    from repro.bench.pipeline import (
        MIS_EXACT_N,
        MIS_EXACT_POOL,
        MIS_GREEDY_POOL,
        SUSPICION_OPS,
        mis_graph_pool,
        replay_suspicion_workload,
        suspicion_workload,
    )
    from repro.optimize.maxindset import (
        greedy_independent_set,
        maximum_independent_set,
    )

    ops = suspicion_workload(100, SUSPICION_OPS[100], seed=11)
    exact_pool = mis_graph_pool(MIS_EXACT_N, MIS_EXACT_POOL, seed=23)
    greedy_pool = mis_graph_pool(211, MIS_GREEDY_POOL[211], seed=23)

    def workload() -> None:
        replay_suspicion_workload(100, 33, ops)
        for graph in exact_pool:
            maximum_independent_set(graph)
        for graph in greedy_pool:
            greedy_independent_set(graph)

    workload()  # warm imports and caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
