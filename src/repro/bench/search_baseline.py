"""Pre-refactor baseline for the ``repro bench --search`` suite.

Machine-local wall-clock numbers: comparable only to reports produced on
the same host.  Measured on the pre-refactor optimizer (PR 3 head,
e19fd0c: full re-scoring per mutation, per-dict quorum scans, scalar
tree walks) with this same suite definition, best-of-3 per entry.
Regenerate with ``repro bench --rebaseline search`` (see
:mod:`repro.bench.rebaseline`) at a known-good commit; the simulated
fields (``best_score``, ``leader``, ``accepted``, ``score_checksum``)
double as the pre-refactor behaviour record the equivalence tests pin
against.
"""

SEARCH_BASELINE = {
    "note": "pre-refactor: PR 3 head (e19fd0c), best of three runs per entry",
    "entries": {
        "exhaustive-weights/n21": {
            "best_score": 0.11369290111003866,
            "leader": 8,
            "leaders": 21,
            "leaders_per_sec": 3481.4,
            "n": 21,
            "wall_seconds": 0.006032,
        },
        "exhaustive-weights/n57": {
            "best_score": 0.1617755368311539,
            "leader": 24,
            "leaders": 57,
            "leaders_per_sec": 521.1,
            "n": 57,
            "wall_seconds": 0.109377,
        },
        "sa-tree/n211": {
            "accepted": 1972,
            "best_score": 0.12120014283744379,
            "iterations": 2000,
            "iterations_per_sec": 15577.2,
            "n": 211,
            "wall_seconds": 0.128393,
        },
        "sa-tree/n57": {
            "accepted": 3670,
            "best_score": 0.08460483316563862,
            "iterations": 4000,
            "iterations_per_sec": 43070.2,
            "n": 57,
            "wall_seconds": 0.092872,
        },
        "sa-weights/n21": {
            "best_score": 0.11385427655126779,
            "iterations": 1500,
            "iterations_per_sec": 3503.0,
            "leader": 0,
            "n": 21,
            "wall_seconds": 0.428204,
        },
        "sa-weights/n57": {
            "best_score": 0.1652098272798407,
            "iterations": 600,
            "iterations_per_sec": 519.0,
            "leader": 24,
            "n": 57,
            "wall_seconds": 1.156168,
        },
        "tree-score/n211": {
            "evals": 64,
            "evals_per_sec": 24317.7,
            "n": 211,
            "score_checksum": 10.210909297787605,
            "wall_seconds": 0.002632,
        },
        "tree-score/n57": {
            "evals": 64,
            "evals_per_sec": 69248.0,
            "n": 57,
            "score_checksum": 9.626025056664345,
            "wall_seconds": 0.000924,
        },
    },
}
