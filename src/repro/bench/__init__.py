"""``repro bench``: the fixed performance suites pinning the perf trajectory.

Every PR that touches the hot path (sim engine, network, crypto, log)
runs the same suite -- per-engine saturated/closed-loop scenarios at
n ∈ {4, 32, 128, 256} -- and emits a ``BENCH_*.json`` whose entries embed
the recorded pre-refactor baseline, so speedups (and regressions) are
visible as a single ratio per entry.  ``repro bench --search`` is the
optimizer-layer twin (:mod:`repro.bench.search`): score evaluations/sec
and simulated-annealing iterations/sec against their own recorded
baseline.  ``repro bench --pipeline`` (:mod:`repro.bench.pipeline`) pins
the monitoring layer: log append/dispatch throughput, suspicion-entry
processing rate and MIS solve rates.  ``repro bench --metrics``
(:mod:`repro.bench.metrics`) pins the streaming measurement plane:
sketch ingest/merge rates, quantile queries and state round-trips.
``repro bench --plane`` (:mod:`repro.bench.plane`) pins the message
plane: object vs columnar delivery at state-trace equality, heap-event
reduction and fallback cost.  ``make bench-all``
(:mod:`repro.bench.all`) runs every suite into one consolidated report;
``repro bench --rebaseline <suite>`` (:mod:`repro.bench.rebaseline`)
rewrites a suite's recorded baseline module.
"""

from repro.bench.all import (  # noqa: F401
    format_all_tables,
    run_all_suites,
    write_all_report,
)
from repro.bench.metrics import (  # noqa: F401
    format_metrics_table,
    run_metrics_suite,
    write_metrics_report,
)
from repro.bench.pipeline import (  # noqa: F401
    format_pipeline_table,
    run_pipeline_suite,
    write_pipeline_report,
)
from repro.bench.search import (  # noqa: F401
    format_search_table,
    run_search_suite,
    write_search_report,
)
from repro.bench.suite import (  # noqa: F401
    SUITE,
    BenchEntry,
    format_table,
    run_entry,
    run_suite,
    write_report,
)
