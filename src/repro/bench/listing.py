"""``repro bench --list``: the bench-suite registry.

Mirrors the adversarial scenario registry's ``--list`` UX: one place
that names every registered suite, the CLI flag that runs it, and its
entry ids -- so ``--entry`` targets can be discovered without opening
the suite modules.  Entry ids come from the same enumerations the run
functions iterate (static ``SUITE`` lists where they exist, the
``_*_entries`` builders otherwise), so the listing cannot drift from
what actually runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: suite name -> the ``repro bench`` flag that runs it ("" = default).
SUITE_FLAGS: Dict[str, str] = {
    "simulator": "(default)",
    "search": "--search",
    "pipeline": "--pipeline",
    "metrics": "--metrics",
    "plane": "--plane",
    "scale": "--scale",
    "attack": "--attack",
}


def suite_entries() -> Dict[str, List[str]]:
    """Every registered suite and its entry ids, in run order."""
    # Imports live here so the listing stays importable without dragging
    # in every suite module at startup (mirrors bench.rebaseline).
    from repro.bench import attack, metrics, pipeline, plane, scale, search, suite

    return {
        "simulator": [entry.id for entry in suite.SUITE],
        "search": [entry_id for entry_id, _ in search._search_entries(1)],
        "pipeline": [entry_id for entry_id, _ in pipeline._pipeline_entries(1)],
        "metrics": [entry_id for entry_id, _ in metrics._metrics_entries(1)],
        "plane": [entry.id for entry in plane.SUITE],
        "scale": [entry.id for entry in scale.SUITE],
        "attack": [entry_id for entry_id, _ in attack._attack_entries()],
    }


def format_suite_listing(only: Optional[Sequence[str]] = None) -> str:
    """Render the registry; with ``only``, just those suites.

    Raises ``ValueError`` naming the known suites when ``only`` contains
    an unregistered name.
    """
    registry = suite_entries()
    if only:
        unknown = sorted(set(only) - set(registry))
        if unknown:
            known = ", ".join(registry)
            raise ValueError(
                f"unknown bench suite(s): {', '.join(unknown)} "
                f"(known suites: {known})"
            )
        names: Tuple[str, ...] = tuple(
            name for name in registry if name in set(only)
        )
    else:
        names = tuple(registry)
    lines: List[str] = []
    for name in names:
        ids = registry[name]
        lines.append(f"{name} {SUITE_FLAGS.get(name, '')} -- {len(ids)} entries")
        for entry_id in ids:
            lines.append(f"  {entry_id}")
    return "\n".join(lines)
