"""``make profile-scale``: cProfile over one internet-scale scenario.

Profiles a fixed n=1024 hotstuff run on the hierarchical ``world-1024``
substrate (build + simulate) so successive profiles are comparable, and
prints the top functions by internal time::

    PYTHONPATH=src python -m repro.bench.profile_scale [top_n]
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    top = int(argv[0]) if argv else 30
    from repro.experiments.runner import Scenario, prepare_scenario

    def workload() -> None:
        scenario = Scenario(
            protocol="hotstuff-rr",
            deployment="world-1024",
            workload="saturated",
            duration=1.0,
            seed=0,
        )
        result = prepare_scenario(scenario, plane="columnar")
        result.cluster.run(scenario.duration)

    workload()  # warm imports and caches outside the profile
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    pstats.Stats(profiler).sort_stats("tottime").print_stats(top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
