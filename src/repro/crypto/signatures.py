"""Attributable signatures over protocol payloads.

A :class:`KeyRegistry` issues one secret per replica and verifies
signatures on their behalf, standing in for a PKI.  Signatures are
HMAC-SHA256 digests, deterministic for a (signer, payload) pair, which is
exactly the property misbehavior proofs rely on: the same replica signing
two conflicting payloads for the same round is cryptographic evidence of
equivocation.

Byte sizes are accounted as Ed25519-equivalent so that the overhead study
(Fig. 13) reports realistic wire sizes.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Dict, NamedTuple

SIGNATURE_SIZE = 64  # Ed25519 signature bytes, used for size accounting.
PUBKEY_SIZE = 32


class InvalidSignature(Exception):
    """Raised when verification of a signature or certificate fails."""


def canonical_bytes(payload: Any) -> bytes:
    """Stable byte encoding of a payload for signing.

    Payloads are built from primitives, tuples and frozen dataclasses; we
    rely on ``repr`` being deterministic for those.  Dicts and sets are
    rejected: their ``repr`` depends on insertion order (dicts) or hash
    iteration order (sets/frozensets), so the same logical payload could
    produce different bytes on different replicas.
    """
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, dict):
        raise TypeError("sign tuples or dataclasses, not dicts")
    if isinstance(payload, (set, frozenset)):
        raise TypeError("sign tuples or dataclasses, not sets (unordered repr)")
    return repr(payload).encode()


class Signature(NamedTuple):
    """A signature attributable to ``signer`` over some payload.

    A ``NamedTuple`` rather than a dataclass: aggregates construct one
    per signer per certificate, which makes construction cost matter.
    """

    signer: int
    digest: bytes

    wire_size = SIGNATURE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(signer={self.signer}, {self.digest.hex()[:12]}…)"


class KeyRegistry:
    """Per-replica signing keys plus verification, standing in for a PKI.

    Parameters
    ----------
    n:
        Number of replicas; ids 0..n-1 get keys.  Additional ids (e.g.
        clients) can be enrolled with :meth:`enroll`.
    seed:
        Domain-separates registries so independent simulations cannot
        accidentally cross-verify.
    """

    def __init__(self, n: int, seed: int = 0):
        self._keys: Dict[int, bytes] = {}
        self._seed = seed
        #: (signer, canonical bytes) -> digest.  HMAC is deterministic per
        #: (key, payload), so caching is semantics-preserving; it memoizes
        #: both signing and verification (a verify recomputes the expected
        #: digest for the same pair).  The cache is keyed by the canonical
        #: *bytes*, never by the payload object: ``1``, ``1.0`` and
        #: ``True`` compare equal (one dict slot) yet canonicalise to
        #: different bytes, so a payload-keyed cache would conflate them.
        self._digest_cache: Dict[tuple, bytes] = {}
        for replica_id in range(n):
            self.enroll(replica_id)

    def enroll(self, node_id: int) -> None:
        """Create a key for ``node_id`` (idempotent)."""
        if node_id not in self._keys:
            material = f"repro-key:{self._seed}:{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()

    def has_key(self, node_id: int) -> bool:
        return node_id in self._keys

    # ------------------------------------------------------------------
    # Signing / verification
    # ------------------------------------------------------------------
    def _digest_for(self, signer: int, canonical: bytes) -> bytes:
        """The (memoized) HMAC digest of ``signer`` over ``canonical``."""
        cache_key = (signer, canonical)
        digest = self._digest_cache.get(cache_key)
        if digest is None:
            # One-shot C implementation; same digest as hmac.new(...),
            # roughly half the cost for these short payloads.
            digest = hmac.digest(self._keys[signer], canonical, "sha256")
            self._digest_cache[cache_key] = digest
        return digest

    def sign(self, signer: int, payload: Any) -> Signature:
        """Sign ``payload`` with ``signer``'s key."""
        if signer not in self._keys:
            raise KeyError(signer)
        return Signature(signer, self._digest_for(signer, canonical_bytes(payload)))

    def sign_many(self, signers: Any, payload: Any) -> tuple:
        """Sign the same ``payload`` with several keys (ascending signer id).

        Equivalent to ``tuple(sign(s, payload) for s in sorted(set(signers)))``
        but canonicalises the payload once instead of once per signer --
        the aggregate-certificate hot path in HotStuff and Kauri.
        """
        canonical = canonical_bytes(payload)
        digest_for = self._digest_for
        keys = self._keys
        ordered = sorted(
            signers if isinstance(signers, (set, frozenset)) else set(signers)
        )
        for signer in ordered:
            if signer not in keys:
                raise KeyError(signer)
        new = tuple.__new__  # skip the NamedTuple __new__ wrapper frame
        return tuple(
            [new(Signature, (signer, digest_for(signer, canonical))) for signer in ordered]
        )

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is valid for ``payload``."""
        if signature.signer not in self._keys:
            return False
        expected = self._digest_for(signature.signer, canonical_bytes(payload))
        return hmac.compare_digest(expected, signature.digest)

    def require_valid(self, signature: Signature, payload: Any) -> None:
        """Verify or raise :class:`InvalidSignature`."""
        if not self.verify(signature, payload):
            raise InvalidSignature(
                f"bad signature from {signature.signer} over {payload!r}"
            )

    def forge(self, signer: int, payload: Any) -> Signature:
        """Produce an *invalid* signature claiming to be from ``signer``.

        Used by fault injectors: the digest is wrong by construction, so
        any verifier will reject it and can raise a complaint.
        """
        bogus = hashlib.sha256(b"forged:" + canonical_bytes(payload)).digest()
        return Signature(signer=signer, digest=bogus)
