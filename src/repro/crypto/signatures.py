"""Attributable signatures over protocol payloads.

A :class:`KeyRegistry` issues one secret per replica and verifies
signatures on their behalf, standing in for a PKI.  Signatures are
HMAC-SHA256 digests, deterministic for a (signer, payload) pair, which is
exactly the property misbehavior proofs rely on: the same replica signing
two conflicting payloads for the same round is cryptographic evidence of
equivocation.

Byte sizes are accounted as Ed25519-equivalent so that the overhead study
(Fig. 13) reports realistic wire sizes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

SIGNATURE_SIZE = 64  # Ed25519 signature bytes, used for size accounting.
PUBKEY_SIZE = 32


class InvalidSignature(Exception):
    """Raised when verification of a signature or certificate fails."""


def canonical_bytes(payload: Any) -> bytes:
    """Stable byte encoding of a payload for signing.

    Payloads are built from primitives, tuples and frozen dataclasses; we
    rely on ``repr`` being deterministic for those.  Dicts are rejected to
    avoid ordering surprises.
    """
    if isinstance(payload, bytes):
        return payload
    if isinstance(payload, dict):
        raise TypeError("sign tuples or dataclasses, not dicts")
    return repr(payload).encode()


@dataclass(frozen=True)
class Signature:
    """A signature attributable to ``signer`` over some payload."""

    signer: int
    digest: bytes

    @property
    def wire_size(self) -> int:
        return SIGNATURE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signature(signer={self.signer}, {self.digest.hex()[:12]}…)"


class KeyRegistry:
    """Per-replica signing keys plus verification, standing in for a PKI.

    Parameters
    ----------
    n:
        Number of replicas; ids 0..n-1 get keys.  Additional ids (e.g.
        clients) can be enrolled with :meth:`enroll`.
    seed:
        Domain-separates registries so independent simulations cannot
        accidentally cross-verify.
    """

    def __init__(self, n: int, seed: int = 0):
        self._keys: Dict[int, bytes] = {}
        self._seed = seed
        for replica_id in range(n):
            self.enroll(replica_id)

    def enroll(self, node_id: int) -> None:
        """Create a key for ``node_id`` (idempotent)."""
        if node_id not in self._keys:
            material = f"repro-key:{self._seed}:{node_id}".encode()
            self._keys[node_id] = hashlib.sha256(material).digest()

    def has_key(self, node_id: int) -> bool:
        return node_id in self._keys

    # ------------------------------------------------------------------
    # Signing / verification
    # ------------------------------------------------------------------
    def sign(self, signer: int, payload: Any) -> Signature:
        """Sign ``payload`` with ``signer``'s key."""
        key = self._keys[signer]
        digest = hmac.new(key, canonical_bytes(payload), hashlib.sha256).digest()
        return Signature(signer=signer, digest=digest)

    def verify(self, signature: Signature, payload: Any) -> bool:
        """Check that ``signature`` is valid for ``payload``."""
        key = self._keys.get(signature.signer)
        if key is None:
            return False
        expected = hmac.new(key, canonical_bytes(payload), hashlib.sha256).digest()
        return hmac.compare_digest(expected, signature.digest)

    def require_valid(self, signature: Signature, payload: Any) -> None:
        """Verify or raise :class:`InvalidSignature`."""
        if not self.verify(signature, payload):
            raise InvalidSignature(
                f"bad signature from {signature.signer} over {payload!r}"
            )

    def forge(self, signer: int, payload: Any) -> Signature:
        """Produce an *invalid* signature claiming to be from ``signer``.

        Used by fault injectors: the digest is wrong by construction, so
        any verifier will reject it and can raise a complaint.
        """
        bogus = hashlib.sha256(b"forged:" + canonical_bytes(payload)).digest()
        return Signature(signer=signer, digest=bogus)
