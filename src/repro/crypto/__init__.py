"""Simulated cryptographic substrate.

Consensus engines and OptiLog's misbehavior proofs need *attributable* and
*verifiable* artefacts: signatures on protocol messages and quorum
certificates aggregating votes.  We simulate Ed25519 with keyed
HMAC-SHA256: a :class:`KeyRegistry` holds per-replica secrets and acts as
the public-key infrastructure (verification looks up the signer's key).
Sizes are accounted as Ed25519-equivalent (64-byte signatures) so the
proposal-size experiment (Fig. 13) reports realistic byte counts.
"""

from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    InvalidSignature,
    KeyRegistry,
    Signature,
)
from repro.crypto.threshold import AggregateSignature, QuorumCertificate

__all__ = [
    "AggregateSignature",
    "InvalidSignature",
    "KeyRegistry",
    "QuorumCertificate",
    "SIGNATURE_SIZE",
    "Signature",
]
