"""Aggregate signatures and quorum certificates.

Kauri aggregates votes up the tree and HotStuff forms quorum certificates;
OptiTree's extra misbehavior rule inspects aggregates for completeness
(every child position must contribute a vote *or* a suspicion).  We model
an aggregate as a verified multiset of per-signer signatures over a common
payload; wire size is accounted per contained signature so that the
overhead experiment sees realistic certificate sizes.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, NamedTuple, Optional, Tuple

from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    InvalidSignature,
    KeyRegistry,
    Signature,
)


class AggregateSignature:
    """A set of signatures over the same payload, e.g. tree vote aggregates.

    ``suspected`` carries the ids of children whose vote is replaced by a
    suspicion, as required by OptiTree's aggregation-completeness rule
    (§6.3): an aggregate covering ``b+1`` child positions must contain a
    vote or a suspicion for each position.

    Aggregates built through :func:`aggregate` are *lazily materialized*:
    the signer set is snapshotted (and validated against the registry)
    eagerly, but the per-signer HMAC signatures are only computed when
    ``signatures`` is first read.  Consensus hot paths touch ``signers``
    and ``wire_size`` alone -- both pure functions of the signer set --
    so a run that never verifies an aggregate never pays for signing it.
    HMAC signatures are deterministic per (signer, payload), so deferral
    is observably identical to eager construction.
    """

    __slots__ = ("payload", "suspected", "_signatures", "_signers", "_registry")

    def __init__(
        self,
        payload: Any,
        signatures: Tuple[Signature, ...],
        suspected: FrozenSet[int] = frozenset(),
    ):
        self.payload = payload
        self.suspected = frozenset(suspected)
        self._signatures: Optional[Tuple[Signature, ...]] = tuple(signatures)
        self._signers: Optional[FrozenSet[int]] = None
        self._registry: Optional[KeyRegistry] = None

    @classmethod
    def deferred(
        cls,
        registry: KeyRegistry,
        payload: Any,
        signers: Iterable[int],
        suspected: Iterable[int] = (),
    ) -> "AggregateSignature":
        """An aggregate whose signatures materialize on first access.

        The signer set is snapshotted now (callers pass live vote sets
        that keep growing) and every signer must already hold a key, so
        the deferral cannot surface errors later than eager signing would.
        """
        self = cls.__new__(cls)
        self.payload = payload
        self.suspected = frozenset(suspected)
        self._signatures = None
        signer_set = frozenset(signers)
        for signer in signer_set:
            if not registry.has_key(signer):
                raise KeyError(signer)
        self._signers = signer_set
        self._registry = registry
        return self

    @property
    def signatures(self) -> Tuple[Signature, ...]:
        sigs = self._signatures
        if sigs is None:
            sigs = self._registry.sign_many(self._signers, self.payload)
            self._signatures = sigs
        return sigs

    @property
    def signers(self) -> FrozenSet[int]:
        if self._signers is not None:
            return self._signers
        return frozenset(sig.signer for sig in self.signatures)

    @property
    def wire_size(self) -> int:
        count = (
            len(self._signers)
            if self._signatures is None
            else len(self._signatures)
        )
        return SIGNATURE_SIZE * count + 8 * len(self.suspected)

    def merge(self, other: "AggregateSignature") -> "AggregateSignature":
        """Combine two aggregates over the same payload."""
        if other.payload != self.payload:
            raise ValueError("cannot merge aggregates over different payloads")
        merged = {sig.signer: sig for sig in self.signatures}
        for sig in other.signatures:
            merged[sig.signer] = sig
        return AggregateSignature(
            payload=self.payload,
            signatures=tuple(sorted(merged.values(), key=lambda s: s.signer)),
            suspected=self.suspected | other.suspected,
        )

    def verify(self, registry: KeyRegistry) -> bool:
        """True iff every contained signature verifies over the payload."""
        return all(registry.verify(sig, self.payload) for sig in self.signatures)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateSignature):
            return NotImplemented
        return (
            self.payload == other.payload
            and self.suspected == other.suspected
            and self.signatures == other.signatures
        )

    def __hash__(self) -> int:
        return hash((self.payload, self.signatures, self.suspected))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"signers={sorted(self._signers)}"
            if self._signatures is None
            else f"signatures={len(self._signatures)}"
        )
        return f"AggregateSignature(payload={self.payload!r}, {state})"


def aggregate(
    registry: KeyRegistry,
    payload: Any,
    signers: Iterable[int],
    suspected: Iterable[int] = (),
) -> AggregateSignature:
    """Build an aggregate over ``payload`` for ``signers`` (lazily signed)."""
    return AggregateSignature.deferred(registry, payload, signers, suspected)


class QuorumCertificate(NamedTuple):
    """Proof that a quorum voted for ``block_hash`` in ``view``.

    ``weight`` supports Wheat/Aware weighted quorums: the certificate
    records the summed voting weight so validity does not depend on the
    verifier re-deriving the weight assignment.  A ``NamedTuple``: QCs
    ride on every chained proposal, so field access is hot.
    """

    view: int
    block_hash: str
    aggregate: AggregateSignature
    weight: float

    @property
    def signers(self) -> FrozenSet[int]:
        return self.aggregate.signers

    @property
    def wire_size(self) -> int:
        return self.aggregate.wire_size + 16

    def verify(self, registry: KeyRegistry, required_weight: float) -> None:
        """Raise :class:`InvalidSignature` unless the QC is well-formed."""
        if not self.aggregate.verify(registry):
            raise InvalidSignature(f"QC for view {self.view} has bad signatures")
        if self.weight < required_weight:
            raise InvalidSignature(
                f"QC weight {self.weight} below required {required_weight}"
            )
