"""Aggregate signatures and quorum certificates.

Kauri aggregates votes up the tree and HotStuff forms quorum certificates;
OptiTree's extra misbehavior rule inspects aggregates for completeness
(every child position must contribute a vote *or* a suspicion).  We model
an aggregate as a verified multiset of per-signer signatures over a common
payload; wire size is accounted per contained signature so that the
overhead experiment sees realistic certificate sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Iterable, Tuple

from repro.crypto.signatures import (
    SIGNATURE_SIZE,
    InvalidSignature,
    KeyRegistry,
    Signature,
)


@dataclass(frozen=True)
class AggregateSignature:
    """A set of signatures over the same payload, e.g. tree vote aggregates.

    ``suspected`` carries the ids of children whose vote is replaced by a
    suspicion, as required by OptiTree's aggregation-completeness rule
    (§6.3): an aggregate covering ``b+1`` child positions must contain a
    vote or a suspicion for each position.
    """

    payload: Any
    signatures: Tuple[Signature, ...]
    suspected: FrozenSet[int] = field(default_factory=frozenset)

    @property
    def signers(self) -> FrozenSet[int]:
        return frozenset(sig.signer for sig in self.signatures)

    @property
    def wire_size(self) -> int:
        return SIGNATURE_SIZE * len(self.signatures) + 8 * len(self.suspected)

    def merge(self, other: "AggregateSignature") -> "AggregateSignature":
        """Combine two aggregates over the same payload."""
        if other.payload != self.payload:
            raise ValueError("cannot merge aggregates over different payloads")
        merged = {sig.signer: sig for sig in self.signatures}
        for sig in other.signatures:
            merged[sig.signer] = sig
        return AggregateSignature(
            payload=self.payload,
            signatures=tuple(sorted(merged.values(), key=lambda s: s.signer)),
            suspected=self.suspected | other.suspected,
        )

    def verify(self, registry: KeyRegistry) -> bool:
        """True iff every contained signature verifies over the payload."""
        return all(registry.verify(sig, self.payload) for sig in self.signatures)


def aggregate(
    registry: KeyRegistry,
    payload: Any,
    signers: Iterable[int],
    suspected: Iterable[int] = (),
) -> AggregateSignature:
    """Build an aggregate by signing ``payload`` with each signer's key."""
    sigs = tuple(registry.sign(signer, payload) for signer in sorted(set(signers)))
    return AggregateSignature(
        payload=payload, signatures=sigs, suspected=frozenset(suspected)
    )


@dataclass(frozen=True)
class QuorumCertificate:
    """Proof that a quorum voted for ``block_hash`` in ``view``.

    ``weight`` supports Wheat/Aware weighted quorums: the certificate
    records the summed voting weight so validity does not depend on the
    verifier re-deriving the weight assignment.
    """

    view: int
    block_hash: str
    aggregate: AggregateSignature
    weight: float

    @property
    def signers(self) -> FrozenSet[int]:
        return self.aggregate.signers

    @property
    def wire_size(self) -> int:
        return self.aggregate.wire_size + 16

    def verify(self, registry: KeyRegistry, required_weight: float) -> None:
        """Raise :class:`InvalidSignature` unless the QC is well-formed."""
        if not self.aggregate.verify(registry):
            raise InvalidSignature(f"QC for view {self.view} has bad signatures")
        if self.weight < required_weight:
            raise InvalidSignature(
                f"QC weight {self.weight} below required {required_weight}"
            )
