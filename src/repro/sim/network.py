"""Simulated message network with per-link latencies.

Messages between registered nodes are delivered as simulator events after a
one-way delay drawn from a latency provider (usually a
:class:`repro.net.latency_model.LatencyModel` matrix).  Faults are injected
through *interceptors*: callables that may drop, delay or rewrite a message
before it is scheduled for delivery.  This is how the Byzantine behaviours
in :mod:`repro.faults` manipulate traffic without touching protocol code.

Fast path: a network with no interceptors, no down nodes and no active
partition is *pristine*; sends and deliveries then skip every fault check.
The ``_pristine`` flag is recomputed on each topology/interceptor
mutation, so installing a fault mid-run transparently re-enables the
checks -- including for messages already in flight, whose delivery
re-validates against the fabric state at delivery time, as before.  The
fast path performs exactly the same jitter draws in the same order as
the checked path, so seeded runs are bit-identical either way.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Callable, Dict, Iterable, Optional

from repro.sim.engine import Simulator

# An interceptor receives (src, dst, message, delay) and returns either
# None (drop the message) or a (message, delay) pair to use instead.
Interceptor = Callable[[int, int, Any, float], Optional[tuple]]

#: Sentinel distinguishing "class not yet resolved" from "resolved to no
#: handler" in a registered dispatch cache (see Network.register_dispatch).
_UNRESOLVED = object()


class NetworkStats:
    """Counters kept by the network for overhead accounting (Fig. 13).

    ``messages_sent``/``bytes_sent``/``per_type_bytes`` count only traffic
    actually put on the wire: a message dropped at send time (down node,
    partition, interceptor drop) increments ``messages_dropped`` alone, so
    fault scenarios do not inflate the overhead accounting.
    ``messages_multicast`` counts batched :meth:`Network.multicast` calls
    (each of which still counts one ``messages_sent`` per destination).

    Representation: the send path bumps ONE class-keyed ``[count, bytes]``
    accumulator per message; the public totals (``messages_sent``,
    ``bytes_sent``) and the name-keyed ``per_type_bytes`` dict are
    materialized lazily on read.  This replaces the old per-send
    ``type(message).__name__`` string derivation (the satellite fix: the
    name is now derived once per *type* at read time, never on the send
    path) and keeps the per-message cost at a single dict operation.
    """

    __slots__ = (
        "messages_delivered",
        "messages_dropped",
        "messages_multicast",
        "_per_class",
    )

    def __init__(self) -> None:
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_multicast = 0
        #: message class -> [messages, bytes], in first-send order.
        self._per_class: Dict[type, list] = {}

    @property
    def messages_sent(self) -> int:
        return sum(entry[0] for entry in self._per_class.values())

    @property
    def bytes_sent(self) -> int:
        return sum(entry[1] for entry in self._per_class.values())

    @property
    def per_type_bytes(self) -> Dict[str, int]:
        """Bytes per message-type name, in first-send order.

        Materialized on access; distinct classes sharing a ``__name__``
        are summed, matching the historical name-keyed accounting.
        """
        out: Dict[str, int] = {}
        for cls, entry in self._per_class.items():
            name = cls.__name__
            out[name] = out.get(name, 0) + entry[1]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkStats(sent={self.messages_sent}, "
            f"delivered={self.messages_delivered}, "
            f"dropped={self.messages_dropped}, "
            f"multicast={self.messages_multicast}, bytes={self.bytes_sent})"
        )

    def record_send(self, message: Any, size: int) -> None:
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size

    def record_multicast(self, message: Any, size: int, fanout: int) -> None:
        """Batched equivalent of ``fanout`` :meth:`record_send` calls."""
        per_class = self._per_class
        cls = message.__class__
        entry = per_class.get(cls)
        if entry is None:
            per_class[cls] = [fanout, size * fanout]
        else:
            entry[0] += fanout
            entry[1] += size * fanout


class Network:
    """Point-to-point network delivering messages over simulated links.

    Parameters
    ----------
    sim:
        The owning simulator.
    one_way_delay:
        Callable ``(src, dst) -> seconds`` giving the one-way link delay.
    jitter:
        Fractional uniform jitter applied to every delivery; a value of
        0.05 means each delay is multiplied by ``uniform(1.0, 1.05)``.
        Jitter draws come from a dedicated generator so enabling or
        disabling it does not perturb other random streams.
    """

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: Callable[[int, int], float],
        jitter: float = 0.0,
    ):
        self.sim = sim
        self._delay_rows: Optional[list] = None
        self.one_way_delay = one_way_delay
        self.jitter = jitter
        self._stats = NetworkStats()
        self._handlers: Dict[int, Callable[[int, Any], None]] = {}
        #: node id -> its class->bound-handler cache (see
        #: :meth:`register_dispatch`); lets delivery call the terminal
        #: handler directly, skipping the generic inbox dispatch frame.
        self._routes: Dict[int, Dict[type, Optional[Callable]]] = {}
        self._interceptors: list[Interceptor] = []
        self._down: set[int] = set()
        #: node id -> partition group; nodes in different groups cannot
        #: exchange messages.  Nodes absent from the map (e.g. clients)
        #: keep full connectivity.
        self._partition_group: Dict[int, int] = {}
        #: Incremented by every partition(); lets a scheduled heal detect
        #: that a newer partition superseded the one it belongs to.
        self._partition_epoch = 0
        #: True while no interceptor, down node or partition exists; the
        #: send/deliver fast path keys off this single flag.
        self._pristine = True
        self._jitter_rng = sim.derive_rng("network-jitter")
        self._jitter_random = self._jitter_rng.random
        # Pre-bound hot-path callables and references: attribute and
        # descriptor lookups cost real time at one send + one delivery per
        # simulated message.  The delivery callback is closure-compiled so
        # the stable references (routes, handlers, stats) are locals.
        self._post = sim.post
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self.stats._per_class

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Drop the derived hot-path fields; they are deterministic
        functions of the rest and the delivery closure cannot pickle.
        (Queued heap entries referencing ``_deliver_bound`` are handled
        by the checkpoint module's persistent-id hooks.)"""
        state = self.__dict__.copy()
        for key in (
            "_deliver_bound",
            "_post",
            "_stats_per_class",
            "_delay_rows",
            "_jitter_random",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._post = self.sim.post
        self._jitter_random = self._jitter_rng.random
        self._delay_rows = getattr(self._one_way_delay, "rows", None)
        self._deliver_bound = self._make_deliver()
        self._stats_per_class = self._stats._per_class

    # ------------------------------------------------------------------
    # Stats, delay provider and jitter
    # ------------------------------------------------------------------
    @property
    def stats(self) -> NetworkStats:
        """The network's counters.  Read-only by design: the hot paths
        hold direct references into this object (``_stats_per_class``,
        the delivery closure), so swapping it out would silently split
        the accounting -- attempting to assign raises instead."""
        return self._stats

    @property
    def one_way_delay(self) -> Callable[[int, int], float]:
        return self._one_way_delay

    @one_way_delay.setter
    def one_way_delay(self, value: Callable[[int, int], float]) -> None:
        self._one_way_delay = value
        # Providers that expose their full matrix (Deployment.one_way)
        # let the send paths index a plain list instead of calling out.
        self._delay_rows = getattr(value, "rows", None)

    @property
    def jitter(self) -> float:
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        self._jitter = value
        # Matches random.Random.uniform(1.0, 1.0 + jitter) bit-for-bit:
        # uniform(a, b) computes a + (b - a) * random(), so the span must
        # be the rounded difference, not the raw jitter value.
        self._jitter_span = (1.0 + value) - 1.0

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def _refresh_fast_path(self) -> None:
        self._pristine = not (
            self._interceptors or self._down or self._partition_group
        )

    def register(self, node_id: int, handler: Callable[[int, Any], None]) -> None:
        """Register ``handler(src, message)`` as the inbox of ``node_id``."""
        self._handlers[node_id] = handler

    def register_dispatch(
        self, node_id: int, dispatch: Dict[type, Optional[Callable]]
    ) -> None:
        """Opt-in delivery fast path for ``node_id``.

        ``dispatch`` is a *live* message-class -> bound-handler mapping
        (``None`` meaning "no handler for this class") that the node's
        inbox keeps populated as it resolves classes.  Delivery consults
        it first and calls the terminal handler directly; unknown classes
        fall back to the registered inbox, which resolves and caches them.
        Counting semantics are identical either way: a delivery to a
        registered node counts as delivered even when the class resolves
        to no handler, exactly as the generic inbox behaves.
        """
        self._routes[node_id] = dispatch

    def unregister(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        self._routes.pop(node_id, None)

    def set_down(self, node_id: int, down: bool = True) -> None:
        """Crash (or revive) a node: messages to and from it are dropped."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)
        self._refresh_fast_path()

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def partition(self, groups: Iterable[Iterable[int]]) -> int:
        """Split the network into isolated ``groups`` of nodes.

        Links inside a group keep working; messages between nodes of
        different groups are dropped -- at send time for new traffic and
        at delivery time for messages already in flight, mirroring the
        node-down semantics.  Unlike :meth:`set_down` the nodes stay
        alive: they keep processing timers and intra-group traffic, which
        is what distinguishes a partition from a crash.

        Nodes not named in any group (clients, late joiners) retain full
        connectivity.  Calling :meth:`partition` again replaces the
        previous partition; :meth:`heal` removes it.

        Returns an epoch token: pass it to :meth:`heal` so a heal
        scheduled for *this* partition becomes a no-op if a newer
        partition has replaced it in the meantime.
        """
        mapping: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in mapping:
                    raise ValueError(f"node {node} appears in two partition groups")
                mapping[node] = index
        self._partition_group = mapping
        self._partition_epoch += 1
        self._refresh_fast_path()
        return self._partition_epoch

    def heal(self, epoch: Optional[int] = None) -> None:
        """Remove the current partition; all links work again.

        With ``epoch`` (from :meth:`partition`), only heal if that
        partition is still the active one -- a later partition survives
        an earlier partition's scheduled heal.
        """
        if epoch is not None and epoch != self._partition_epoch:
            return
        self._partition_group = {}
        self._refresh_fast_path()

    def reachable(self, src: int, dst: int) -> bool:
        """Can a message currently flow ``src`` -> ``dst``?"""
        if src in self._down or dst in self._down:
            return False
        return not self._partitioned(src, dst)

    def _partitioned(self, a: int, b: int) -> bool:
        group_a = self._partition_group.get(a)
        group_b = self._partition_group.get(b)
        return group_a is not None and group_b is not None and group_a != group_b

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a fault-injection hook; interceptors run in order."""
        self._interceptors.append(interceptor)
        self._refresh_fast_path()

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)
        self._refresh_fast_path()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Any, size: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst`` after the link delay.

        ``size`` is the serialized size in bytes, used only for statistics.
        Self-delivery is supported with zero latency (plus jitter) because
        protocol code treats the local replica uniformly.

        Only messages that actually reach the wire are counted as sent;
        send-time drops (down endpoint, partition, interceptor) count as
        dropped instead.
        """
        if self._pristine:
            if src == dst:
                delay = 0.0
            else:
                rows = self._delay_rows
                delay = (
                    rows[src][dst] if rows is not None
                    else self._one_way_delay(src, dst)
                )
            if self._jitter > 0.0:
                delay *= 1.0 + self._jitter_span * self._jitter_random()
            # record_send(), inlined: one send per protocol message makes
            # even the method call measurable.
            per_class = self._stats_per_class
            cls = message.__class__
            entry = per_class.get(cls)
            if entry is None:
                per_class[cls] = [1, size]
            else:
                entry[0] += 1
                entry[1] += size
            # Simulator.post(), inlined (same entry shape and ordering):
            # one frame per simulated message is measurable too.
            sim = self.sim
            seq = sim._seq
            sim._seq = seq + 1
            queue = sim._queue
            _heappush(
                queue,
                (sim.now + delay, seq, None, self._deliver_bound, (src, dst, message)),
            )
            if len(queue) > sim.max_queue_depth:
                sim.max_queue_depth = len(queue)
            return
        if src in self._down or dst in self._down or self._partitioned(src, dst):
            self.stats.messages_dropped += 1
            return
        delay = 0.0 if src == dst else self.one_way_delay(src, dst)
        if self._jitter > 0.0:
            delay *= 1.0 + self._jitter_span * self._jitter_random()
        for interceptor in self._interceptors:
            result = interceptor(src, dst, message, delay)
            if result is None:
                self.stats.messages_dropped += 1
                return
            message, delay = result
        self.stats.record_send(message, size)
        self._post(delay, self._deliver_bound, (src, dst, message))

    def multicast(self, src: int, dsts: Iterable[int], message: Any, size: int = 0) -> None:
        """Send the same message to every destination, as one batch.

        On a pristine network the per-destination fault checks and stats
        bookkeeping are hoisted out of the loop; per-destination delays and
        jitter draws are identical (same values, same RNG order) to a loop
        of :meth:`send` calls, so the batch is purely a constant-factor
        optimisation.  On a faulted network it degrades to exactly that
        loop.
        """
        self.stats.messages_multicast += 1
        if not self._pristine:
            for dst in dsts:
                self.send(src, dst, message, size)
            return
        one_way = self._one_way_delay
        jittered = self._jitter > 0.0
        span = self._jitter_span
        rand = self._jitter_random
        deliver = self._deliver_bound
        # When the delay provider exposes its matrix (Deployment.one_way
        # does), index the row directly instead of calling per destination.
        rows = self._delay_rows
        row = rows[src] if rows is not None else None
        # Simulator.post(), inlined and hoisted: ``now`` is constant for
        # the whole batch and the entries keep consecutive seq numbers
        # (nothing else can push while this loop runs), so ordering is
        # identical to a loop of send() calls.
        sim = self.sim
        now = sim.now
        queue = sim._queue
        seq = sim._seq
        fanout = 0
        if row is not None:
            for dst in dsts:
                delay = 0.0 if src == dst else row[dst]
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        else:
            for dst in dsts:
                delay = 0.0 if src == dst else one_way(src, dst)
                if jittered:
                    delay *= 1.0 + span * rand()
                _heappush(queue, (now + delay, seq, None, deliver, (src, dst, message)))
                seq += 1
                fanout += 1
        sim._seq = seq
        if len(queue) > sim.max_queue_depth:
            sim.max_queue_depth = len(queue)
        if fanout:
            self.stats.record_multicast(message, size, fanout)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _make_deliver(self) -> Callable[[int, int, Any], None]:
        """Build the delivery callback with hot references as closure
        locals.  ``_routes``/``_handlers``/``stats`` are mutated in place
        and never rebound, so capturing them is safe; the mutable fault
        state (``_pristine``, down set, partition) is read through
        ``self`` so mid-run changes keep applying to in-flight messages.
        """
        routes_get = self._routes.get
        handlers_get = self._handlers.get
        stats = self.stats

        def _deliver(
            src: int, dst: int, message: Any, _self=self, _unresolved=_UNRESOLVED
        ) -> None:
            if not _self._pristine and (
                dst in _self._down
                or src in _self._down
                or _self._partitioned(src, dst)
            ):
                stats.messages_dropped += 1
                return
            route = routes_get(dst)
            if route is not None:
                handler = route.get(message.__class__, _unresolved)
                if handler is not _unresolved:
                    stats.messages_delivered += 1
                    if handler is not None:
                        handler(src, message)
                    return
            inbox = handlers_get(dst)
            if inbox is None:
                stats.messages_dropped += 1
                return
            stats.messages_delivered += 1
            inbox(src, message)

        return _deliver

    def _deliver(self, src: int, dst: int, message: Any) -> None:
        """Deliver one message now (the scheduled path uses the prebuilt
        closure; this method is the equivalent public-ish entry point)."""
        self._deliver_bound(src, dst, message)
